//! Offline shim for `crossbeam`: scoped threads over
//! `std::thread::scope`. See `shims/README.md`.

#![forbid(unsafe_code)]

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// A scope handle passed to [`scope`]'s closure and to every spawned
    /// thread's closure (crossbeam's signature).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the
        /// closure receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope in which threads borrowing the environment may be
    /// spawned; all are joined before the call returns.
    ///
    /// With `std::thread::scope` underneath, a panicking un-joined child
    /// propagates as a panic rather than an `Err`, which is strictly
    /// stricter than crossbeam's contract; in-repo callers join every
    /// handle explicitly.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }
}
