//! Offline shim for `criterion`: the API subset this workspace's
//! benches use, backed by a simple warm-up + timed-loop harness that
//! prints mean/median ns per iteration (and throughput when declared).
//! See `shims/README.md`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared per-iteration workload, for ops/s or bytes/s reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
pub struct Criterion {
    warmup: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Overridable so CI can keep bench runs short.
        let ms = |var: &str, default_ms: u64| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .map(Duration::from_millis)
                .unwrap_or(Duration::from_millis(default_ms))
        };
        Criterion {
            warmup: ms("CRITERION_SHIM_WARMUP_MS", 300),
            measurement: ms("CRITERION_SHIM_MEASURE_MS", 1000),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, name, None, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declares per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by wall-clock
    /// windows (`CRITERION_SHIM_*_MS`), not by sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_bench(self.criterion, &full, self.throughput, f);
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the harness-chosen number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(criterion: &Criterion, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: discover a per-batch iteration count that lands around
    // ~10ms per sample, running at least `warmup` in total.
    let mut iters = 1u64;
    let warmup_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warmup_start.elapsed() >= criterion.warmup && b.elapsed >= Duration::from_micros(100) {
            let per_iter = b.elapsed.as_secs_f64() / iters as f64;
            iters = ((0.01 / per_iter).ceil() as u64).max(1);
            break;
        }
        if b.elapsed < Duration::from_millis(10) {
            iters = iters.saturating_mul(2);
        }
    }

    // Measurement: fixed-size samples until the measurement budget is
    // spent.
    let mut samples: Vec<f64> = Vec::new();
    let measure_start = Instant::now();
    while measure_start.elapsed() < criterion.measurement || samples.len() < 10 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
        if samples.len() >= 5000 {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.1} MiB/s", n as f64 / median / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "bench {name:<40} median {:>12} ns/iter  mean {:>12} ns/iter{rate}",
        format_ns(median),
        format_ns(mean),
    );
}

fn format_ns(seconds: f64) -> String {
    format!("{:.1}", seconds * 1e9)
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        std::env::set_var("CRITERION_SHIM_WARMUP_MS", "10");
        std::env::set_var("CRITERION_SHIM_MEASURE_MS", "30");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        g.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(3u64) * 7));
    }
}
