//! Offline shim for `parking_lot`: the non-poisoning lock API over
//! `std::sync`. See `shims/README.md`.

#![forbid(unsafe_code)]

use std::fmt;

/// Reader-writer lock with the `parking_lot` (non-poisoning) API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// Mutex with the `parking_lot` (non-poisoning) API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII mutex guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.write_str("Mutex { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
