//! Offline shim for `proptest`: the `proptest!` macro and the strategy
//! surface this workspace uses, driven by a deterministic splitmix RNG.
//! See `shims/README.md`.
//!
//! Differences from real proptest: a fixed number of cases per property
//! ([`CASES`]), no shrinking, and no failure-persistence files. Failed
//! assertions panic through the ordinary `assert!` family, so the
//! generated inputs appear in the panic message when interpolated.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Cases sampled per property.
pub const CASES: u32 = 64;

/// Deterministic generator driving all sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the property's name so every property gets a distinct,
    /// reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = self.next_u64() as u128 * bound as u128;
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of values for one property parameter.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
int_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}
float_strategies!(f32, f64);

/// String strategies are written as regex patterns; this shim supports
/// the subset the workspace uses: literal chars, `[...]` classes with
/// ranges, `\PC` (any printable char), and the `*`, `+`, `?`, `{n}`,
/// `{n,m}` quantifiers.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, quant) in &atoms {
            let n = quant.sample_count(rng);
            for _ in 0..n {
                out.push(atom.sample_char(rng));
            }
        }
        out
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// `[...]`: the expanded set of candidate chars.
    Class(Vec<char>),
    /// `\PC`: any printable character.
    Printable,
}

/// Pool of printable non-ASCII characters mixed into `\PC` samples.
const UNICODE_POOL: [char; 8] = ['é', 'ñ', 'λ', 'Ω', '漢', '字', '→', '🦀'];

impl Atom {
    fn sample_char(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(set) => set[rng.below(set.len() as u64) as usize],
            Atom::Printable => {
                if rng.below(10) == 0 {
                    UNICODE_POOL[rng.below(UNICODE_POOL.len() as u64) as usize]
                } else {
                    // ASCII printable: 0x20 ..= 0x7E.
                    char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Quant {
    One,
    Optional,
    /// `{n,m}` inclusive (also covers `*`/`+` with a capped maximum).
    Between(u32, u32),
}

impl Quant {
    fn sample_count(&self, rng: &mut TestRng) -> u32 {
        match self {
            Quant::One => 1,
            Quant::Optional => rng.below(2) as u32,
            Quant::Between(lo, hi) => lo + rng.below((hi - lo + 1) as u64) as u32,
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<(Atom, Quant)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern `{pattern}`");
                i += 1; // ']'
                Atom::Class(set)
            }
            '\\' => {
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "unsupported escape in pattern `{pattern}`"
                );
                i += 3;
                Atom::Printable
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let quant = match chars.get(i) {
            Some('*') => {
                i += 1;
                Quant::Between(0, 16)
            }
            Some('+') => {
                i += 1;
                Quant::Between(1, 16)
            }
            Some('?') => {
                i += 1;
                Quant::Optional
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed {")
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                let (lo, hi) = match spec.split_once(',') {
                    Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
                    None => {
                        let n: u32 = spec.trim().parse().unwrap();
                        (n, n)
                    }
                };
                Quant::Between(lo, hi)
            }
            _ => Quant::One,
        };
        atoms.push((atom, quant));
    }
    atoms
}

/// Types with a default generation strategy (used for bare `name: Type`
/// parameters in `proptest!`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.unit_f64() * 600.0) - 300.0;
        if rng.below(2) == 0 {
            mag
        } else {
            mag.exp2().copysign(mag)
        }
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Vec<T> {
        let len = rng.below(64) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

/// Strategy wrapper for [`Arbitrary`] types (`any::<T>()`).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod r#bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy value.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::r#bool;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy, TestRng,
    };
}

/// Defines property tests: each `fn` inside becomes a `#[test]` that
/// samples its parameters [`CASES`] times and runs the body.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::TestRng::from_name(stringify!($name));
                for __proptest_case in 0..$crate::CASES {
                    let _ = __proptest_case;
                    $crate::proptest!(@bind __proptest_rng, ($($params)*), $body);
                }
            }
        )*
    };
    (@bind $rng:ident, (), $body:block) => { $body };
    (@bind $rng:ident, ($name:ident in $strat:expr), $body:block) => {
        {
            let $name = $crate::Strategy::sample(&($strat), &mut $rng);
            $crate::proptest!(@bind $rng, (), $body)
        }
    };
    (@bind $rng:ident, ($name:ident in $strat:expr, $($rest:tt)*), $body:block) => {
        {
            let $name = $crate::Strategy::sample(&($strat), &mut $rng);
            $crate::proptest!(@bind $rng, ($($rest)*), $body)
        }
    };
    (@bind $rng:ident, ($name:ident : $ty:ty), $body:block) => {
        {
            let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
            $crate::proptest!(@bind $rng, (), $body)
        }
    };
    (@bind $rng:ident, ($name:ident : $ty:ty, $($rest:tt)*), $body:block) => {
        {
            let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
            $crate::proptest!(@bind $rng, ($($rest)*), $body)
        }
    };
}

/// `prop_assert!`: assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!`: equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!`: inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3i64..17, y in 0.5f64..2.5, n in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn bare_types_and_arrays(seed: u64, bytes: [u8; 16], blob: Vec<u8>) {
            let _ = seed;
            prop_assert_eq!(bytes.len(), 16);
            prop_assert!(blob.len() < 64);
        }

        #[test]
        fn regex_subset_shapes(
            host in "[a-z][a-z0-9]{0,10}",
            key in "[a-zA-Z0-9_]{1,8}",
            free in "\\PC{0,30}",
            flag in r#bool::ANY,
        ) {
            prop_assert!(!host.is_empty() && host.len() <= 11);
            prop_assert!(host.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!((1..=8).contains(&key.len()));
            prop_assert!(free.chars().count() <= 30);
            prop_assert!(free.chars().all(|c| !c.is_control()));
            let _ = flag;
        }

        #[test]
        fn collection_vec_sizes(v in collection::vec(-1e3f64..1e3, 1..50)) {
            prop_assert!((1..50).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (-1e3..1e3).contains(x)));
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::from_name("p");
        let mut b = TestRng::from_name("p");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
