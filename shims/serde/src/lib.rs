//! Offline shim for `serde`: `Serialize`/`Deserialize` over an owned
//! [`Value`] data model, with derive macros re-exported from the
//! companion `serde_derive` shim. See `shims/README.md`.
//!
//! Unlike real serde there is no zero-copy serializer plumbing: types
//! convert to and from [`Value`] trees, and `serde_json` renders those.
//! That is entirely sufficient for the workspace's round-trip usage.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type maps onto.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key-value map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number (mirroring
    /// `serde_json::Value::as_f64`, which widens integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Looks up an object field by key (`None` on non-objects and
    /// missing keys, like `serde_json::Value::get`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Builds an error from a message.
    pub fn msg(message: impl Into<String>) -> Error {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a field in an object's entries (derive-generated code calls
/// this).
pub fn obj_get<'a>(pairs: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{key}`")))
}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i128;
                if wide >= i64::MIN as i128 && wide <= i64::MAX as i128 {
                    Value::I64(wide as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::U64(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::msg(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::msg(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::I64(i) => Ok(*i as f64),
            Value::U64(u) => Ok(*u as f64),
            // Real serde_json renders non-finite floats as `null`.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::msg("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::msg("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::msg(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected {expected}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (stringify_key(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (stringify_key(k), v.to_value()))
                .collect(),
        )
    }
}

/// Renders a map key as the JSON object-key string (strings verbatim,
/// scalars via their JSON token), matching serde_json's behaviour.
fn stringify_key<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        Value::I64(i) => i.to_string(),
        Value::U64(u) => u.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<i64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn compounds_round_trip() {
        let v = vec![(1i64, "a".to_string()), (2, "b".to_string())];
        let back = Vec::<(i64, String)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let arr: [u8; 3] = [7, 8, 9];
        assert_eq!(<[u8; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }
}
