//! Offline shim for `rand` 0.8: deterministic pseudo-random generation
//! with the API subset this workspace uses. See `shims/README.md`.
//!
//! The engine behind [`rngs::StdRng`] is xoshiro256\*\* seeded through
//! SplitMix64 — statistically strong for simulation workloads, though
//! the value stream differs from the real crate's ChaCha12 `StdRng`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is used in
/// this workspace).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly from raw random bits (the shim's stand-in
/// for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for u16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl<const N: usize> Standard for [u8; N] {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` via Lemire's widening-multiply method
/// (bias-free in practice at these bound sizes).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound; // 2^64 mod bound
    loop {
        let m = rng.next_u64() as u128 * bound as u128;
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::from_rng(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let unit = <$t as Standard>::from_rng(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-producible type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\*.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as rand_core does for small seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn unit_floats_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0..10usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
