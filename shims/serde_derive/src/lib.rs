//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented directly on top of
//! `proc_macro` (no `syn`/`quote` available offline).
//!
//! Supported input shapes — exactly what this workspace declares:
//! plain structs with named fields, tuple structs (newtype semantics,
//! with or without `#[serde(transparent)]`), and enums whose variants
//! are unit, tuple, or struct-like. Generic types are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed derive target.
struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with N fields (N == 1 → newtype delegation).
    Tuple(usize),
    /// Enum variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// Tuple variant with N payload fields.
    Tuple(usize),
    /// Struct variant: named fields.
    Struct(Vec<String>),
}

/// Skips one attribute (`#` already consumed callers pass the iterator
/// positioned *at* `#`): consumes `#` and the following `[...]` group.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                } else {
                    panic!("serde_derive shim: malformed attribute");
                }
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Consumes a type (or any token run) up to a top-level `,`, tracking
/// `<...>` nesting since angle brackets are loose puncts. Returns the
/// index of the `,` (or `tokens.len()`).
fn skip_past_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parses `{ field: Ty, ... }` contents into field names.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde_derive shim: expected field name, got {:?}",
                tokens[i]
            );
        };
        fields.push(name.to_string());
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:`, got {other:?}"),
        }
        i = skip_past_type(&tokens, i);
        i += 1; // the ',' (or off the end)
    }
    fields
}

/// Counts the fields of a tuple struct/variant `( Ty, Ty, ... )`.
fn count_tuple_fields(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_past_type(&tokens, i);
        i += 1;
    }
    count
}

/// Parses enum variants from the `{ ... }` body.
fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde_derive shim: expected variant name, got {:?}",
                tokens[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let shape = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream());
                    i += 1;
                    VariantShape::Struct(fields)
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    i += 1;
                    VariantShape::Tuple(n)
                }
                _ => VariantShape::Unit,
            }
        } else {
            VariantShape::Unit
        };
        // Skip an optional discriminant (`= expr`) and the trailing `,`.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde_derive shim: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }
    let kind = match keyword.as_str() {
        "struct" => match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(parse_named_fields(g.stream()))
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("serde_derive shim: unsupported struct body {other:?}"),
        },
        "enum" => match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    };
    Item { name, kind }
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(x0) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Array(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(vec![{entries}]))]),",
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated invalid Serialize impl")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::obj_get(obj, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::msg(\"expected object for `{name}`\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Kind::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array for `{name}`\"))?;\n\
                 if items.len() != {n} {{ return Err(::serde::Error::msg(\"wrong tuple arity for `{name}`\")); }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{vname}\" => Ok({name}::{vname}),", vname = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let items = payload.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array payload\"))?;\n\
                                     if items.len() != {n} {{ return Err(::serde::Error::msg(\"wrong payload arity\")); }}\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::obj_get(obj, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let obj = payload.as_object().ok_or_else(|| ::serde::Error::msg(\"expected object payload\"))?;\n\
                                     Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {units}\n\
                         other => Err(::serde::Error::msg(format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, payload) = &pairs[0];\n\
                         let _ = payload;\n\
                         match tag.as_str() {{\n\
                             {datas}\n\
                             other => Err(::serde::Error::msg(format!(\"unknown variant `{{other}}` of `{name}`\"))),\n\
                         }}\n\
                     }},\n\
                     _ => Err(::serde::Error::msg(\"expected enum representation for `{name}`\")),\n\
                 }}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated invalid Deserialize impl")
}
