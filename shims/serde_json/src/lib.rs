//! Offline shim for `serde_json`: renders and parses JSON through the
//! serde shim's [`serde::Value`] data model. See `shims/README.md`.
//!
//! Floats are emitted with Rust's shortest-round-trip `Display` and
//! parsed with `str::parse::<f64>`, so serialize → deserialize is exact
//! (the `float_roundtrip` guarantee). Non-finite floats render as
//! `null`, as in real serde_json.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON error (serialization never fails in this shim; parse errors
/// carry a byte offset).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl Error {
    fn at(offset: usize, message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// The self-describing JSON value, mirroring `serde_json::Value`
/// (shared with the serde shim rather than duplicated).
pub use serde::Value;

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Parses a JSON string into a deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::at(parser.pos, "trailing characters"));
    }
    T::from_value(&value).map_err(|e| Error::at(0, e.to_string()))
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Shortest round-trip representation; force a float token
                // so integral values don't parse back as integers in a
                // context that would lose the type (harmless either way,
                // since f64 deserialization accepts integers).
                let s = f.to_string();
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(self.pos, format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::at(self.pos, "unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::at(self.pos, "invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::at(self.pos, "invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::at(self.pos, "invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::at(self.pos, "expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::at(self.pos, "expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::at(self.pos, "unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::at(self.pos, "unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::at(self.pos, "lone surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::at(self.pos, "invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(Error::at(self.pos, "invalid codepoint")),
                            }
                        }
                        _ => return Err(Error::at(self.pos, "invalid escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the source is a &str, so the
                    // sequence is valid; re-decode it.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::at(start, "invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::at(self.pos, "truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::at(self.pos, "invalid \\u escape"))?;
        let v =
            u32::from_str_radix(s, 16).map_err(|_| Error::at(self.pos, "invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at(start, "invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::at(start, "invalid number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::at(start, format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &f in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
        ] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "{s}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "a\"b\\c\nd\te\u{08}\u{0C}\u{1}ü漢🦀";
        let s = to_string(&tricky.to_string()).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), tricky);
    }

    #[test]
    fn unicode_escape_parsing() {
        assert_eq!(
            from_str::<String>("\"\\u00e9\\ud83e\\udd80\"").unwrap(),
            "é🦀"
        );
    }

    #[test]
    fn compound_round_trips() {
        let v = vec![(1u32, "x".to_string()), (2, "y".to_string())];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, String)>>(&s).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("--1").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<Vec<u8>>("[1,2").is_err());
        assert!(from_str::<u8>("1 2").is_err());
    }
}
