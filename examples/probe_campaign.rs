//! Probe-campaign anatomy: plan, sweep, and compare A1 vs A2.
//!
//! ```sh
//! cargo run --release --example probe_campaign
//! ```
//!
//! Walks through the §5.2 campaign-sizing mathematics, executes both of
//! the paper's campaigns (scaled), and reports the headline contrast:
//! encrypted charge prices run ≈1.7× above cleartext ones.

use your_ad_value::campaign::{execute, Campaign, CampaignPlan};
use your_ad_value::prelude::*;
use your_ad_value::stats::summary::median;
use your_ad_value::weblog::PublisherUniverse;

fn main() {
    // --- §5.2: how big must the campaigns be? -------------------------
    // Historical MoPub campaigns in dataset D: mean 1.84 CPM, std 2.15.
    let plan = CampaignPlan::paper_reference();
    println!("campaign plan (95 % CI):");
    println!("  setups            : {}", plan.setups);
    println!("  error on mean     : ±{:.2} CPM", plan.setup_margin);
    println!("  imps per campaign : ≥{}", plan.impressions_per_setup);

    // --- Execute both campaigns (scaled for a laptop run) -------------
    let mut market = Market::new(MarketConfig::default());
    let universe = PublisherUniverse::build(0xD474, 1800, 700);

    let scale = 60; // impressions per setup (paper: 4 394 / 2 215)
    println!("\nexecuting A1 (4 encrypting exchanges, May 2016) …");
    let a1 = execute(&mut market, &universe, &Campaign::a1().scaled(scale));
    println!(
        "  {} impressions | {} publishers | {} IABs | spend {}",
        a1.rows.len(),
        a1.distinct_publishers(),
        a1.distinct_iabs(),
        a1.spent,
    );

    println!("executing A2 (MoPub cleartext, June 2016) …");
    let a2 = execute(&mut market, &universe, &Campaign::a2().scaled(scale));
    println!(
        "  {} impressions | {} publishers | {} IABs | spend {}",
        a2.rows.len(),
        a2.distinct_publishers(),
        a2.distinct_iabs(),
        a2.spent,
    );

    // --- §6.1: the encrypted premium ----------------------------------
    let m1 = median(&a1.prices_cpm());
    let m2 = median(&a2.prices_cpm());
    println!("\nmedian charge price A1 (encrypted) : {m1:.3} CPM");
    println!("median charge price A2 (cleartext) : {m2:.3} CPM");
    println!(
        "encrypted / cleartext ratio        : {:.2}× (paper: ≈1.7×)",
        m1 / m2
    );

    // Every A1 notification was opaque on the wire; the prices above are
    // only known because the *buyer side* (our probing DSP) gets the
    // performance report. That is the paper's entire trick.
    let opaque = a1
        .rows
        .iter()
        .filter(|r| r.visibility == PriceVisibility::Encrypted)
        .count();
    println!(
        "\n{opaque}/{} A1 impressions had encrypted browser-side notifications",
        a1.rows.len()
    );
}
