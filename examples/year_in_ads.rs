//! A year in ads: the full §6 per-user cost study on a mid-sized panel.
//!
//! ```sh
//! cargo run --release --example year_in_ads
//! ```
//!
//! Generates a two-month panel trace, analyses it with the Weblog Ads
//! Analyzer, trains the PME from a probing campaign, applies the §6.2
//! time-shift correction and prints the per-user cost distribution —
//! the data behind Figures 17–19.
//!
//! The whole pipeline runs on the `yav-exec` worker pool — generation,
//! analysis and campaigns shard across every core, and the end-of-run
//! telemetry report shows the `exec.*` pool metrics. The printed numbers
//! are identical for any thread count.

use your_ad_value::analyzer::analyze_parallel;
use your_ad_value::core::methodology::PopulationSummary;
use your_ad_value::prelude::*;
use your_ad_value::stats::summary::median;

fn main() {
    // --- Dataset D (scaled): generate and analyse ----------------------
    let exec = ExecConfig::default();
    let generator = WeblogGenerator::new(WeblogConfig {
        exec,
        ..WeblogConfig::small()
    });
    let market_config = MarketConfig::default();
    println!(
        "generating and analysing the panel trace on {} thread(s) …",
        exec.threads()
    );
    let log = generator.collect_parallel(&market_config);
    let requests = log.requests.len();
    let report = analyze_parallel(&log.requests, &exec).report;
    println!(
        "  {requests} HTTP requests | {} users | {} RTB impressions detected",
        report.users_seen,
        report.detections.len()
    );
    let enc = report
        .detections
        .iter()
        .filter(|d| d.visibility == PriceVisibility::Encrypted)
        .count();
    println!(
        "  encrypted share: {:.1} % (the paper reports ≈26 % for 2015 mobile)",
        enc as f64 / report.detections.len() as f64 * 100.0
    );

    // --- Ground truth + model -----------------------------------------
    println!("running probing campaigns and training the PME …");
    let universe = generator.universe().clone();
    let a1 =
        campaign::execute_parallel(&market_config, &universe, &Campaign::a1().scaled(60), &exec);
    let a2 =
        campaign::execute_parallel(&market_config, &universe, &Campaign::a2().scaled(40), &exec);
    let pme = Pme::new();
    pme.train_from_campaign(&a1.rows, &TrainConfig::quick());
    let model = pme.current_model().expect("trained");

    // --- §6.2: the time-shift correction -------------------------------
    let historical: Vec<f64> = report
        .detections
        .iter()
        .filter(|d| d.adx == Adx::MoPub)
        .filter_map(|d| d.cleartext_cpm.map(|p| p.as_f64()))
        .collect();
    let shift = pme.fit_time_shift(&historical, &a2.prices_cpm());
    println!(
        "  time shift 2015→2016: ×{:.2} (median {:.3} → {:.3} CPM)",
        shift.coefficient, shift.historical_median, shift.recent_median
    );

    // --- Per-user accounts ---------------------------------------------
    let costs = per_user_costs(&report.detections, &model, &shift);
    let summary = PopulationSummary::of(&costs);
    let totals: Vec<f64> = costs.iter().map(|c| c.total_corrected().as_f64()).collect();

    println!("\n=== per-user advertiser spend over the trace ===");
    println!("users with RTB impressions : {}", summary.users);
    println!(
        "median user cost           : {:.1} CPM",
        summary.median_total
    );
    println!(
        "users under 100 CPM        : {:.0} %",
        summary.under_100_cpm * 100.0
    );
    println!(
        "1 000+ CPM tail            : {:.1} %",
        summary.tail_1000 * 100.0
    );
    println!(
        "encrypted uplift            : +{:.0} % on top of cleartext (paper: ≈55 %)",
        summary.encrypted_uplift * 100.0
    );

    // A tiny text histogram of the cost distribution (log buckets).
    println!("\ncost distribution (CPM):");
    let edges = [
        0.0,
        1.0,
        3.0,
        10.0,
        30.0,
        100.0,
        300.0,
        1000.0,
        f64::INFINITY,
    ];
    for w in edges.windows(2) {
        let n = totals.iter().filter(|&&t| t >= w[0] && t < w[1]).count();
        let bar = "#".repeat(n * 60 / totals.len().max(1));
        let label = if w[1].is_finite() {
            format!("{:>5}–{:<5}", w[0], w[1])
        } else {
            format!("{:>5}+     ", w[0])
        };
        println!("  {label} {bar} {n}");
    }

    println!(
        "\nmedian total (uncorrected): {:.1} CPM",
        median(&costs.iter().map(|c| c.total().as_f64()).collect::<Vec<_>>())
    );

    // What the pipeline did, stage by stage, from the process-wide
    // telemetry registry.
    println!("\n{}", your_ad_value::telemetry::report());
}
