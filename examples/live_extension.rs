//! Live-extension session: the toolbar experience of §3.3.
//!
//! ```sh
//! cargo run --release --example live_extension
//! ```
//!
//! Simulates one user's browsing session with YourAdValue installed:
//! model download, per-notification toolbar events as pages load, a
//! mid-session model upgrade after the PME retrains, and the final
//! popup summary — plus the opt-in anonymous contribution upload.

use your_ad_value::prelude::*;
use your_ad_value::weblog::PublisherUniverse;

fn main() {
    // Back-end: market + PME bootstrapped from a probing campaign.
    let mut market = Market::new(MarketConfig::default());
    let universe = PublisherUniverse::build(0xD474, 600, 240);
    let a1 = campaign::execute(&mut market, &universe, &Campaign::a1().scaled(25));
    let pme = Pme::new();
    pme.train_from_campaign(&a1.rows, &TrainConfig::quick());

    // The user installs the extension; it fetches model v1.
    let mut yav = YourAdValue::new(Some(City::Barcelona));
    yav.refresh_model(&pme);
    println!("YourAdValue installed — model v{}", yav.model_version());

    // One panel user's traffic, streamed as a "session".
    let generator = WeblogGenerator::new(WeblogConfig::tiny());
    let mut session: Vec<_> = Vec::new();
    let mut sink_market = Market::new(MarketConfig::default());
    generator.run(
        &mut sink_market,
        |req| {
            if req.user == UserId(3) {
                session.push(req.clone());
            }
        },
        |_| {},
    );
    println!(
        "replaying {} requests from one user's trace\n",
        session.len()
    );

    let halfway = session.len() / 2;
    for (i, req) in session.iter().enumerate() {
        // The extension's periodic model poll: the PME retrained overnight.
        if i == halfway {
            pme.train_from_campaign(&a1.rows, &TrainConfig::quick());
            if yav.refresh_model(&pme) {
                println!("… model upgraded to v{} mid-session", yav.model_version());
            }
        }
        if let Some(event) = yav.observe(req) {
            // The toolbar notification for a newly detected charge price.
            println!(
                "[{}] {} ad on {:<14} {} {} CPM",
                event.time,
                event.visibility,
                event.adx.name(),
                if event.estimated { "≈" } else { "=" },
                event.amount,
            );
        }
    }

    // The popup: cumulative cost and the most recent charge prices.
    let s = yav.ledger().summary();
    println!("\n── toolbar popup ─────────────────────────────");
    println!("   you were worth {} CPM to advertisers", s.total());
    println!(
        "   {} readable + {} estimated prices",
        s.cleartext_count, s.encrypted_count
    );
    println!("   recent prices:");
    for e in yav.ledger().recent(5) {
        println!("     {} {} {} CPM", e.time, e.adx.name(), e.amount);
    }

    // Opt-in: contribute anonymised observations back to the PME.
    let sent = yav.contribute_to(&pme);
    let (clear, enc) = pme.contribution_count();
    println!("\ncontributed {sent} anonymous observations (PME now holds {clear} cleartext / {enc} encrypted)");
}
