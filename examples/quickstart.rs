//! Quickstart: answer the paper's question end to end on a miniature
//! world.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small RTB market and user panel, runs a probing ad-campaign
//! to collect encrypted-price ground truth, trains the Price Modeling
//! Engine, installs the model into a YourAdValue client, streams a panel
//! user's browsing traffic through it, and prints the cumulative amount
//! advertisers paid.

use your_ad_value::prelude::*;

fn main() {
    // 1. The world: a simulated RTB market and a browsing panel.
    let mut market = Market::new(MarketConfig::default());
    let generator = WeblogGenerator::new(WeblogConfig::small());
    let universe = generator.universe().clone();

    // 2. Ground truth for encrypted prices: a probing ad-campaign on the
    //    four price-encrypting exchanges (the paper's campaign A1).
    println!("running probing ad-campaign A1 (scaled) …");
    let a1 = campaign::execute(&mut market, &universe, &Campaign::a1().scaled(40));
    println!(
        "  bought {} impressions on {} publishers for {}",
        a1.rows.len(),
        a1.distinct_publishers(),
        a1.spent,
    );

    // 3. The Price Modeling Engine trains the encrypted-price estimator.
    let pme = Pme::new();
    pme.train_from_campaign(&a1.rows, &TrainConfig::quick());
    let trained = pme.trained_model().expect("just trained");
    println!(
        "  model v{}: accuracy {:.1} %, AUCROC {:.3}",
        pme.version(),
        trained.cv.accuracy * 100.0,
        trained.cv.auc_roc,
    );

    // 4. A user installs YourAdValue; it polls the PME for the model.
    let mut yav = YourAdValue::new(Some(City::Madrid));
    assert!(yav.refresh_model(&pme));

    // 5. Stream the panel's browsing year through the client.
    println!("streaming panel traffic through YourAdValue …");
    generator.run(
        &mut market,
        |req| {
            yav.observe(&req);
        },
        |_| {},
    );

    // 6. The answer.
    let s = yav.ledger().summary();
    println!("\n=== How much did advertisers pay to reach this panel? ===");
    println!(
        "cleartext prices read   : {:>10} CPM over {} impressions",
        s.cleartext, s.cleartext_count
    );
    println!(
        "encrypted prices est.   : {:>10} CPM over {} impressions",
        s.encrypted_estimated, s.encrypted_count
    );
    println!("total V_u(T)            : {:>10} CPM", s.total());
    println!(
        "(encrypted estimation adds {:.0} % on top of the readable prices)",
        s.encrypted_estimated.as_f64() / s.cleartext.as_f64().max(f64::MIN_POSITIVE) * 100.0
    );
}
