//! Trace demo: record a causal trace of a miniature world build and
//! watch pipeline health while a panel streams through the client.
//!
//! ```sh
//! cargo run --release --example trace_world
//! ```
//!
//! Enables yav-trace, replays the quickstart pipeline (campaign →
//! training → panel streaming), ticks the SLO health engine once per
//! simulated month, then exports the trace as Chrome trace-event JSON
//! (open in Perfetto / `chrome://tracing`) and as folded stacks
//! (`flamegraph.pl`-compatible), and prints the final health report.

use your_ad_value::prelude::*;
use your_ad_value::trace;

fn main() {
    // Tracing is off by default; the demo opts in before any work runs.
    // The world stays bit-identical either way — spans only observe.
    trace::set_enabled(true);

    let mut market = Market::new(MarketConfig::default());
    let generator = WeblogGenerator::new(WeblogConfig::small());
    let universe = generator.universe().clone();

    println!("probing campaign + training (traced) …");
    let a1 = campaign::execute(&mut market, &universe, &Campaign::a1().scaled(40));
    let pme = Pme::new();
    pme.train_from_campaign(&a1.rows, &TrainConfig::quick());

    let mut yav = YourAdValue::new(Some(City::Madrid));
    assert!(yav.refresh_model(&pme));

    // Stream the panel through the client in batches (the staged
    // `observe_batch` path is what records `ingest.observe.us`), ticking
    // the health engine once per batch so its rolling window sees a
    // sequence of load snapshots rather than one cumulative blob.
    println!("streaming panel traffic, ticking health per batch …");
    let mut health = trace::HealthEngine::with_defaults();
    let mut batch: Vec<_> = Vec::with_capacity(512);
    generator.run(
        &mut market,
        |req| {
            batch.push(req.clone());
            if batch.len() == batch.capacity() {
                yav.observe_batch(&batch);
                batch.clear();
                health.tick();
            }
        },
        |_| {},
    );
    yav.observe_batch(&batch);
    let report = health.tick();

    trace::set_enabled(false);
    let t = trace::drain();
    let dir = std::env::temp_dir();
    let chrome = dir.join("yav_trace_world.json");
    let folded = dir.join("yav_trace_world.folded");
    std::fs::write(&chrome, trace::chrome_trace_json(&t)).expect("write chrome trace");
    std::fs::write(&folded, trace::folded_stacks(&t)).expect("write folded stacks");

    println!(
        "\ntrace: {} records in {} streams ({} lost to ring wrap)",
        t.len(),
        t.streams.len(),
        t.dropped()
    );
    println!(
        "  chrome trace : {} (load in https://ui.perfetto.dev)",
        chrome.display()
    );
    println!(
        "  folded stacks: {} (flamegraph.pl input)",
        folded.display()
    );

    println!(
        "\nhealth after {} ticks: {}",
        report.ticks,
        report.status().label()
    );
    println!("{}", report.to_json());
}
