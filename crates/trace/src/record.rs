//! Compact trace records and the global span-name interner.
//!
//! A [`TraceRecord`] is 24 bytes in memory and 20 on the wire: logical
//! sequence numbers instead of wall-clock timestamps (so traces of a
//! deterministic run are themselves deterministic, and the
//! wall-clock-in-sim lint rule holds for every traced crate), and an
//! interned [`NameId`] instead of a string. Call sites resolve names
//! once into [`SpanName`] handles — the same pre-resolved-handle idiom
//! `yav-telemetry` uses for counters — so the record path never touches
//! the interner lock.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// An interned span name: index into the process-wide name table.
pub type NameId = u16;

/// A pre-resolved span name handle; `Copy`, cheap to store in metric
/// bundles next to telemetry handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanName(pub(crate) NameId);

impl SpanName {
    /// The interned id.
    pub fn id(self) -> NameId {
        self.0
    }
}

/// What a record marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A span opened; `parent` is the enclosing span's begin sequence.
    Begin = 0,
    /// A span closed; `parent` is the matching begin sequence.
    End = 1,
    /// A point event (drop, detection, phase marker).
    Instant = 2,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<EventKind> {
        match v {
            0 => Some(EventKind::Begin),
            1 => Some(EventKind::End),
            2 => Some(EventKind::Instant),
            _ => None,
        }
    }
}

/// Sentinel `parent` for records with no enclosing span.
pub const NO_PARENT: u32 = u32::MAX;

/// One journal entry. `seq` is a logical clock local to its stream;
/// the pair `(stream, seq)` orders the whole trace canonically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Stream-local logical sequence number (0-based, dense).
    pub seq: u32,
    /// Begin-seq of the causal parent, or [`NO_PARENT`].
    pub parent: u32,
    /// Interned span name.
    pub name: NameId,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Free payload: batch size, drop reason, row count.
    pub arg: u64,
}

/// Bytes per encoded record.
pub const WIRE_SIZE: usize = 20;

impl TraceRecord {
    /// Encodes to the 20-byte little-endian wire form:
    /// `[seq:4][parent:4][name:2][kind:1][pad:1][arg:8]`.
    pub fn to_bytes(&self) -> [u8; WIRE_SIZE] {
        let mut out = [0u8; WIRE_SIZE];
        out[0..4].copy_from_slice(&self.seq.to_le_bytes());
        out[4..8].copy_from_slice(&self.parent.to_le_bytes());
        out[8..10].copy_from_slice(&self.name.to_le_bytes());
        out[10] = self.kind as u8;
        out[12..20].copy_from_slice(&self.arg.to_le_bytes());
        out
    }

    /// Decodes the wire form; `None` on an unknown event kind.
    pub fn from_bytes(b: &[u8; WIRE_SIZE]) -> Option<TraceRecord> {
        Some(TraceRecord {
            seq: u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            parent: u32::from_le_bytes([b[4], b[5], b[6], b[7]]),
            name: u16::from_le_bytes([b[8], b[9]]),
            kind: EventKind::from_u8(b[10])?,
            arg: u64::from_le_bytes([b[12], b[13], b[14], b[15], b[16], b[17], b[18], b[19]]),
        })
    }
}

#[derive(Debug, Default)]
struct Interner {
    by_name: BTreeMap<String, NameId>,
    names: Vec<String>,
}

fn interner() -> &'static RwLock<Interner> {
    static NAMES: OnceLock<RwLock<Interner>> = OnceLock::new();
    NAMES.get_or_init(|| RwLock::new(Interner::default()))
}

/// Interns `name` and returns its handle. Call once per site (cache the
/// result, e.g. in a `OnceLock` as [`crate::trace_span!`] does); the
/// record path then never locks. The table is append-only and capped at
/// `u16::MAX` distinct names — far above the workspace's span
/// vocabulary; later names saturate onto the last slot rather than
/// panicking.
pub fn span_name(name: &str) -> SpanName {
    if let Some(&id) = interner().read().by_name.get(name) {
        return SpanName(id);
    }
    let mut w = interner().write();
    if let Some(&id) = w.by_name.get(name) {
        return SpanName(id);
    }
    let id = w.names.len().min(NameId::MAX as usize) as NameId;
    if (id as usize) == w.names.len() {
        w.names.push(name.to_owned());
    }
    w.by_name.insert(name.to_owned(), id);
    SpanName(id)
}

/// The string for an interned id (`"?"` for an id this process never
/// interned — e.g. a record decoded from another process's journal).
pub fn name_of(id: NameId) -> String {
    interner()
        .read()
        .names
        .get(id as usize)
        .cloned()
        .unwrap_or_else(|| "?".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let r = TraceRecord {
            seq: 7,
            parent: NO_PARENT,
            name: 3,
            kind: EventKind::Instant,
            arg: 0xDEAD_BEEF_0BAD_F00D,
        };
        assert_eq!(TraceRecord::from_bytes(&r.to_bytes()), Some(r));
    }

    #[test]
    fn bad_kind_rejected() {
        let mut b = [0u8; WIRE_SIZE];
        b[10] = 9;
        assert_eq!(TraceRecord::from_bytes(&b), None);
    }

    #[test]
    fn interning_is_idempotent() {
        let a = span_name("test.roundtrip");
        let b = span_name("test.roundtrip");
        assert_eq!(a, b);
        assert_eq!(name_of(a.id()), "test.roundtrip");
    }
}
