//! Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and
//! folded-stack flamegraph text.
//!
//! JSON is hand-rolled like `yav-telemetry`'s exporter — this crate
//! stays a leaf so instrumenting `yav-nurl` never widens its dependency
//! tree. Timestamps are logical sequence numbers: Perfetto renders each
//! stream as a thread track whose x-axis is *event order*, not wall
//! time, which is exactly the determinism contract of the journal.

use crate::record::{name_of, EventKind, NO_PARENT};
use crate::ring::Trace;
use std::collections::BTreeMap;
use std::fmt::Write;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a drained trace in the Chrome trace-event JSON format
/// (`chrome://tracing` / Perfetto "Open trace file").
///
/// Mapping: one fake process (`pid` 0); each stream is a thread whose
/// `tid` is its canonical rank and whose name is the stream label
/// (`t0`, `g1.s3`, ...); spans are `B`/`E` pairs, point events are
/// scoped instants (`i`), and `ts` is the record's logical seq. Each
/// event's `args` carry the raw payload and the causal parent seq.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for (tid, stream) in trace.streams.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        let mut label = stream.stream.label();
        if let Some((origin, seq)) = stream.origin {
            let _ = write!(label, " (from {}#{})", origin.label(), seq);
        }
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(&label)
        );
        for r in &stream.records {
            out.push(',');
            let name = json_escape(&name_of(r.name));
            let parent = if r.parent == NO_PARENT {
                "null".to_owned()
            } else {
                r.parent.to_string()
            };
            match r.kind {
                EventKind::Begin => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"B\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"name\":\"{name}\",\
                         \"args\":{{\"arg\":{},\"parent\":{parent}}}}}",
                        r.seq, r.arg
                    );
                }
                EventKind::End => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"name\":\"{name}\"}}",
                        r.seq
                    );
                }
                EventKind::Instant => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"name\":\"{name}\",\
                         \"s\":\"t\",\"args\":{{\"arg\":{},\"parent\":{parent}}}}}",
                        r.seq, r.arg
                    );
                }
            }
        }
    }
    out.push_str("]}");
    out
}

/// Renders a drained trace as folded stacks (`a;b;c <count>` lines,
/// sorted) for `flamegraph.pl` / speedscope / inferno.
///
/// Weights are **logical ticks** — each record attributes one tick to
/// the stack active when it fired — so frame width reads as "events
/// under this span", a causal profile rather than a time profile.
/// Streams are merged; the stream label is the root frame.
pub fn folded_stacks(trace: &Trace) -> String {
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for stream in &trace.streams {
        let root = stream.stream.label();
        let mut stack: Vec<String> = Vec::new();
        for r in &stream.records {
            let name = name_of(r.name);
            match r.kind {
                EventKind::Begin => {
                    stack.push(name);
                    *weights.entry(fold(&root, &stack, None)).or_insert(0) += 1;
                }
                EventKind::End => {
                    // A wrapped ring can surface an End whose Begin was
                    // overwritten; treat it as closing nothing.
                    *weights.entry(fold(&root, &stack, None)).or_insert(0) += 1;
                    if stack.last() == Some(&name) {
                        stack.pop();
                    }
                }
                EventKind::Instant => {
                    *weights.entry(fold(&root, &stack, Some(&name))).or_insert(0) += 1;
                }
            }
        }
    }
    let mut out = String::new();
    for (frames, weight) in weights {
        let _ = writeln!(out, "{frames} {weight}");
    }
    out
}

fn fold(root: &str, stack: &[String], leaf: Option<&str>) -> String {
    let mut frames = String::from(root);
    for f in stack {
        frames.push(';');
        frames.push_str(f);
    }
    if let Some(leaf) = leaf {
        frames.push(';');
        frames.push_str(leaf);
    }
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::span_name;
    use crate::ring::{StreamId, TraceRing};

    fn demo_trace() -> Trace {
        let mut r = TraceRing::new(StreamId { group: 0, index: 0 }, 64);
        let build = span_name("test.build");
        let shard = span_name("test.shard");
        let a = r.begin(build, 0);
        let b = r.begin(shard, 3);
        r.instant(span_name("test.drop"), 1);
        r.end(b, shard);
        r.end(a, build);
        Trace {
            streams: vec![r.into_stream()],
        }
    }

    #[test]
    fn chrome_json_shape() {
        let json = chrome_trace_json(&demo_trace());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"test.build\""));
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn folded_stacks_nest() {
        let folded = folded_stacks(&demo_trace());
        assert!(folded.contains("t0;test.build;test.shard;test.drop 1"));
        assert!(folded.lines().all(|l| l.rsplit(' ').next().is_some()));
    }
}
