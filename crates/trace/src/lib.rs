//! Causal span tracing for the your-ad-value pipeline, plus an SLO
//! health engine.
//!
//! Where `yav-telemetry` answers "how many / how slow on aggregate",
//! this crate answers "*which request, which stage, in what order*":
//!
//! * a fixed-size, single-writer **ring journal** per stream of compact
//!   binary [`TraceRecord`]s stamped with **logical sequence numbers**
//!   — no wall clock, so traces of a deterministic sim run are
//!   themselves deterministic and the workspace's wall-clock-in-sim
//!   lint rule holds;
//! * **causal spans** ([`trace_span!`]) and point events
//!   ([`trace_instant!`]) that nest through the monitor's
//!   sift → decode → predict → commit stages and across `yav-exec`
//!   shard fan-outs ([`stream_scope`] gives every shard its own stream,
//!   merged in canonical `(group, shard)` order regardless of worker
//!   scheduling);
//! * **exporters**: Chrome trace-event JSON ([`chrome_trace_json`],
//!   loadable in Perfetto) and folded-stack flamegraph text
//!   ([`folded_stacks`]);
//! * a **health engine** ([`health::HealthEngine`]) turning cumulative
//!   telemetry histograms into rolling-window p50/p95/p99, drop rates,
//!   and SLO/anomaly flags in one [`health::HealthReport`].
//!
//! Tracing is **disabled by default**. Disabled call sites pay one
//! relaxed atomic load and a branch — no allocation, no TLS write — and
//! recording never feeds back into pipeline values, so world output is
//! bit-identical with tracing on or off (CI pins this).
//!
//! ```
//! yav_trace::set_enabled(true);
//! {
//!     let _span = yav_trace::trace_span!("ingest.observe");
//!     yav_trace::trace_instant!("ingest.drop", 2);
//! }
//! let trace = yav_trace::drain();
//! assert_eq!(trace.len(), 3);
//! let json = yav_trace::chrome_trace_json(&trace);
//! assert!(json.contains("\"ingest.observe\""));
//! yav_trace::set_enabled(false);
//! yav_trace::clear();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod collector;
mod export;
pub mod health;
mod record;
mod ring;

pub use collector::{
    clear, current_ctx, drain, enabled, flush_thread, instant, instant_cached, next_group,
    set_enabled, set_ring_capacity, stream_scope, SpanGuard, DEFAULT_RING_CAPACITY,
};
pub use export::{chrome_trace_json, folded_stacks};
pub use health::{
    AreaHealth, HealthEngine, HealthFlag, HealthReport, HealthStatus, SloConfig, Watch,
};
pub use record::{
    name_of, span_name, EventKind, NameId, SpanName, TraceRecord, NO_PARENT, WIRE_SIZE,
};
pub use ring::{StreamId, StreamTrace, Trace, TraceRing};

#[doc(hidden)]
pub use std::sync::OnceLock as __OnceName;

/// Opens an RAII trace span: `let _t = trace_span!("ingest.observe");`
/// (optionally with a payload: `trace_span!("ingest.sift", batch_len)`).
///
/// The name is resolved through the interner once per call site and
/// cached in a hidden `static`; afterwards the enabled check is one
/// atomic load. Span names follow `area.op` like metric names — the
/// `span-hygiene` lint rule enforces this. Hold the guard in a named
/// binding; binding to `_` drops it immediately and traces nothing.
#[macro_export]
macro_rules! trace_span {
    ($name:literal) => {
        $crate::trace_span!($name, 0u64)
    };
    ($name:literal, $arg:expr) => {{
        static __NAME: $crate::__OnceName<$crate::SpanName> = $crate::__OnceName::new();
        $crate::SpanGuard::enter(&__NAME, $name, ($arg) as u64)
    }};
}

/// Records a point event under the current span:
/// `trace_instant!("ingest.drop", reason_code)`.
#[macro_export]
macro_rules! trace_instant {
    ($name:literal) => {
        $crate::trace_instant!($name, 0u64)
    };
    ($name:literal, $arg:expr) => {{
        static __NAME: $crate::__OnceName<$crate::SpanName> = $crate::__OnceName::new();
        $crate::instant_cached(&__NAME, $name, ($arg) as u64)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collector tests share the process-global collector, so they run
    /// under one lock to stay independent of test-thread scheduling.
    fn with_collector_lock<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        clear();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        clear();
        out
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        with_collector_lock(|| {
            set_enabled(false);
            let _s = trace_span!("core.test_span");
            trace_instant!("core.test_instant", 7);
            drop(_s);
            assert!(drain().is_empty());
        });
    }

    #[test]
    fn spans_nest_and_drain_in_order() {
        with_collector_lock(|| {
            {
                let _outer = trace_span!("core.outer", 1);
                let _inner = trace_span!("core.inner");
                trace_instant!("core.tick", 9);
            }
            let t = drain();
            assert_eq!(t.streams.len(), 1);
            let recs = &t.streams[0].records;
            assert_eq!(recs.len(), 5);
            assert_eq!(recs[0].kind, EventKind::Begin);
            assert_eq!(name_of(recs[0].name), "core.outer");
            assert_eq!(recs[0].arg, 1);
            assert_eq!(recs[1].parent, recs[0].seq);
            assert_eq!(recs[2].parent, recs[1].seq);
            // Guards drop LIFO: inner ends before outer.
            assert_eq!(name_of(recs[3].name), "core.inner");
            assert_eq!(name_of(recs[4].name), "core.outer");
        });
    }

    #[test]
    fn stream_scopes_merge_canonically() {
        with_collector_lock(|| {
            let _root = trace_span!("core.fanout_root");
            let origin = current_ctx();
            assert!(origin.is_some());
            let group = next_group();
            // Simulate shards finishing out of order.
            for index in [2u32, 0, 1] {
                stream_scope(StreamId { group, index }, origin, || {
                    let _s = trace_span!("core.shard_work", index as u64);
                });
            }
            drop(_root);
            let t = drain();
            // Canonical order: main thread (group 0) first, then shards
            // by index — not by completion order.
            let labels: Vec<String> = t.streams.iter().map(|s| s.stream.label()).collect();
            assert_eq!(labels, vec!["t0", "g1.s0", "g1.s1", "g1.s2"]);
            for s in &t.streams[1..] {
                assert_eq!(s.origin, origin);
            }
        });
    }

    #[test]
    fn ring_capacity_bounds_memory() {
        with_collector_lock(|| {
            set_ring_capacity(16);
            for i in 0..100u64 {
                trace_instant!("core.spin", i);
            }
            let t = drain();
            set_ring_capacity(DEFAULT_RING_CAPACITY);
            assert_eq!(t.len(), 16);
            assert_eq!(t.dropped(), 84);
        });
    }
}
