//! The process-wide collector: kill switch, per-thread rings, shard
//! stream scopes, RAII span guards and the canonical drain.
//!
//! Ownership model: every ring has exactly one writer. Free-running
//! threads own a thread-local ring (stream group 0); a
//! [`stream_scope`] temporarily swaps in a fresh ring for one shard
//! task, then submits it to the finished list. [`drain`] flushes the
//! calling thread's ring, takes every finished ring, and sorts streams
//! by `(group, index)` — a canonical order independent of worker
//! scheduling, so traces of a deterministic run are byte-stable across
//! thread counts.
//!
//! When tracing is disabled (the default), [`SpanGuard::begin`],
//! [`instant`] and [`stream_scope`] cost one relaxed atomic load and a
//! branch — no allocation, no TLS write.

use crate::record::{span_name, SpanName};
use crate::ring::{StreamId, StreamTrace, Trace, TraceRing};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::OnceLock;
use yav_telemetry::Counter;

/// Tracing starts **off**: the monitor's default posture is zero
/// observability overhead, mirroring the paper's in-browser deployment.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Capacity for rings created after the last [`set_ring_capacity`].
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

/// Default per-stream ring capacity (records).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Next stream index for free-running (group-0) threads.
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

/// Next `par_map` generation; 0 is reserved for free-running threads.
static NEXT_GROUP: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static CURRENT: RefCell<Option<TraceRing>> = const { RefCell::new(None) };
}

fn finished() -> &'static Mutex<Vec<StreamTrace>> {
    static FINISHED: OnceLock<Mutex<Vec<StreamTrace>>> = OnceLock::new();
    FINISHED.get_or_init(|| Mutex::new(Vec::new()))
}

struct TraceMetrics {
    records: Counter,
    streams: Counter,
    dropped: Counter,
}

fn trace_metrics() -> &'static TraceMetrics {
    static METRICS: OnceLock<TraceMetrics> = OnceLock::new();
    METRICS.get_or_init(|| TraceMetrics {
        records: yav_telemetry::counter("trace.records_flushed"),
        streams: yav_telemetry::counter("trace.streams_flushed"),
        dropped: yav_telemetry::counter("trace.records_dropped"),
    })
}

/// Turns span recording on or off process-wide. Off is the default and
/// the zero-cost path; flipping mid-run is safe (open guards still pop
/// their stack entry, they just stop emitting records).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when spans record.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the capacity (records) of rings created from now on. Existing
/// rings keep their size.
pub fn set_ring_capacity(records: usize) {
    RING_CAPACITY.store(records.max(8), Ordering::Relaxed);
}

fn capacity() -> usize {
    RING_CAPACITY.load(Ordering::Relaxed)
}

fn with_ring<R>(f: impl FnOnce(&mut TraceRing) -> R) -> R {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let ring = cur.get_or_insert_with(|| {
            let index = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            TraceRing::new(StreamId { group: 0, index }, capacity())
        });
        f(ring)
    })
}

/// The current thread's innermost open span as a cross-stream context
/// (`(stream, begin seq)`), or `None` when untraced. `par_map` captures
/// this before fanning out so shard streams carry their causal origin.
pub fn current_ctx() -> Option<(StreamId, u32)> {
    if !enabled() {
        return None;
    }
    CURRENT.with(|c| {
        let cur = c.borrow();
        let ring = cur.as_ref()?;
        Some((ring.stream(), ring.current_span()?))
    })
}

/// Reserves the next fan-out generation number. Called once per
/// `par_map` invocation (on the coordinating thread, so generations are
/// deterministic for a deterministic call sequence).
pub fn next_group() -> u32 {
    NEXT_GROUP.fetch_add(1, Ordering::Relaxed)
}

/// Runs `f` with a fresh ring for `stream`, then submits that ring to
/// the finished list and restores the thread's previous ring. This is
/// how `yav-exec` gives each shard task its own stream no matter which
/// worker thread runs it. No-op wrapper when tracing is disabled.
pub fn stream_scope<R>(
    stream: StreamId,
    origin: Option<(StreamId, u32)>,
    f: impl FnOnce() -> R,
) -> R {
    if !enabled() {
        return f();
    }
    let mut ring = TraceRing::new(stream, capacity());
    ring.set_origin(origin);
    let prev = CURRENT.with(|c| c.borrow_mut().replace(ring));
    let out = f();
    let ring = CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let ring = cur.take();
        *cur = prev;
        ring
    });
    if let Some(ring) = ring {
        submit(ring);
    }
    out
}

fn submit(ring: TraceRing) {
    let s = ring.into_stream();
    let m = trace_metrics();
    m.records.add(s.records.len() as u64);
    m.dropped.add(s.dropped);
    m.streams.inc();
    finished().lock().push(s);
}

/// Flushes the calling thread's ring (if it recorded anything) to the
/// finished list. [`drain`] does this implicitly for its caller;
/// long-lived helper threads that trace outside stream scopes must call
/// it themselves before the coordinator drains.
pub fn flush_thread() {
    let ring = CURRENT.with(|c| c.borrow_mut().take());
    if let Some(ring) = ring {
        submit(ring);
    }
}

/// Takes everything traced so far — finished shard streams plus the
/// calling thread's own ring — as one [`Trace`] in canonical stream
/// order. Leaves the collector empty.
pub fn drain() -> Trace {
    flush_thread();
    let mut streams: Vec<StreamTrace> = std::mem::take(&mut *finished().lock());
    streams.sort_by_key(|s| s.stream);
    Trace { streams }
}

/// Discards all collected records and resets stream numbering. Call on
/// the coordinating thread between runs (tests, repeated world builds)
/// so stream ids start from `t0`/`g1` again.
pub fn clear() {
    CURRENT.with(|c| c.borrow_mut().take());
    finished().lock().clear();
    NEXT_THREAD.store(0, Ordering::Relaxed);
    NEXT_GROUP.store(1, Ordering::Relaxed);
}

/// An open span; records its `End` on drop. Obtain via
/// [`crate::trace_span!`] or [`SpanGuard::begin`].
#[derive(Debug)]
#[must_use = "binding to _ drops the guard immediately and traces nothing"]
pub struct SpanGuard {
    open: Option<(SpanName, u32)>,
}

impl SpanGuard {
    /// A guard that records nothing (the disabled path).
    pub fn inert() -> SpanGuard {
        SpanGuard { open: None }
    }

    /// Opens a span with a pre-resolved name. One branch and no
    /// allocation when tracing is disabled.
    #[inline]
    pub fn begin(name: SpanName, arg: u64) -> SpanGuard {
        if !enabled() {
            return SpanGuard::inert();
        }
        let seq = with_ring(|r| r.begin(name, arg));
        SpanGuard {
            open: Some((name, seq)),
        }
    }

    /// Macro support: resolves (and caches) `name` on first traced use,
    /// then opens the span. Call sites use [`crate::trace_span!`].
    #[inline]
    pub fn enter(cell: &'static OnceLock<SpanName>, name: &'static str, arg: u64) -> SpanGuard {
        if !enabled() {
            return SpanGuard::inert();
        }
        SpanGuard::begin(*cell.get_or_init(|| span_name(name)), arg)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, seq)) = self.open.take() {
            with_ring(|r| r.end(seq, name));
        }
    }
}

/// Records a point event with a pre-resolved name. One branch when
/// disabled.
#[inline]
pub fn instant(name: SpanName, arg: u64) {
    if !enabled() {
        return;
    }
    with_ring(|r| r.instant(name, arg));
}

/// Macro support for [`crate::trace_instant!`]: cached name resolution,
/// then [`instant`].
#[inline]
pub fn instant_cached(cell: &'static OnceLock<SpanName>, name: &'static str, arg: u64) {
    if !enabled() {
        return;
    }
    instant(*cell.get_or_init(|| span_name(name)), arg);
}
