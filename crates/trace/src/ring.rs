//! The fixed-size per-stream ring journal.
//!
//! Each [`TraceRing`] has exactly one owner — a thread (via the
//! thread-local in `collector`) or one shard task inside a
//! [`crate::stream_scope`] — so the record path takes no lock and no
//! atomic: bump a plain counter, write one slot. When the ring is full
//! the oldest records are overwritten and counted in `dropped`, so a
//! runaway span can never grow memory.

use crate::record::{EventKind, SpanName, TraceRecord, NO_PARENT};

/// Identifies one record stream in the canonical merge order.
///
/// `group` 0 holds free-running threads (the main thread is `t0` in
/// practice); each `par_map` invocation takes the next group number and
/// its shards become `(group, shard_index)`. Sorting by
/// `(group, index)` therefore yields: main-thread narrative first, then
/// every fan-out in invocation order, shards in shard order — identical
/// no matter which worker thread ran which shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId {
    /// 0 for free-running threads; `par_map` generation otherwise.
    pub group: u32,
    /// Thread number within group 0, shard index otherwise.
    pub index: u32,
}

impl StreamId {
    /// Stable display label: `t<index>` for free-running threads,
    /// `g<group>.s<index>` for scoped shard streams.
    pub fn label(&self) -> String {
        if self.group == 0 {
            format!("t{}", self.index)
        } else {
            format!("g{}.s{}", self.group, self.index)
        }
    }
}

/// A bounded, single-owner event journal.
#[derive(Debug)]
pub struct TraceRing {
    stream: StreamId,
    /// Cross-stream causal origin: the `(stream, begin seq)` under which
    /// this stream was spawned, if any.
    origin: Option<(StreamId, u32)>,
    records: Vec<TraceRecord>,
    /// Index of the oldest record once the ring has wrapped.
    start: usize,
    capacity: usize,
    next_seq: u32,
    dropped: u64,
    /// Begin-seqs of currently open spans, innermost last.
    stack: Vec<u32>,
}

impl TraceRing {
    /// An empty ring for `stream` holding at most `capacity` records
    /// (minimum 8 — a zero-size ring would make every record a drop and
    /// every export empty for no benefit).
    pub fn new(stream: StreamId, capacity: usize) -> TraceRing {
        let capacity = capacity.max(8);
        TraceRing {
            stream,
            origin: None,
            records: Vec::new(),
            start: 0,
            capacity,
            next_seq: 0,
            dropped: 0,
            stack: Vec::new(),
        }
    }

    pub(crate) fn set_origin(&mut self, origin: Option<(StreamId, u32)>) {
        self.origin = origin;
    }

    /// This ring's stream id.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn push(&mut self, record: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else {
            self.records[self.start] = record;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn next_seq(&mut self) -> u32 {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        seq
    }

    /// Opens a span; returns its begin seq for the matching
    /// [`TraceRing::end`].
    pub fn begin(&mut self, name: SpanName, arg: u64) -> u32 {
        let parent = self.stack.last().copied().unwrap_or(NO_PARENT);
        let seq = self.next_seq();
        self.stack.push(seq);
        self.push(TraceRecord {
            seq,
            parent,
            name: name.id(),
            kind: EventKind::Begin,
            arg,
        });
        seq
    }

    /// Closes the span opened at `begin_seq`. Spans close LIFO (RAII
    /// guards enforce this); a mismatched close is recorded anyway and
    /// the stack unwound to it, so one leaked guard cannot corrupt the
    /// rest of the journal.
    pub fn end(&mut self, begin_seq: u32, name: SpanName) {
        while let Some(top) = self.stack.pop() {
            if top == begin_seq {
                break;
            }
        }
        let seq = self.next_seq();
        self.push(TraceRecord {
            seq,
            parent: begin_seq,
            name: name.id(),
            kind: EventKind::End,
            arg: 0,
        });
    }

    /// Begin-seq of the innermost open span, if any.
    pub fn current_span(&self) -> Option<u32> {
        self.stack.last().copied()
    }

    /// Records a point event under the currently open span.
    pub fn instant(&mut self, name: SpanName, arg: u64) {
        let parent = self.stack.last().copied().unwrap_or(NO_PARENT);
        let seq = self.next_seq();
        self.push(TraceRecord {
            seq,
            parent,
            name: name.id(),
            kind: EventKind::Instant,
            arg,
        });
    }

    /// Freezes the ring into an exportable stream: records in seq order
    /// (oldest surviving first).
    pub fn into_stream(self) -> StreamTrace {
        let mut records = self.records;
        records.rotate_left(self.start);
        StreamTrace {
            stream: self.stream,
            origin: self.origin,
            records,
            dropped: self.dropped,
        }
    }
}

/// One stream's frozen records, ready for merging and export.
#[derive(Debug, Clone)]
pub struct StreamTrace {
    /// Which stream these records belong to.
    pub stream: StreamId,
    /// Cross-stream causal origin (`par_map` caller's open span).
    pub origin: Option<(StreamId, u32)>,
    /// Records in logical order, oldest surviving first.
    pub records: Vec<TraceRecord>,
    /// Records lost to ring wrap-around.
    pub dropped: u64,
}

/// A full drained trace: streams in canonical `(group, index)` order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Streams sorted by `(group, index)`.
    pub streams: Vec<StreamTrace>,
}

impl Trace {
    /// Total records across all streams.
    pub fn len(&self) -> usize {
        self.streams.iter().map(|s| s.records.len()).sum()
    }

    /// True when no stream holds any record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records lost to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.streams.iter().map(|s| s.dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::span_name;

    fn sid() -> StreamId {
        StreamId { group: 0, index: 0 }
    }

    #[test]
    fn ring_orders_and_nests() {
        let mut r = TraceRing::new(sid(), 64);
        let outer = span_name("test.outer");
        let inner = span_name("test.inner");
        let a = r.begin(outer, 0);
        let b = r.begin(inner, 0);
        r.instant(span_name("test.tick"), 42);
        r.end(b, inner);
        r.end(a, outer);
        let s = r.into_stream();
        assert_eq!(s.records.len(), 5);
        assert_eq!(s.records[0].parent, NO_PARENT);
        assert_eq!(s.records[1].parent, a);
        assert_eq!(s.records[2].parent, b);
        assert_eq!(s.records[2].arg, 42);
        let seqs: Vec<u32> = s.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_ring_drops_oldest() {
        let mut r = TraceRing::new(sid(), 8);
        let tick = span_name("test.tick");
        for i in 0..20u64 {
            r.instant(tick, i);
        }
        assert_eq!(r.dropped(), 12);
        let s = r.into_stream();
        assert_eq!(s.records.len(), 8);
        // Oldest survivor first, newest last.
        assert_eq!(s.records.first().map(|r| r.arg), Some(12));
        assert_eq!(s.records.last().map(|r| r.arg), Some(19));
        assert_eq!(s.dropped, 12);
    }

    #[test]
    fn mismatched_end_unwinds_stack() {
        let mut r = TraceRing::new(sid(), 16);
        let outer = span_name("test.outer");
        let inner = span_name("test.inner");
        let a = r.begin(outer, 0);
        let _b = r.begin(inner, 0);
        // Close outer while inner is still open: stack unwinds past it.
        r.end(a, outer);
        let root = span_name("test.tick");
        r.instant(root, 0);
        let s = r.into_stream();
        assert_eq!(s.records.last().map(|r| r.parent), Some(NO_PARENT));
    }
}
