//! The SLO / health engine: rolling-window quantiles and anomaly flags
//! over the telemetry histograms.
//!
//! Telemetry metrics are cumulative-since-start, which hides regressions
//! behind hours of healthy history. [`HealthEngine::tick`] differences
//! successive reads of each watched histogram's log buckets (see
//! `Histogram::bucket_counts`) and counter pair, keeps the last
//! `window` per-tick deltas, and answers with a [`HealthReport`]:
//! windowed p50/p95/p99 latency, windowed drop rate, and two kinds of
//! flag per area —
//!
//! * **SLO breach**: the windowed value crossed an absolute limit from
//!   [`SloConfig`] (p99 latency, drop rate);
//! * **anomaly**: the latest tick sits more than `anomaly_sigma` sample
//!   standard deviations above the window mean (`yav_stats::Summary`
//!   over the tick history), i.e. a sudden shift even while still
//!   inside the SLO.
//!
//! The report exports as JSON and as Prometheus text, next to the
//! registry-wide exporters in `yav-telemetry`.

use std::collections::{BTreeMap, VecDeque};
use yav_stats::Summary;
use yav_telemetry::{Counter, Histogram};

/// One monitored pipeline area: a latency histogram plus an
/// events/drops counter pair from the telemetry registry.
#[derive(Debug, Clone)]
pub struct Watch {
    /// Report label (`"ingest"`, `"pme"`, ...).
    pub area: &'static str,
    /// Latency histogram metric name (microsecond-scale).
    pub latency_hist: &'static str,
    /// Throughput counter: successfully handled events.
    pub events_ctr: &'static str,
    /// Drop counter paired against `events_ctr`, if the area has one.
    pub drops_ctr: Option<&'static str>,
}

/// Thresholds and window shape for the health engine.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Rolling window length, in ticks.
    pub window: usize,
    /// Absolute SLO: windowed p99 latency limit, microseconds.
    pub p99_limit_us: f64,
    /// Absolute SLO: windowed drop-rate limit (drops / (events+drops)).
    pub drop_rate_limit: f64,
    /// Anomaly sensitivity: flag a tick this many sample standard
    /// deviations above the window mean (needs ≥ 5 ticks of history).
    pub anomaly_sigma: f64,
    /// The areas to monitor.
    pub watches: Vec<Watch>,
}

impl Default for SloConfig {
    /// The production defaults: watch nURL ingestion and PME prediction,
    /// 60-tick window, 500 µs p99 budget (5 000× the measured ~100 ns
    /// steady-state observe cost — a breach means something is badly
    /// wrong, not merely noisy), 5 % drop budget, 3σ anomalies.
    fn default() -> SloConfig {
        SloConfig {
            window: 60,
            p99_limit_us: 500.0,
            drop_rate_limit: 0.05,
            anomaly_sigma: 3.0,
            watches: vec![
                Watch {
                    area: "ingest",
                    latency_hist: "ingest.observe.us",
                    events_ctr: "core.monitor.events",
                    drops_ctr: Some("core.monitor.nurl.parse_error"),
                },
                Watch {
                    area: "pme",
                    latency_hist: "pme.predict.us",
                    events_ctr: "pme.predictions_total",
                    drops_ctr: None,
                },
            ],
        }
    }
}

/// Per-tick delta for one watch: latency bucket deltas (midpoint bits →
/// count) plus the counter movement.
#[derive(Debug, Clone, Default)]
struct TickDelta {
    buckets: BTreeMap<u64, u64>,
    events: u64,
    drops: u64,
    /// Tick-local p99 latency, for the anomaly history.
    p99_us: f64,
    /// Tick-local drop rate.
    drop_rate: f64,
}

struct WatchState {
    watch: Watch,
    hist: Histogram,
    events: Counter,
    drops: Option<Counter>,
    prev_buckets: BTreeMap<u64, u64>,
    prev_events: u64,
    prev_drops: u64,
    window: VecDeque<TickDelta>,
}

/// Differences cumulative telemetry into rolling windows and flags SLO
/// breaches and anomalies. One engine per process is typical; tick it
/// from the supervision loop (every simulated day in the world builder,
/// every few seconds in a live deployment).
pub struct HealthEngine {
    config: SloConfig,
    states: Vec<WatchState>,
    ticks: u64,
}

impl HealthEngine {
    /// An engine over the global telemetry registry.
    pub fn new(config: SloConfig) -> HealthEngine {
        let states = config
            .watches
            .iter()
            .map(|w| WatchState {
                watch: w.clone(),
                hist: yav_telemetry::histogram(w.latency_hist),
                events: yav_telemetry::counter(w.events_ctr),
                drops: w.drops_ctr.map(yav_telemetry::counter),
                prev_buckets: BTreeMap::new(),
                prev_events: 0,
                prev_drops: 0,
                window: VecDeque::new(),
            })
            .collect();
        HealthEngine {
            config,
            states,
            ticks: 0,
        }
    }

    /// An engine with the default watches and thresholds.
    pub fn with_defaults() -> HealthEngine {
        HealthEngine::new(SloConfig::default())
    }

    /// Reads every watched metric, appends one tick of deltas to each
    /// rolling window, and returns the current health snapshot.
    pub fn tick(&mut self) -> HealthReport {
        self.ticks += 1;
        let window = self.config.window.max(1);
        for st in &mut self.states {
            let now: BTreeMap<u64, u64> = st
                .hist
                .bucket_counts()
                .into_iter()
                .map(|(mid, c)| (mid.to_bits(), c))
                .collect();
            let mut delta = TickDelta::default();
            for (&bits, &c) in &now {
                let before = st.prev_buckets.get(&bits).copied().unwrap_or(0);
                if c > before {
                    delta.buckets.insert(bits, c - before);
                }
            }
            st.prev_buckets = now;

            let events_now = st.events.get();
            let drops_now = st.drops.as_ref().map_or(0, Counter::get);
            delta.events = events_now.saturating_sub(st.prev_events);
            delta.drops = drops_now.saturating_sub(st.prev_drops);
            st.prev_events = events_now;
            st.prev_drops = drops_now;

            delta.p99_us = weighted_quantile(&delta.buckets, 0.99);
            let denom = delta.events + delta.drops;
            delta.drop_rate = if denom == 0 {
                0.0
            } else {
                delta.drops as f64 / denom as f64
            };

            st.window.push_back(delta);
            while st.window.len() > window {
                st.window.pop_front();
            }
        }
        self.report()
    }

    /// The health snapshot for the current windows (no new reads).
    pub fn report(&self) -> HealthReport {
        let areas = self.states.iter().map(|st| self.area_health(st)).collect();
        HealthReport {
            ticks: self.ticks,
            areas,
        }
    }

    fn area_health(&self, st: &WatchState) -> AreaHealth {
        let mut merged: BTreeMap<u64, u64> = BTreeMap::new();
        let mut events = 0u64;
        let mut drops = 0u64;
        for t in &st.window {
            for (&bits, &c) in &t.buckets {
                *merged.entry(bits).or_insert(0) += c;
            }
            events += t.events;
            drops += t.drops;
        }
        let p50_us = weighted_quantile(&merged, 0.50);
        let p95_us = weighted_quantile(&merged, 0.95);
        let p99_us = weighted_quantile(&merged, 0.99);
        let denom = events + drops;
        let drop_rate = if denom == 0 {
            0.0
        } else {
            drops as f64 / denom as f64
        };

        let mut flags = Vec::new();
        if p99_us.is_finite() && p99_us > self.config.p99_limit_us {
            flags.push(HealthFlag::LatencySlo {
                p99_us,
                limit_us: self.config.p99_limit_us,
            });
        }
        if drop_rate > self.config.drop_rate_limit {
            flags.push(HealthFlag::DropSlo {
                rate: drop_rate,
                limit: self.config.drop_rate_limit,
            });
        }
        // Anomalies: latest tick vs the window that preceded it.
        if st.window.len() >= 5 {
            let latest = st.window.back().expect("window checked non-empty");
            let history: Vec<&TickDelta> = st.window.iter().take(st.window.len() - 1).collect();
            let lat: Vec<f64> = history
                .iter()
                .map(|t| t.p99_us)
                .filter(|v| v.is_finite())
                .collect();
            if lat.len() >= 4 && latest.p99_us.is_finite() {
                let s = Summary::of(&lat);
                let bound = s.mean + self.config.anomaly_sigma * s.std;
                if latest.p99_us > bound && s.std > 0.0 {
                    flags.push(HealthFlag::LatencyAnomaly {
                        p99_us: latest.p99_us,
                        baseline_us: s.mean,
                    });
                }
            }
            let dr: Vec<f64> = history.iter().map(|t| t.drop_rate).collect();
            let s = Summary::of(&dr);
            let bound = s.mean + self.config.anomaly_sigma * s.std;
            if s.std > 0.0 && latest.drop_rate > bound {
                flags.push(HealthFlag::DropAnomaly {
                    rate: latest.drop_rate,
                    baseline: s.mean,
                });
            }
        }

        let status = if flags.iter().any(|f| {
            matches!(
                f,
                HealthFlag::LatencySlo { .. } | HealthFlag::DropSlo { .. }
            )
        }) {
            HealthStatus::Critical
        } else if flags.is_empty() {
            HealthStatus::Ok
        } else {
            HealthStatus::Warn
        };

        AreaHealth {
            area: st.watch.area.to_owned(),
            events,
            drops,
            drop_rate,
            p50_us,
            p95_us,
            p99_us,
            flags,
            status,
        }
    }
}

/// Weighted quantile over `(midpoint bits → count)` log buckets.
/// Positive floats order like their bit patterns, so the `BTreeMap`'s
/// key order is numeric order. `NaN` when empty.
fn weighted_quantile(buckets: &BTreeMap<u64, u64>, q: f64) -> f64 {
    let total: u64 = buckets.values().sum();
    if total == 0 {
        return f64::NAN;
    }
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (&bits, &c) in buckets {
        cumulative += c;
        if cumulative >= target {
            return f64::from_bits(bits);
        }
    }
    f64::NAN
}

/// Area status, worst flag wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// Inside SLO, no anomalies.
    Ok,
    /// Inside SLO but the latest tick is anomalous.
    Warn,
    /// An absolute SLO is breached.
    Critical,
}

impl HealthStatus {
    /// Stable lowercase label (JSON / Prometheus value).
    pub fn label(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Warn => "warn",
            HealthStatus::Critical => "critical",
        }
    }

    fn code(self) -> u8 {
        match self {
            HealthStatus::Ok => 0,
            HealthStatus::Warn => 1,
            HealthStatus::Critical => 2,
        }
    }
}

/// Why an area is not `Ok`.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthFlag {
    /// Windowed p99 latency above the absolute SLO.
    LatencySlo {
        /// Observed windowed p99, µs.
        p99_us: f64,
        /// Configured limit, µs.
        limit_us: f64,
    },
    /// Latest tick's p99 far above the window baseline.
    LatencyAnomaly {
        /// Latest tick p99, µs.
        p99_us: f64,
        /// Window mean p99, µs.
        baseline_us: f64,
    },
    /// Windowed drop rate above the absolute SLO.
    DropSlo {
        /// Observed windowed drop rate.
        rate: f64,
        /// Configured limit.
        limit: f64,
    },
    /// Latest tick's drop rate far above the window baseline.
    DropAnomaly {
        /// Latest tick drop rate.
        rate: f64,
        /// Window mean drop rate.
        baseline: f64,
    },
}

impl HealthFlag {
    /// Stable kind label.
    pub fn kind(&self) -> &'static str {
        match self {
            HealthFlag::LatencySlo { .. } => "latency_slo",
            HealthFlag::LatencyAnomaly { .. } => "latency_anomaly",
            HealthFlag::DropSlo { .. } => "drop_slo",
            HealthFlag::DropAnomaly { .. } => "drop_anomaly",
        }
    }
}

/// Windowed health of one watched area.
#[derive(Debug, Clone)]
pub struct AreaHealth {
    /// Watch label.
    pub area: String,
    /// Events handled inside the window.
    pub events: u64,
    /// Events dropped inside the window.
    pub drops: u64,
    /// `drops / (events + drops)` over the window.
    pub drop_rate: f64,
    /// Windowed median latency, µs (`NaN` when idle).
    pub p50_us: f64,
    /// Windowed 95th-percentile latency, µs.
    pub p95_us: f64,
    /// Windowed 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Active flags, SLO breaches first.
    pub flags: Vec<HealthFlag>,
    /// Worst-flag status.
    pub status: HealthStatus,
}

/// One snapshot of every watched area.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Engine ticks so far.
    pub ticks: u64,
    /// Per-area health, in watch order.
    pub areas: Vec<AreaHealth>,
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

impl HealthReport {
    /// The overall status: worst area wins (`Ok` when nothing is
    /// watched).
    pub fn status(&self) -> HealthStatus {
        self.areas
            .iter()
            .map(|a| a.status)
            .max_by_key(|s| s.code())
            .unwrap_or(HealthStatus::Ok)
    }

    /// Renders the report as one JSON object (hand-rolled, like the
    /// telemetry exporters).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "{{\"ticks\":{},\"status\":\"{}\",\"areas\":[",
            self.ticks,
            self.status().label()
        );
        for (i, a) in self.areas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"area\":\"{}\",\"status\":\"{}\",\"events\":{},\"drops\":{},\
                 \"drop_rate\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"flags\":[",
                a.area,
                a.status.label(),
                a.events,
                a.drops,
                json_num(a.drop_rate),
                json_num(a.p50_us),
                json_num(a.p95_us),
                json_num(a.p99_us),
            );
            for (j, f) in a.flags.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match f {
                    HealthFlag::LatencySlo { p99_us, limit_us } => {
                        let _ = write!(
                            out,
                            "{{\"kind\":\"latency_slo\",\"p99_us\":{},\"limit_us\":{}}}",
                            json_num(*p99_us),
                            json_num(*limit_us)
                        );
                    }
                    HealthFlag::LatencyAnomaly {
                        p99_us,
                        baseline_us,
                    } => {
                        let _ = write!(
                            out,
                            "{{\"kind\":\"latency_anomaly\",\"p99_us\":{},\"baseline_us\":{}}}",
                            json_num(*p99_us),
                            json_num(*baseline_us)
                        );
                    }
                    HealthFlag::DropSlo { rate, limit } => {
                        let _ = write!(
                            out,
                            "{{\"kind\":\"drop_slo\",\"rate\":{},\"limit\":{}}}",
                            json_num(*rate),
                            json_num(*limit)
                        );
                    }
                    HealthFlag::DropAnomaly { rate, baseline } => {
                        let _ = write!(
                            out,
                            "{{\"kind\":\"drop_anomaly\",\"rate\":{},\"baseline\":{}}}",
                            json_num(*rate),
                            json_num(*baseline)
                        );
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Renders the report in the Prometheus text exposition format, one
    /// labelled series family per statistic, next to
    /// `yav_telemetry::prometheus_text`.
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write;
        fn prom(v: f64) -> String {
            if v.is_nan() {
                "NaN".into()
            } else {
                format!("{v}")
            }
        }
        let mut out = String::new();
        for (family, kind) in [
            ("yav_health_status", "gauge"),
            ("yav_health_p50_us", "gauge"),
            ("yav_health_p95_us", "gauge"),
            ("yav_health_p99_us", "gauge"),
            ("yav_health_drop_rate", "gauge"),
            ("yav_health_events_window", "gauge"),
            ("yav_health_flags", "gauge"),
        ] {
            let _ = writeln!(out, "# TYPE {family} {kind}");
            for a in &self.areas {
                let v = match family {
                    "yav_health_status" => a.status.code() as f64,
                    "yav_health_p50_us" => a.p50_us,
                    "yav_health_p95_us" => a.p95_us,
                    "yav_health_p99_us" => a.p99_us,
                    "yav_health_drop_rate" => a.drop_rate,
                    "yav_health_events_window" => a.events as f64,
                    _ => a.flags.len() as f64,
                };
                let _ = writeln!(out, "{family}{{area=\"{}\"}} {}", a.area, prom(v));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_engine(suffix: &str) -> HealthEngine {
        // Unique metric names per test: the registry is process-global.
        let hist: &'static str = Box::leak(format!("health.test_{suffix}.us").into_boxed_str());
        let ev: &'static str = Box::leak(format!("health.test_{suffix}.events").into_boxed_str());
        let dr: &'static str = Box::leak(format!("health.test_{suffix}.drops").into_boxed_str());
        HealthEngine::new(SloConfig {
            window: 8,
            p99_limit_us: 100.0,
            drop_rate_limit: 0.10,
            anomaly_sigma: 3.0,
            watches: vec![Watch {
                area: "test",
                latency_hist: hist,
                events_ctr: ev,
                drops_ctr: Some(dr),
            }],
        })
    }

    #[test]
    fn windowed_quantiles_track_recent_load() {
        let mut eng = test_engine("quantiles");
        let w = &eng.config.watches[0];
        let hist = yav_telemetry::histogram(w.latency_hist);
        let events = yav_telemetry::counter(w.events_ctr);
        for _ in 0..100 {
            hist.observe(10.0);
            events.inc();
        }
        let r = eng.tick();
        let a = &r.areas[0];
        assert_eq!(a.events, 100);
        assert!(a.p99_us > 5.0 && a.p99_us < 20.0, "p99={}", a.p99_us);
        assert_eq!(a.status, HealthStatus::Ok);

        // A latency regression crosses the absolute SLO.
        for _ in 0..100 {
            hist.observe(5000.0);
            events.inc();
        }
        let r = eng.tick();
        let a = &r.areas[0];
        assert!(a.p99_us > 100.0);
        assert_eq!(a.status, HealthStatus::Critical);
        assert!(a.flags.iter().any(|f| f.kind() == "latency_slo"));
    }

    #[test]
    fn drop_rate_flags_and_exports() {
        let mut eng = test_engine("drops");
        let w = &eng.config.watches[0];
        let events = yav_telemetry::counter(w.events_ctr);
        let drops = yav_telemetry::counter(w.drops_ctr.expect("configured"));
        events.add(50);
        drops.add(50);
        let r = eng.tick();
        let a = &r.areas[0];
        assert!((a.drop_rate - 0.5).abs() < 1e-9);
        assert_eq!(a.status, HealthStatus::Critical);
        assert!(a.flags.iter().any(|f| f.kind() == "drop_slo"));

        let json = r.to_json();
        assert!(json.contains("\"drop_rate\":0.5"));
        assert!(json.contains("\"kind\":\"drop_slo\""));
        let prom = r.prometheus_text();
        assert!(prom.contains("yav_health_drop_rate{area=\"test\"} 0.5"));
        assert!(prom.contains("yav_health_status{area=\"test\"} 2"));
    }

    #[test]
    fn anomaly_fires_on_sudden_shift() {
        let mut eng = test_engine("anomaly");
        let w = &eng.config.watches[0];
        let events = yav_telemetry::counter(w.events_ctr);
        let drops = yav_telemetry::counter(w.drops_ctr.expect("configured"));
        // Steady state: ~2% drops, under the 10% SLO, with a little
        // jitter so std > 0.
        for i in 0..7u64 {
            events.add(98 + (i % 2));
            drops.add(2);
            eng.tick();
        }
        // Sudden shift to 8% — still inside the SLO, but anomalous.
        events.add(92);
        drops.add(8);
        let r = eng.tick();
        let a = &r.areas[0];
        assert_eq!(a.status, HealthStatus::Warn, "flags={:?}", a.flags);
        assert!(a.flags.iter().any(|f| f.kind() == "drop_anomaly"));
    }

    #[test]
    fn idle_engine_reports_ok_nulls() {
        let mut eng = test_engine("idle");
        let r = eng.tick();
        let a = &r.areas[0];
        assert_eq!(a.status, HealthStatus::Ok);
        assert!(a.p99_us.is_nan());
        assert!(r.to_json().contains("\"p99_us\":null"));
    }
}
