//! Per-shard bump arena for event bytes.
//!
//! The steady-state generate → market → analyze window loop must not
//! allocate per event (DESIGN.md §18). Everything textual that varies
//! only per *shard* — publisher hosts, asset paths, pre-rendered
//! user-agent strings, nURL template prefixes — is interned once into a
//! [`Bump`] at shard setup and referenced afterwards through Copy
//! [`Span`] handles. Between windows the arena is [`Bump::reset`] — the
//! length drops to zero, the capacity (and therefore the backing heap
//! block) is retained, so the next window's interning is a plain byte
//! copy into memory the shard already owns.
//!
//! This is safe Rust: spans are index pairs, not borrowed pointers, so
//! the arena can be grown and reset freely without lifetime plumbing;
//! resolving a span is one bounds-checked slice. A span outliving its
//! reset yields text from the *new* generation (or `""` when out of
//! bounds) — garbage-in-garbage-out rather than UB, and the generation
//! counter lets debug assertions catch it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A handle to an interned string: byte offset + length into the arena
/// that produced it. Copy and 8 bytes, so events carry spans by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    start: u32,
    len: u32,
}

impl Span {
    /// The empty span — resolves to `""` in any arena.
    pub const EMPTY: Span = Span { start: 0, len: 0 };

    /// Length of the interned text in bytes.
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// True for the zero-length span.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// An append-only string arena: one backing `String`, bump-allocated,
/// reset (not freed) between windows.
#[derive(Debug, Default, Clone)]
pub struct Bump {
    text: String,
    generation: u64,
}

impl Bump {
    /// An empty arena.
    pub fn new() -> Bump {
        Bump::default()
    }

    /// An empty arena with `bytes` of pre-reserved capacity.
    pub fn with_capacity(bytes: usize) -> Bump {
        Bump {
            text: String::with_capacity(bytes),
            generation: 0,
        }
    }

    /// Interns `s`, returning its span. Allocation only happens when the
    /// backing buffer must grow past its high-water mark.
    pub fn push(&mut self, s: &str) -> Span {
        let start = self.text.len();
        self.text.push_str(s);
        Span {
            start: start as u32,
            len: s.len() as u32,
        }
    }

    /// Interns whatever `write` appends to the backing buffer — the
    /// `format!`-free way to intern composed strings:
    ///
    /// ```
    /// use std::fmt::Write;
    /// let mut arena = yav_arena::Bump::new();
    /// let span = arena.push_with(|out| {
    ///     let _ = write!(out, "http://www.{}/article/{}.html", "news.example", 7);
    /// });
    /// assert_eq!(arena.get(span), "http://www.news.example/article/7.html");
    /// ```
    pub fn push_with(&mut self, write: impl FnOnce(&mut String)) -> Span {
        let start = self.text.len();
        write(&mut self.text);
        Span {
            start: start as u32,
            len: (self.text.len() - start) as u32,
        }
    }

    /// Resolves a span to its text. Out-of-bounds or non-boundary spans
    /// (possible only by mixing spans across arenas or resets) resolve
    /// to `""` — fail-closed, never a panic.
    pub fn get(&self, span: Span) -> &str {
        self.text
            .get(span.start as usize..(span.start + span.len) as usize)
            .unwrap_or("")
    }

    /// Bytes currently interned.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Capacity of the backing buffer (the retained high-water mark).
    pub fn capacity(&self) -> usize {
        self.text.capacity()
    }

    /// Resets the arena for the next window: length to zero, capacity
    /// retained, generation bumped. Spans issued before the reset are
    /// invalidated (they resolve against the new generation's bytes).
    pub fn reset(&mut self) {
        self.text.clear();
        self.generation += 1;
    }

    /// How many times this arena has been reset — lets owners assert a
    /// span belongs to the current window in debug builds.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write;

    #[test]
    fn push_get_round_trip() {
        let mut arena = Bump::new();
        let a = arena.push("hello");
        let b = arena.push("");
        let c = arena.push("world");
        assert_eq!(arena.get(a), "hello");
        assert_eq!(arena.get(b), "");
        assert_eq!(arena.get(c), "world");
        assert_eq!(arena.len(), 10);
        assert!(b.is_empty() && !c.is_empty());
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn push_with_composes_without_format() {
        let mut arena = Bump::new();
        let span = arena.push_with(|out| {
            let _ = write!(out, "api.{}/v2/feed?sess={}", "pub.example", 42u32);
        });
        assert_eq!(arena.get(span), "api.pub.example/v2/feed?sess=42");
    }

    #[test]
    fn reset_retains_capacity_and_bumps_generation() {
        let mut arena = Bump::with_capacity(64);
        let cap0 = arena.capacity();
        arena.push("some bytes that fit in the preallocation");
        assert_eq!(arena.generation(), 0);
        arena.reset();
        assert_eq!(arena.generation(), 1);
        assert!(arena.is_empty());
        assert_eq!(arena.capacity(), cap0, "reset must not free");
        let s = arena.push("fresh");
        assert_eq!(arena.get(s), "fresh");
    }

    #[test]
    fn stale_or_foreign_spans_fail_closed() {
        let mut arena = Bump::new();
        let span = arena.push("will dangle");
        arena.reset();
        assert_eq!(arena.get(span), "", "stale span past new length");
        let other = Bump::new();
        assert_eq!(other.get(Span { start: 900, len: 4 }), "");
        assert_eq!(other.get(Span::EMPTY), "");
    }
}
