//! Borrowed ⇄ owned parser parity: `UrlRef` must agree with `Url` on
//! every input — same accepts, same rejects, same error values, same
//! components after decoding. The owned parser is a wrapper over the
//! borrowed one, but the decode split (eager in `Url::parse`, deferred
//! into `UrlScratch` / `validate_query`) re-implements the escape and
//! UTF-8 handling, so this suite fuzzes the seam: the hostile corpus of
//! `core/tests/malformed_nurls.rs` (prefix truncations, single-byte
//! corruptions, garbage strings) plus property-based random inputs.

use proptest::prelude::*;
use yav_crypto::{PriceCrypter, PriceKeys};
use yav_nurl::fields::PricePayload;
use yav_nurl::{template, NurlFields, Url, UrlParseError, UrlRef, UrlScratch};
use yav_types::{Adx, AuctionId, Cpm, DspId, ImpressionId};

/// One valid emission per exchange and price visibility — the same
/// seeds `core/tests/malformed_nurls.rs` mutates.
fn valid_emissions() -> Vec<String> {
    let crypter = PriceCrypter::new(PriceKeys::derive("malformed-nurls"));
    let mut out = Vec::new();
    for (i, &adx) in Adx::ALL.iter().enumerate() {
        let clear = PricePayload::Cleartext(Cpm::from_f64(0.25 + i as f64 / 100.0));
        let token = crypter.encrypt(1_000_000 + i as u64, [i as u8; 16]);
        let enc = PricePayload::Encrypted(token);
        for price in [clear, enc] {
            let fields = NurlFields::minimal(
                adx,
                DspId(i as u32),
                price,
                ImpressionId(i as u64),
                AuctionId(i as u64 + 1000),
            );
            out.push(yav_nurl::emit(&fields).to_string());
        }
    }
    out
}

/// The full parity check for one input string.
fn check_parity(input: &str) {
    let owned = Url::parse(input);
    let borrowed = UrlRef::parse(input);
    let mut scratch = UrlScratch::new();
    match borrowed {
        Err(err) => {
            // Structural reject: the owned parser must reject with the
            // identical error.
            assert_eq!(owned, Err(err), "structural reject mismatch: {input:?}");
        }
        Ok(url) => {
            // Deferred-decode outcomes must agree with the eager ones:
            // validate, scratch-decode and owned parse all see the same
            // first error (or all succeed).
            let validated = url.validate_query();
            let decoded = scratch.decode(&url);
            match owned {
                Err(err) => {
                    assert!(
                        matches!(err, UrlParseError::Escape(_)),
                        "owned structural error {err:?} after borrowed accept: {input:?}"
                    );
                    assert_eq!(validated, Err(err.clone()), "validate mismatch: {input:?}");
                    assert_eq!(
                        decoded.map(|_| ()),
                        Err(err),
                        "scratch decode mismatch: {input:?}"
                    );
                }
                Ok(owned) => {
                    assert_eq!(
                        validated,
                        Ok(()),
                        "validate rejected a decodable: {input:?}"
                    );
                    let pairs = match decoded {
                        Ok(pairs) => pairs,
                        Err(err) => panic!("scratch rejected a decodable: {input:?}: {err}"),
                    };
                    assert_eq!(owned.is_https(), url.is_https(), "{input:?}");
                    assert_eq!(
                        owned.host(),
                        url.host_raw().to_ascii_lowercase(),
                        "{input:?}"
                    );
                    assert_eq!(owned.path(), url.path(), "{input:?}");
                    let borrowed_pairs: Vec<(String, String)> = pairs
                        .iter()
                        .map(|(k, v)| (k.to_owned(), v.to_owned()))
                        .collect();
                    let owned_pairs: Vec<(String, String)> = owned.query_pairs().to_vec();
                    assert_eq!(owned_pairs, borrowed_pairs, "{input:?}");
                    // Keyed lookup agrees for every present key.
                    for (k, _) in owned.query_pairs() {
                        assert_eq!(owned.query(k), pairs.get(k), "key {k:?} in {input:?}");
                    }
                }
            }
        }
    }
}

/// Template parity: borrowed notification parsing must reach the same
/// fields / non-notification / payload-error verdicts as the owned path.
fn check_template_parity(input: &str) {
    let mut scratch = UrlScratch::new();
    let borrowed = UrlRef::parse(input)
        .ok()
        .filter(|u| u.validate_query().is_ok());
    let owned = Url::parse(input).ok();
    // Accept sets agree (check_parity pins the error details).
    assert_eq!(owned.is_some(), borrowed.is_some(), "{input:?}");
    let (Some(owned), Some(url)) = (owned, borrowed) else {
        return;
    };
    let a = template::parse(&owned);
    let b = template::parse_borrowed(&url, &mut scratch);
    match (a, b) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "{input:?}"),
        (Err(_), Err(_)) => {}
        (a, b) => panic!("template verdict mismatch on {input:?}: {a:?} vs {b:?}"),
    }
}

fn check_both(input: &str) {
    check_parity(input);
    check_template_parity(input);
}

#[test]
fn emissions_and_prefix_truncations_agree() {
    for url in valid_emissions() {
        for len in 0..=url.len() {
            check_both(&url[..len]);
        }
    }
}

#[test]
fn single_byte_corruptions_agree() {
    for url in valid_emissions() {
        let bytes = url.as_bytes();
        for pos in 0..bytes.len() {
            for garbage in [b'%', b'?', b'=', b'&', b' ', b'\0', b'~'] {
                if bytes[pos] == garbage {
                    continue;
                }
                let mut mutated = bytes.to_vec();
                mutated[pos] = garbage;
                check_both(&String::from_utf8(mutated).expect("ASCII stays UTF-8"));
            }
        }
    }
}

#[test]
fn garbage_corpus_agrees() {
    let long = format!(
        "http://cpp.imp.mpx.mopub.com/imp?charge_price=0.5&pad={}",
        "x".repeat(1 << 16)
    );
    for input in [
        "",
        " ",
        "http://",
        "https://",
        "http:///",
        "http://:80/",
        "http://cpp.imp.mpx.mopub.com",
        "http://cpp.imp.mpx.mopub.com/imp?",
        "http://cpp.imp.mpx.mopub.com/imp?%",
        "http://cpp.imp.mpx.mopub.com/imp?%zz=1",
        "http://cpp.imp.mpx.mopub.com/imp?charge_price=",
        "http://cpp.imp.mpx.mopub.com/imp?charge_price=%GG",
        "http://cpp.imp.mpx.mopub.com/imp?charge_price=NaN",
        "http://cpp.imp.mpx.mopub.com/imp?charge_price=-1e309",
        "ftp://cpp.imp.mpx.mopub.com/imp?charge_price=0.5",
        "not a url at all",
        "héllo wörld 🦀",
        "%%%%%%%%",
        "\0\0\0",
        // Decode-layer hostiles: escape truncation, non-hex, raw
        // non-UTF-8 decodes, multi-byte boundary cases, plus-as-space.
        "http://x.com/?a=%80",
        "http://x.com/?a=%f0%9f%a6%80",
        "http://x.com/?a=%f0%9f%a6",
        "http://x.com/?a=ok%ffx",
        "http://x.com/?%2b=+&%3d==",
        "http://x.com/?a=1&&b=2&",
        "http://x.com/?=bare&flag",
        "http://X.COM:8080/Mixed/Case?K=V#frag?ghost=1",
        &long,
    ] {
        check_both(input);
    }
}

#[test]
fn borrowed_parsing_is_tier_independent() {
    // The borrowed pipeline's scans dispatch through yav-simd; the full
    // detection outcome (fields, rejection, or error) must not depend on
    // the tier. Snapshot everything at the scalar tier, then re-run at
    // every available tier and demand identical output.
    let mut corpus: Vec<String> = valid_emissions();
    for url in valid_emissions() {
        corpus.push(url[..url.len() / 2].to_owned());
        corpus.push(url.replace("price", "pricé"));
    }
    corpus.extend(
        [
            "http://cpp.imp.mpx.mopub.com/imp?%zz=1",
            "http://x.com/?a=%f0%9f%a6%80&b=a+b&c=%80",
            "http://X.COM:8080/Mixed/Case?K=V",
            "not a url at all",
        ]
        .map(str::to_owned),
    );
    let snapshot = |corpus: &[String]| -> Vec<String> {
        let mut scratch = UrlScratch::new();
        corpus
            .iter()
            .map(|input| match UrlRef::parse(input) {
                Err(e) => format!("parse-err {e:?}"),
                Ok(url) => match template::parse_borrowed(&url, &mut scratch) {
                    Ok(fields) => format!("fields {fields:?}"),
                    Err(e) => format!("template-err {e:?}"),
                },
            })
            .collect()
    };
    yav_simd::force_level(Some(yav_simd::Level::Scalar));
    let want = snapshot(&corpus);
    for lvl in yav_simd::Level::all()
        .iter()
        .copied()
        .filter(|l| l.available())
    {
        yav_simd::force_level(Some(lvl));
        assert_eq!(snapshot(&corpus), want, "{lvl:?}");
    }
    yav_simd::force_level(None);
}

proptest! {
    /// Random printable inputs, biased toward URL-shaped strings.
    #[test]
    fn prop_random_strings_agree(s in "\\PC{0,60}") {
        check_both(&s);
    }

    /// URL-shaped inputs with adversarial query bytes.
    #[test]
    fn prop_urlish_inputs_agree(
        https in any::<bool>(),
        host in "[A-Za-z0-9._-]{0,12}",
        path in "[/A-Za-z0-9._%+-]{0,16}",
        query in "[A-Za-z0-9=&%+ ._-]{0,40}",
    ) {
        let scheme = if https { "https" } else { "http" };
        check_both(&format!("{scheme}://{host}/{path}?{query}"));
    }
}
