//! Per-exchange notification-URL templates.
//!
//! Every exchange has a *house format*: its notification domain and path,
//! its parameter vocabulary, and how it encodes the charge price. The
//! formats below are modelled after the Table-1 examples and the public
//! RTB macro documentation the paper's analyzer was built from — MoPub's
//! verbose cleartext `imp` beacon, MathTag's hex-token `notify/js`,
//! DoubleClick's base64 `price=` and so on. `emit` and `parse` are exact
//! inverses on the typed payload, which the round-trip property tests pin
//! down.
//!
//! One documented deviation from the real wire: every encrypted exchange
//! here carries the full 28-byte token of [`yav_crypto::price`] (hex or
//! base64url, per house style), whereas e.g. 2015 MathTag beacons carried
//! shorter opaque blobs. The *observable property* — an opaque,
//! undecryptable price field — is identical.

use crate::fields::{NurlFields, NurlFieldsRef, PricePayload};
use crate::scratch::{DecodedPairs, UrlScratch};
use crate::url::{Url, UrlParseError};
use crate::urlref::UrlRef;
use std::fmt;
use std::fmt::Write as _;
use yav_crypto::{hex_encode, EncryptedPrice};
use yav_types::{AdSlotSize, Adx, AuctionId, CampaignId, Cpm, DspId, ImpressionId};

/// Errors from [`parse`]: the URL *looked like* a notification from a known
/// exchange but its payload was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NurlParseError {
    /// The price parameter was missing entirely.
    MissingPrice,
    /// A cleartext price failed to parse as a decimal CPM.
    BadCleartextPrice,
    /// An encrypted token failed shape validation.
    BadToken,
    /// A mandatory identifier was missing or malformed.
    BadId(&'static str),
}

impl fmt::Display for NurlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NurlParseError::MissingPrice => write!(f, "notification carries no price parameter"),
            NurlParseError::BadCleartextPrice => write!(f, "cleartext price is not a decimal CPM"),
            NurlParseError::BadToken => write!(f, "encrypted price token is malformed"),
            NurlParseError::BadId(which) => write!(f, "missing or malformed id field: {which}"),
        }
    }
}

impl std::error::Error for NurlParseError {}

/// Errors from [`parse_borrowed`]: either the deferred percent-decoding
/// failed (what `Url::parse` would have rejected up front) or the
/// notification payload was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NurlRefError {
    /// A query component failed percent-decoding — the borrowed
    /// pipeline's equivalent of an owned-parse failure.
    Url(UrlParseError),
    /// Decoded fine, but the notification payload was malformed.
    Payload(NurlParseError),
}

impl fmt::Display for NurlRefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NurlRefError::Url(e) => write!(f, "query decode failed: {e}"),
            NurlRefError::Payload(e) => write!(f, "malformed payload: {e}"),
        }
    }
}

impl std::error::Error for NurlRefError {}

/// How a template encodes its opaque price token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TokenCodec {
    /// Unpadded URL-safe base64 (DoubleClick style).
    Base64,
    /// Uppercase hex (MathTag style).
    Hex,
}

/// Static description of one exchange's house format.
struct Template {
    adx: Adx,
    path: &'static str,
    /// Parameter carrying the charge price.
    price_param: &'static str,
    /// Parameter carrying the echoed bid price, if the exchange echoes one.
    bid_param: Option<&'static str>,
    /// Token codec for encrypted exchanges; `None` means cleartext house
    /// style.
    token: Option<TokenCodec>,
    /// Whether the exchange echoes slot sizes / publisher names / latency.
    rich_metadata: bool,
}

/// The format table. Paths and parameter names follow each exchange's
/// public macro documentation where available.
const TEMPLATES: [Template; 17] = [
    Template {
        adx: Adx::MoPub,
        path: "/imp",
        price_param: "charge_price",
        bid_param: Some("bid_price"),
        token: None,
        rich_metadata: true,
    },
    Template {
        adx: Adx::OpenX,
        path: "/w/1.0/win",
        price_param: "p",
        bid_param: None,
        token: Some(TokenCodec::Base64),
        rich_metadata: false,
    },
    Template {
        adx: Adx::Rubicon,
        path: "/beacon/t",
        price_param: "price",
        bid_param: None,
        token: Some(TokenCodec::Base64),
        rich_metadata: false,
    },
    Template {
        adx: Adx::DoubleClick,
        path: "/pagead/adview",
        price_param: "price",
        bid_param: None,
        token: Some(TokenCodec::Base64),
        rich_metadata: false,
    },
    Template {
        adx: Adx::PulsePoint,
        path: "/win",
        price_param: "wp",
        bid_param: None,
        token: Some(TokenCodec::Base64),
        rich_metadata: false,
    },
    Template {
        adx: Adx::Adnxs,
        path: "/it",
        price_param: "auction_price",
        bid_param: None,
        token: None,
        rich_metadata: false,
    },
    Template {
        adx: Adx::MathTag,
        path: "/notify/js",
        price_param: "price",
        bid_param: None,
        token: Some(TokenCodec::Hex),
        rich_metadata: false,
    },
    Template {
        adx: Adx::Smaato,
        path: "/oapi/win",
        price_param: "wp",
        bid_param: None,
        token: None,
        rich_metadata: false,
    },
    Template {
        adx: Adx::Nexage,
        path: "/win",
        price_param: "wp",
        bid_param: None,
        token: None,
        rich_metadata: false,
    },
    Template {
        adx: Adx::InMobi,
        path: "/win/notify",
        price_param: "cp",
        bid_param: Some("bp"),
        token: None,
        rich_metadata: false,
    },
    Template {
        adx: Adx::Flurry,
        path: "/v19/winNotice",
        price_param: "price",
        bid_param: None,
        token: None,
        rich_metadata: false,
    },
    Template {
        adx: Adx::Millennial,
        path: "/getAd/win",
        price_param: "settlementPrice",
        bid_param: None,
        token: None,
        rich_metadata: false,
    },
    Template {
        adx: Adx::Turn,
        path: "/r/notify",
        price_param: "mcpm",
        bid_param: None,
        token: None,
        rich_metadata: true,
    },
    Template {
        adx: Adx::Criteo,
        path: "/delivery/rtb/win",
        price_param: "rtbwinprice",
        bid_param: None,
        token: Some(TokenCodec::Base64),
        rich_metadata: false,
    },
    Template {
        adx: Adx::Rtbhouse,
        path: "/win-event",
        price_param: "wp",
        bid_param: None,
        token: Some(TokenCodec::Base64),
        rich_metadata: false,
    },
    Template {
        adx: Adx::Smartadserver,
        path: "/imp/win",
        price_param: "winprice",
        bid_param: None,
        token: None,
        rich_metadata: true,
    },
    Template {
        adx: Adx::Improve,
        path: "/rtb/win",
        price_param: "price",
        bid_param: None,
        token: Some(TokenCodec::Base64),
        rich_metadata: false,
    },
];

/// `TEMPLATES` is laid out in `Adx::ALL` order (asserted by test), so an
/// exchange's template is a plain index — total, no search, no panic
/// path on the per-URL hot path.
fn template_for(adx: Adx) -> &'static Template {
    let t = &TEMPLATES[adx.index()];
    debug_assert_eq!(t.adx, adx, "TEMPLATES must stay in Adx::ALL order");
    t
}

/// Every (exchange, price-parameter) pair — the macro list the detector is
/// seeded with.
pub fn price_macros() -> impl Iterator<Item = (Adx, &'static str)> {
    TEMPLATES.iter().map(|t| (t.adx, t.price_param))
}

/// The price query parameter an exchange's notifications carry.
pub fn price_param(adx: Adx) -> &'static str {
    template_for(adx).price_param
}

/// The notification path for an exchange (used by tests and the detector).
pub fn notification_path(adx: Adx) -> &'static str {
    template_for(adx).path
}

/// Emits the notification URL for a typed payload, in the exchange's house
/// format. Whether the price rides cleartext or encrypted is decided by
/// the payload, not the template — real integrations occasionally deviate
/// from their house style and the parser must cope, so the emitter can
/// produce both.
pub fn emit(fields: &NurlFields) -> Url {
    let t = template_for(fields.adx);
    let mut b = Url::build(false, fields.adx.domain(), t.path);

    // Identifier block first, like real beacons.
    b = b
        .param("imp", &fields.impression.wire())
        .param("auc", &fields.auction.wire())
        .param("bidder", &fields.dsp.domain());

    if let Some(c) = fields.campaign {
        b = b.param("cmpid", &c.wire());
    }

    // Price, in house encoding.
    b = match &fields.price {
        PricePayload::Cleartext(p) => b.param(t.price_param, &p.to_string()),
        PricePayload::Encrypted(token) => {
            let encoded = match t.token.unwrap_or(TokenCodec::Base64) {
                TokenCodec::Base64 => token.to_wire(),
                TokenCodec::Hex => hex_encode(token.as_bytes()).to_ascii_uppercase(),
            };
            b.param(t.price_param, &encoded)
        }
    };

    if let (Some(bid_param), Some(bid)) = (t.bid_param, fields.bid_price) {
        b = b.param(bid_param, &bid.to_string());
    }

    if t.rich_metadata {
        if let Some(slot) = fields.slot {
            b = b.param("size", &slot.wire());
        }
        b = b
            .opt_param("pub_name", fields.publisher.as_deref())
            .opt_param("country", fields.country.as_deref())
            .opt_param("ad_domain", fields.ad_domain.as_deref());
        if let Some(lat) = fields.latency_ms {
            b = b.param("latency", &format!("{:.3}", lat as f64 / 1000.0));
        }
        b = b.param("currency", "USD");
    }

    b.finish()
}

/// Renders a notification URL into a caller-owned buffer, reusing its
/// allocation — the hot-loop form of `emit(fields).to_string()`. The
/// buffer is cleared first.
pub fn emit_into(fields: &NurlFields, out: &mut String) {
    out.clear();
    // Writing into a `String` cannot fail.
    let _ = write!(out, "{}", emit(fields));
}

/// Renders the notification URL for a borrowed payload straight into a
/// caller-owned buffer — byte-identical to `emit(&f.to_owned_fields())
/// .to_string()` (pinned by `render_into_matches_emit`) with zero heap
/// allocations beyond growth of `out` itself. This is the generator hot
/// path's emitter: every id, token and price has a `fmt::Write`-style
/// writer, so the whole URL is assembled by appending into `out`.
///
/// Fixed-format values (hex wire ids, dsp/adx domains, decimal CPMs,
/// base64url/hex price tokens, `WxH` slot sizes, `latency` seconds and
/// `USD`) consist solely of RFC-3986 unreserved bytes, so they are
/// written raw; the free-form metadata strings go through the same
/// percent-encoder the owned [`Url`] display uses.
pub fn render_into(fields: &NurlFieldsRef<'_>, out: &mut String) {
    let t = template_for(fields.adx);
    out.clear();
    out.push_str("http://");
    out.push_str(fields.adx.domain());
    out.push_str(t.path);

    // Identifier block first, like real beacons.
    out.push_str("?imp=");
    fields.impression.wire_into(out);
    out.push_str("&auc=");
    fields.auction.wire_into(out);
    out.push_str("&bidder=");
    fields.dsp.write_domain(out);

    if let Some(c) = fields.campaign {
        out.push_str("&cmpid=");
        c.wire_into(out);
    }

    // Price, in house encoding.
    out.push('&');
    out.push_str(t.price_param);
    out.push('=');
    match &fields.price {
        PricePayload::Cleartext(p) => {
            let _ = write!(out, "{p}");
        }
        PricePayload::Encrypted(token) => match t.token.unwrap_or(TokenCodec::Base64) {
            TokenCodec::Base64 => token.write_wire(out),
            TokenCodec::Hex => token.write_hex_wire_upper(out),
        },
    }

    if let (Some(bid_param), Some(bid)) = (t.bid_param, fields.bid_price) {
        out.push('&');
        out.push_str(bid_param);
        out.push('=');
        let _ = write!(out, "{bid}");
    }

    if t.rich_metadata {
        if let Some(slot) = fields.slot {
            // `AdSlotSize`'s `Display` is its `WxH` wire form.
            let _ = write!(out, "&size={slot}");
        }
        if let Some(p) = fields.publisher {
            out.push_str("&pub_name=");
            crate::url::percent_encode_into(p, out);
        }
        if let Some(c) = fields.country {
            out.push_str("&country=");
            crate::url::percent_encode_into(c, out);
        }
        if let Some(d) = fields.ad_domain {
            out.push_str("&ad_domain=");
            crate::url::percent_encode_into(d, out);
        }
        if let Some(lat) = fields.latency_ms {
            // `lat/1000.0` rendered to three decimals is exactly the
            // integer-split form: u32 millis are exact in f64 and the
            // division error is far below half a thousandth.
            let _ = write!(out, "&latency={}.{:03}", lat / 1000, lat % 1000);
        }
        out.push_str("&currency=USD");
    }
}

/// Attempts to parse a URL as a winning-price notification.
///
/// * `Ok(None)` — not a notification URL (unknown host or path): ordinary
///   traffic.
/// * `Ok(Some(fields))` — a well-formed notification.
/// * `Err(_)` — hosted on a known exchange's notification endpoint but the
///   payload is malformed; the analyzer counts these separately.
pub fn parse(url: &Url) -> Result<Option<NurlFields>, NurlParseError> {
    let c = template_counters();
    c.urls_seen.inc();
    let result = parse_inner(url);
    match &result {
        Ok(Some(_)) => c.matched.inc(),
        Ok(None) => c.not_notification.inc(),
        Err(_) => c.malformed_dropped.inc(),
    }
    result
}

/// [`parse`] for a URL whose raw text already passed
/// [`crate::detect::screen_adx`]: the caller supplies the matched
/// exchange, so the host roster is scanned exactly once per URL.
/// Result semantics and `nurl.template.*` accounting are identical to
/// [`parse`] — the only difference is the skipped re-lookup.
///
/// The contract is that `adx` came from screening *this* raw URL; the
/// host is not re-checked here.
pub fn parse_screened(adx: Adx, url: &Url) -> Result<Option<NurlFields>, NurlParseError> {
    let c = template_counters();
    c.urls_seen.inc();
    let result = if url.path() != template_for(adx).path {
        Ok(None)
    } else {
        fields_from_query(adx, url).map(Some)
    };
    match &result {
        Ok(Some(_)) => c.matched.inc(),
        Ok(None) => c.not_notification.inc(),
        Err(_) => c.malformed_dropped.inc(),
    }
    result
}

/// Pre-resolved `nurl.template.*` counter handles. Template parsing is
/// the per-URL hot path; resolving handles once spares it a registry
/// lock + name lookup per counter per URL. The registry keeps cached
/// handles valid across [`yav_telemetry::Registry::clear`].
struct TemplateCounters {
    urls_seen: yav_telemetry::Counter,
    matched: yav_telemetry::Counter,
    not_notification: yav_telemetry::Counter,
    malformed_dropped: yav_telemetry::Counter,
}

fn template_counters() -> &'static TemplateCounters {
    static COUNTERS: std::sync::OnceLock<TemplateCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| TemplateCounters {
        urls_seen: yav_telemetry::counter("nurl.template.urls_seen"),
        matched: yav_telemetry::counter("nurl.template.matched"),
        not_notification: yav_telemetry::counter("nurl.template.not_notification"),
        malformed_dropped: yav_telemetry::counter("nurl.template.malformed_dropped"),
    })
}

fn parse_inner(url: &Url) -> Result<Option<NurlFields>, NurlParseError> {
    let Some(adx) = Adx::from_domain(url.host()) else {
        return Ok(None);
    };
    if url.path() != template_for(adx).path {
        return Ok(None);
    }
    fields_from_query(adx, url).map(Some)
}

/// Attempts to parse a *borrowed* URL as a winning-price notification —
/// the zero-copy twin of [`parse`], with identical result semantics and
/// identical `nurl.template.*` accounting. Stage order is deliberate:
/// host screen first (ordinary traffic returns `Ok(None)` without
/// touching the scratch), then query decode into `scratch` (so a
/// notification-host URL with an undecodable query reports the same
/// escape error the owned pipeline reports from `Url::parse`), then the
/// path check and field extraction.
///
/// The exchange-host match is case-insensitive, mirroring the owned
/// pipeline where the host was lowercased at parse time.
pub fn parse_borrowed(
    url: &UrlRef<'_>,
    scratch: &mut UrlScratch,
) -> Result<Option<NurlFields>, NurlRefError> {
    let _trace = yav_trace::trace_span!("nurl.parse_borrowed");
    let c = template_counters();
    c.urls_seen.inc();
    let result = parse_borrowed_inner(url, scratch);
    match &result {
        Ok(Some(_)) => c.matched.inc(),
        Ok(None) => c.not_notification.inc(),
        Err(_) => c.malformed_dropped.inc(),
    }
    result
}

/// [`parse_borrowed`] for a URL that already passed
/// [`crate::detect::screen_adx`]: the caller supplies the matched
/// exchange, so the host roster is scanned exactly once per URL.
/// Result semantics and `nurl.template.*` accounting are identical to
/// [`parse_borrowed`] — the only difference is the skipped re-lookup.
///
/// The contract is that `adx` came from screening *this* raw URL; the
/// host is not re-checked here.
pub fn parse_borrowed_screened(
    adx: Adx,
    url: &UrlRef<'_>,
    scratch: &mut UrlScratch,
) -> Result<Option<NurlFields>, NurlRefError> {
    let _trace = yav_trace::trace_span!("nurl.parse_borrowed");
    let c = template_counters();
    c.urls_seen.inc();
    let result = parse_screened_inner(adx, url, scratch);
    match &result {
        Ok(Some(_)) => c.matched.inc(),
        Ok(None) => c.not_notification.inc(),
        Err(_) => c.malformed_dropped.inc(),
    }
    result
}

/// [`parse_borrowed_screened`] with the `nurl.template.*` accounting
/// deferred into a caller-held [`TemplateTally`]. Batch ingestion sifts
/// thousands of URLs per call; with per-URL counters the dominant cost
/// of accounting is two atomic RMWs per URL, where a register tally
/// flushed once per batch produces the exact same totals. Callers own
/// the flush: totals lag until [`TemplateTally::flush`] runs.
pub fn parse_borrowed_screened_tallied(
    adx: Adx,
    url: &UrlRef<'_>,
    scratch: &mut UrlScratch,
    tally: &mut TemplateTally,
) -> Result<Option<NurlFields>, NurlRefError> {
    let _trace = yav_trace::trace_span!("nurl.parse_borrowed");
    tally.urls_seen += 1;
    let result = parse_screened_inner(adx, url, scratch);
    match &result {
        Ok(Some(_)) => tally.matched += 1,
        Ok(None) => tally.not_notification += 1,
        Err(_) => tally.malformed_dropped += 1,
    }
    result
}

/// Deferred `nurl.template.*` accounting for batch parsing: plain
/// integer fields the tallied parse entry points bump, flushed to the
/// real counters in one step. Dropping an unflushed tally loses its
/// counts, so batch loops should flush on every exit path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemplateTally {
    /// URLs handed to template parsing.
    pub urls_seen: u64,
    /// Well-formed notifications.
    pub matched: u64,
    /// Ordinary traffic (wrong host or path).
    pub not_notification: u64,
    /// Notification endpoints with malformed payloads.
    pub malformed_dropped: u64,
}

impl TemplateTally {
    /// Adds the tallied counts to the `nurl.template.*` counters and
    /// zeroes the tally. Counter totals after the flush are identical to
    /// what per-URL accounting would have produced.
    pub fn flush(&mut self) {
        let c = template_counters();
        if self.urls_seen > 0 {
            c.urls_seen.add(self.urls_seen);
        }
        if self.matched > 0 {
            c.matched.add(self.matched);
        }
        if self.not_notification > 0 {
            c.not_notification.add(self.not_notification);
        }
        if self.malformed_dropped > 0 {
            c.malformed_dropped.add(self.malformed_dropped);
        }
        *self = TemplateTally::default();
    }
}

fn parse_borrowed_inner(
    url: &UrlRef<'_>,
    scratch: &mut UrlScratch,
) -> Result<Option<NurlFields>, NurlRefError> {
    let Some(adx) = crate::detect::exchange_host(url.host_raw()) else {
        return Ok(None);
    };
    parse_screened_inner(adx, url, scratch)
}

/// [`parse_borrowed`] returning a [`NurlFieldsRef`] whose free-form
/// metadata borrows the scratch's decoded bytes instead of being copied
/// out — the analyzer hot path's parser. Result semantics, stage order
/// and `nurl.template.*` accounting are identical to [`parse_borrowed`];
/// `to_owned_fields()` on the returned payload reproduces its output
/// exactly (pinned by `borrowed_ref_parse_matches_owned_parse`). The
/// borrow ties the payload to the scratch, so callers extract what they
/// fold before the next decode.
pub fn parse_borrowed_ref<'s, 'a: 's>(
    url: &UrlRef<'a>,
    scratch: &'s mut UrlScratch,
) -> Result<Option<NurlFieldsRef<'s>>, NurlRefError> {
    let _trace = yav_trace::trace_span!("nurl.parse_borrowed");
    let c = template_counters();
    c.urls_seen.inc();
    let result = parse_borrowed_ref_inner(url, scratch);
    match &result {
        Ok(Some(_)) => c.matched.inc(),
        Ok(None) => c.not_notification.inc(),
        Err(_) => c.malformed_dropped.inc(),
    }
    result
}

/// [`parse_borrowed_screened_tallied`] returning a [`NurlFieldsRef`]:
/// pre-screened exchange, deferred accounting, borrowed payload — the
/// batch sift path's parser. Same stage order and outcomes as the owned
/// form; `to_owned_fields()` reproduces its output exactly.
pub fn parse_borrowed_screened_tallied_ref<'s, 'a: 's>(
    adx: Adx,
    url: &UrlRef<'a>,
    scratch: &'s mut UrlScratch,
    tally: &mut TemplateTally,
) -> Result<Option<NurlFieldsRef<'s>>, NurlRefError> {
    let _trace = yav_trace::trace_span!("nurl.parse_borrowed");
    tally.urls_seen += 1;
    let result = parse_screened_ref_inner(adx, url, scratch);
    match &result {
        Ok(Some(_)) => tally.matched += 1,
        Ok(None) => tally.not_notification += 1,
        Err(_) => tally.malformed_dropped += 1,
    }
    result
}

fn parse_screened_ref_inner<'s, 'a: 's>(
    adx: Adx,
    url: &UrlRef<'a>,
    scratch: &'s mut UrlScratch,
) -> Result<Option<NurlFieldsRef<'s>>, NurlRefError> {
    let pairs = scratch.decode(url).map_err(NurlRefError::Url)?;
    if url.path() != template_for(adx).path {
        return Ok(None);
    }
    fields_ref_from_query(adx, &pairs)
        .map(Some)
        .map_err(NurlRefError::Payload)
}

fn parse_borrowed_ref_inner<'s, 'a: 's>(
    url: &UrlRef<'a>,
    scratch: &'s mut UrlScratch,
) -> Result<Option<NurlFieldsRef<'s>>, NurlRefError> {
    let Some(adx) = crate::detect::exchange_host(url.host_raw()) else {
        return Ok(None);
    };
    let pairs = scratch.decode(url).map_err(NurlRefError::Url)?;
    if url.path() != template_for(adx).path {
        return Ok(None);
    }
    fields_ref_from_query(adx, &pairs)
        .map(Some)
        .map_err(NurlRefError::Payload)
}

fn parse_screened_inner(
    adx: Adx,
    url: &UrlRef<'_>,
    scratch: &mut UrlScratch,
) -> Result<Option<NurlFields>, NurlRefError> {
    let pairs = scratch.decode(url).map_err(NurlRefError::Url)?;
    if url.path() != template_for(adx).path {
        return Ok(None);
    }
    fields_from_query(adx, &pairs)
        .map(Some)
        .map_err(NurlRefError::Payload)
}

/// The one query surface both pipelines share: in-order decoded pairs.
/// Implemented by the owned [`Url`] and by scratch-decoded
/// [`DecodedPairs`], so field extraction is a single function and the
/// owned/borrowed parsers agree by construction. The lifetime is the
/// pairs' own, which lets [`fields_from_query`] hold values across the
/// walk — one pass over the pairs instead of one scan per field.
trait QueryLookup<'q> {
    fn for_each_pair(&self, f: &mut dyn FnMut(&'q str, &'q str));
}

impl<'q> QueryLookup<'q> for &'q Url {
    fn for_each_pair(&self, f: &mut dyn FnMut(&'q str, &'q str)) {
        for (k, v) in self.query_pairs() {
            f(k, v);
        }
    }
}

impl<'q> QueryLookup<'q> for &DecodedPairs<'q> {
    fn for_each_pair(&self, f: &mut dyn FnMut(&'q str, &'q str)) {
        for (k, v) in self.iter() {
            f(k, v);
        }
    }
}

/// Extracts the typed payload once host and path have matched `adx`'s
/// template — the owning wrapper over [`fields_ref_from_query`], shared
/// by the owned and borrowed parsers. Materialising through the borrowed
/// extraction keeps the two pipelines a single code path.
fn fields_from_query<'q>(adx: Adx, q: impl QueryLookup<'q>) -> Result<NurlFields, NurlParseError> {
    fields_ref_from_query(adx, q).map(|f| f.to_owned_fields())
}

/// Extracts the typed payload as a [`NurlFieldsRef`] borrowing the query
/// pairs' decoded text. A single walk over the pairs routes each key to
/// its field slot, first value winning — observably identical to per-key
/// lookups (which also took the first match) at a fifth of the pair-list
/// traffic.
fn fields_ref_from_query<'q>(
    adx: Adx,
    q: impl QueryLookup<'q>,
) -> Result<NurlFieldsRef<'q>, NurlParseError> {
    let t = template_for(adx);
    let mut raw_price = None;
    let mut imp = None;
    let mut auc = None;
    let mut bidder = None;
    let mut raw_bid = None;
    let mut cmpid = None;
    let mut size = None;
    let mut pub_name = None;
    let mut country = None;
    let mut latency = None;
    let mut ad_domain = None;
    q.for_each_pair(&mut |k, v| {
        // Fixed vocabulary first; no template prices or bid params
        // collide with it (pinned by `vocabulary_is_collision_free`).
        let slot = match k {
            "imp" => &mut imp,
            "auc" => &mut auc,
            "bidder" => &mut bidder,
            "cmpid" => &mut cmpid,
            "size" => &mut size,
            "pub_name" => &mut pub_name,
            "country" => &mut country,
            "latency" => &mut latency,
            "ad_domain" => &mut ad_domain,
            _ if k == t.price_param => &mut raw_price,
            _ if Some(k) == t.bid_param => &mut raw_bid,
            _ => return,
        };
        if slot.is_none() {
            *slot = Some(v);
        }
    });

    let raw_price = raw_price.ok_or(NurlParseError::MissingPrice)?;
    let price = decode_price(t, raw_price)?;
    let impression = ImpressionId(wire_id(imp).ok_or(NurlParseError::BadId("imp"))?);
    let auction = AuctionId(wire_id(auc).ok_or(NurlParseError::BadId("auc"))?);
    let dsp = bidder
        .and_then(DspId::from_domain)
        .ok_or(NurlParseError::BadId("bidder"))?;

    Ok(NurlFieldsRef {
        adx,
        dsp,
        price,
        bid_price: raw_bid.and_then(Cpm::parse_str),
        impression,
        auction,
        campaign: wire_id(cmpid).map(|v| CampaignId(v as u32)),
        slot: size.and_then(AdSlotSize::parse_wire),
        publisher: pub_name,
        country,
        latency_ms: latency
            .and_then(|s| s.parse::<f64>().ok())
            .map(|secs| (secs * 1000.0).round() as u32),
        ad_domain,
    })
}

/// Decodes the price parameter: decimal CPM, hex token or base64 token.
/// The decision is made from the *value shape*, not the house style —
/// the observer cannot trust exchanges to be consistent.
fn decode_price(t: &Template, raw: &str) -> Result<PricePayload, NurlParseError> {
    // A 56-hex-digit value is a hex-coded 28-byte token. Non-hex
    // 56-char values fall through to the shapes below unchanged.
    if raw.len() == 56 {
        if let Ok(token) = EncryptedPrice::from_hex_wire(raw) {
            return Ok(PricePayload::Encrypted(token));
        }
    }
    // A decimal parses as cleartext CPM.
    if let Some(p) = Cpm::parse_str(raw) {
        return Ok(PricePayload::Cleartext(p));
    }
    // Otherwise try the base64url token shape.
    match EncryptedPrice::from_wire(raw) {
        Ok(token) => Ok(PricePayload::Encrypted(token)),
        Err(_) => {
            // House-encrypted exchanges with an unparseable blob are
            // malformed tokens; cleartext houses get the price error.
            if t.token.is_some() {
                Err(NurlParseError::BadToken)
            } else {
                Err(NurlParseError::BadCleartextPrice)
            }
        }
    }
}

/// Reverses [`yav_types::ids`]' splitmix64 wire mixing. Wire ids are
/// exactly 16 hex digits; the fixed width lets the SWAR hex kernel
/// validate and parse the whole id in two words.
fn wire_id(s: Option<&str>) -> Option<u64> {
    let digits: &[u8; 16] = s?.as_bytes().try_into().ok()?;
    let z = yav_simd::hex::parse_hex16(digits)?;
    Some(splitmix64_inverse(z))
}

/// Inverse of the splitmix64 finaliser used by `yav_types::ids::*::wire`.
fn splitmix64_inverse(mut z: u64) -> u64 {
    // Invert z ^= z >> 31  (shift >= 32 would be self-inverse; 31 needs two steps)
    z = z ^ (z >> 31) ^ (z >> 62);
    z = z.wrapping_mul(0x319642b2d24d8ec3); // modular inverse of 0x94d049bb133111eb
    z = z ^ (z >> 27) ^ (z >> 54);
    z = z.wrapping_mul(0x96de1b173f119089); // modular inverse of 0xbf58476d1ce4e5b9
    z = z ^ (z >> 30) ^ (z >> 60);
    z.wrapping_sub(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use yav_crypto::{PriceCrypter, PriceKeys};

    fn sample_token(seed: u8) -> EncryptedPrice {
        PriceCrypter::new(PriceKeys::derive("test")).encrypt(1_234_000, [seed; 16])
    }

    #[test]
    fn screened_parse_agrees_with_borrowed() {
        // The screened fast path must be observably identical to the
        // full borrowed parse whenever its precondition (adx came from
        // screening this URL) holds.
        let mut scratch = UrlScratch::new();
        let mut scratch2 = UrlScratch::new();
        let mut raw = String::new();
        for adx in Adx::ALL {
            for price in [
                PricePayload::Cleartext(Cpm::from_f64(0.42)),
                PricePayload::Encrypted(sample_token(9)),
            ] {
                let fields =
                    NurlFields::minimal(adx, DspId(1), price, ImpressionId(7), AuctionId(7));
                emit_into(&fields, &mut raw);
                let screened_adx = crate::detect::screen_adx(&raw).expect("emitted nURL screens");
                assert_eq!(screened_adx, adx);
                let url = UrlRef::parse(&raw).expect("emitted nURL parses");
                let full = parse_borrowed(&url, &mut scratch);
                let fast = parse_borrowed_screened(screened_adx, &url, &mut scratch2);
                assert_eq!(full, fast, "{raw}");
            }
        }
        // Malformed payload on a screened host: same error either way.
        let bad = "http://cpp.imp.mpx.mopub.com/imp?currency=USD";
        let adx = crate::detect::screen_adx(bad).expect("host screens");
        let url = UrlRef::parse(bad).expect("parses structurally");
        assert_eq!(
            parse_borrowed(&url, &mut scratch),
            parse_borrowed_screened(adx, &url, &mut scratch2),
        );
        // Screened host with a non-notification path: ordinary traffic.
        let robots = "http://cpp.imp.mpx.mopub.com/robots.txt";
        let adx = crate::detect::screen_adx(robots).expect("host screens");
        let url = UrlRef::parse(robots).expect("parses structurally");
        assert_eq!(parse_borrowed_screened(adx, &url, &mut scratch2), Ok(None));
    }

    #[test]
    fn borrowed_ref_parse_matches_owned_parse() {
        // The ref-returning parser must reproduce `parse_borrowed`'s
        // output exactly once materialised — every exchange, both price
        // visibilities, both metadata shapes, plus the malformed and
        // ordinary-traffic outcomes.
        let mut scratch = UrlScratch::new();
        let mut scratch2 = UrlScratch::new();
        let mut raw = String::new();
        for adx in Adx::ALL {
            for price in [
                PricePayload::Cleartext(Cpm::from_f64(0.42)),
                PricePayload::Encrypted(sample_token(9)),
            ] {
                for fields in [
                    rich_fields(adx, price.clone()),
                    NurlFields::minimal(adx, DspId(1), price, ImpressionId(7), AuctionId(7)),
                ] {
                    emit_into(&fields, &mut raw);
                    let url = UrlRef::parse(&raw).expect("emitted nURL parses");
                    let owned = parse_borrowed(&url, &mut scratch);
                    let reffed = parse_borrowed_ref(&url, &mut scratch2)
                        .map(|o| o.map(|f| f.to_owned_fields()));
                    assert_eq!(owned, reffed, "{raw}");
                }
            }
        }
        for raw in [
            "http://cpp.imp.mpx.mopub.com/imp?currency=USD", // malformed payload
            "http://cpp.imp.mpx.mopub.com/robots.txt",       // ordinary traffic
            "http://www.elpais.es/articles/page.html?id=5",  // unknown host
        ] {
            let url = UrlRef::parse(raw).expect("parses structurally");
            let owned = parse_borrowed(&url, &mut scratch);
            let reffed =
                parse_borrowed_ref(&url, &mut scratch2).map(|o| o.map(|f| f.to_owned_fields()));
            assert_eq!(owned, reffed, "{raw}");
        }
    }

    #[test]
    fn tallied_parse_matches_counted_parse() {
        // The tallied entry point must return the same results as the
        // counting one, and one flush must land the same totals the
        // per-URL counters would have accumulated.
        let mut scratch = UrlScratch::new();
        let mut scratch2 = UrlScratch::new();
        let mut tally = TemplateTally::default();
        let inputs = [
            // matched, ordinary path, malformed payload.
            "http://cpp.imp.mpx.mopub.com/imp?charge_price=0.50&imp=0000000000000007\
             &auc=0000000000000008&bidder=dsp1.bid.example.com",
            "http://cpp.imp.mpx.mopub.com/robots.txt",
            "http://cpp.imp.mpx.mopub.com/imp?currency=USD",
        ];
        let counted = template_counters();
        let before = [
            counted.urls_seen.get(),
            counted.matched.get(),
            counted.not_notification.get(),
            counted.malformed_dropped.get(),
        ];
        for raw in inputs {
            let adx = crate::detect::screen_adx(raw).expect("host screens");
            let url = UrlRef::parse(raw).expect("parses structurally");
            let direct = parse_borrowed_screened(adx, &url, &mut scratch);
            let tallied = parse_borrowed_screened_tallied(adx, &url, &mut scratch2, &mut tally);
            assert_eq!(direct, tallied, "{raw}");
        }
        assert_eq!(
            tally,
            TemplateTally {
                urls_seen: 3,
                matched: 1,
                not_notification: 1,
                malformed_dropped: 1,
            }
        );
        tally.flush();
        assert_eq!(tally, TemplateTally::default());
        // The direct calls above bumped each counter once; the flush
        // added the tally — so every counter moved by exactly twice the
        // per-outcome count.
        let after = [
            counted.urls_seen.get(),
            counted.matched.get(),
            counted.not_notification.get(),
            counted.malformed_dropped.get(),
        ];
        assert_eq!(after[0] - before[0], 6);
        assert_eq!(after[1] - before[1], 2);
        assert_eq!(after[2] - before[2], 2);
        assert_eq!(after[3] - before[3], 2);
    }

    #[test]
    fn screened_parse_agrees_with_owned() {
        // Same contract for the owned pipeline: carrying the screen
        // verdict must not change any parse outcome.
        let mut raw = String::new();
        for adx in Adx::ALL {
            for price in [
                PricePayload::Cleartext(Cpm::from_f64(0.42)),
                PricePayload::Encrypted(sample_token(9)),
            ] {
                let fields =
                    NurlFields::minimal(adx, DspId(1), price, ImpressionId(7), AuctionId(7));
                emit_into(&fields, &mut raw);
                let screened_adx = crate::detect::screen_adx(&raw).expect("emitted nURL screens");
                let url = Url::parse(&raw).expect("emitted nURL parses");
                assert_eq!(parse(&url), parse_screened(screened_adx, &url), "{raw}");
            }
        }
        for raw in [
            "http://cpp.imp.mpx.mopub.com/imp?currency=USD", // malformed payload
            "http://cpp.imp.mpx.mopub.com/robots.txt",       // ordinary traffic
        ] {
            let adx = crate::detect::screen_adx(raw).expect("host screens");
            let url = Url::parse(raw).expect("parses structurally");
            assert_eq!(parse(&url), parse_screened(adx, &url), "{raw}");
        }
    }

    #[test]
    fn render_into_matches_emit() {
        // The allocation-free renderer must be byte-identical to the
        // builder pipeline for every exchange, both price visibilities
        // and both metadata shapes — it is what the hot path emits and
        // what the analyzer re-parses.
        let mut buf = String::new();
        for adx in Adx::ALL {
            for price in [
                PricePayload::Cleartext(Cpm::from_f64(0.95)),
                PricePayload::Cleartext(Cpm::from_micros(1)),
                PricePayload::Cleartext(Cpm::from_f64(3.0)),
                PricePayload::Encrypted(sample_token(7)),
            ] {
                for fields in [
                    rich_fields(adx, price.clone()),
                    NurlFields::minimal(adx, DspId(1), price.clone(), ImpressionId(5), AuctionId(6)),
                ] {
                    render_into(&fields.as_ref_fields(), &mut buf);
                    assert_eq!(buf, emit(&fields).to_string(), "{adx} {price:?}");
                    // The borrowed payload round-trips to the owned one.
                    assert_eq!(fields.as_ref_fields().to_owned_fields(), fields);
                }
            }
        }
        // Reserved bytes in free-form metadata still percent-encode.
        let mut odd = rich_fields(Adx::MoPub, PricePayload::Cleartext(Cpm::ONE));
        odd.publisher = Some("el país/ñ".to_owned());
        render_into(&odd.as_ref_fields(), &mut buf);
        assert_eq!(buf, emit(&odd).to_string());
        assert!(buf.contains("pub_name=el%20pa%C3%ADs%2F%C3%B1"));
        // High-roster dsp ids use the synthetic domain form.
        let far = NurlFields::minimal(
            Adx::OpenX,
            DspId(173),
            PricePayload::Encrypted(sample_token(4)),
            ImpressionId(1),
            AuctionId(2),
        );
        render_into(&far.as_ref_fields(), &mut buf);
        assert_eq!(buf, emit(&far).to_string());
    }

    #[test]
    fn vocabulary_is_collision_free() {
        // `fields_from_query` routes fixed keys before the per-template
        // price/bid params, which is only sound while no template names
        // its price or bid param after a fixed-vocabulary key.
        const FIXED: [&str; 9] = [
            "imp",
            "auc",
            "bidder",
            "cmpid",
            "size",
            "pub_name",
            "country",
            "latency",
            "ad_domain",
        ];
        for t in &TEMPLATES {
            assert!(
                !FIXED.contains(&t.price_param),
                "{:?} price param {} shadows a fixed key",
                t.adx,
                t.price_param
            );
            if let Some(b) = t.bid_param {
                assert!(
                    !FIXED.contains(&b),
                    "{:?} bid param {b} shadows a fixed key",
                    t.adx
                );
                assert_ne!(b, t.price_param, "{:?} bid param equals price param", t.adx);
            }
        }
    }

    #[test]
    fn templates_align_with_adx_all() {
        assert_eq!(TEMPLATES.len(), Adx::ALL.len());
        for (i, t) in TEMPLATES.iter().enumerate() {
            assert_eq!(t.adx, Adx::ALL[i], "TEMPLATES[{i}] out of Adx::ALL order");
            assert_eq!(price_param(t.adx), t.price_param);
        }
    }

    fn rich_fields(adx: Adx, price: PricePayload) -> NurlFields {
        NurlFields {
            adx,
            dsp: DspId(3),
            price,
            bid_price: Some(Cpm::from_f64(0.99)),
            impression: ImpressionId(42),
            auction: AuctionId(777),
            campaign: Some(CampaignId(9)),
            slot: Some(AdSlotSize::S300x250),
            publisher: Some("elpais.es".to_owned()),
            country: Some("ES".to_owned()),
            latency_ms: Some(116),
            ad_domain: Some("amazon.es".to_owned()),
        }
    }

    #[test]
    fn mopub_cleartext_round_trip() {
        let fields = rich_fields(Adx::MoPub, PricePayload::Cleartext(Cpm::from_f64(0.95)));
        let url = emit(&fields);
        assert_eq!(url.host(), "cpp.imp.mpx.mopub.com");
        assert_eq!(url.query("charge_price"), Some("0.95"));
        assert_eq!(url.query("bid_price"), Some("0.99"));
        assert_eq!(url.query("size"), Some("300x250"));
        let parsed = parse(&url).unwrap().unwrap();
        assert_eq!(parsed, fields);
    }

    #[test]
    fn doubleclick_encrypted_round_trip() {
        let token = sample_token(1);
        let mut fields = rich_fields(Adx::DoubleClick, PricePayload::Encrypted(token));
        // DoubleClick's template is metadata-poor: emit drops the rich
        // fields, so the parse result won't echo them back.
        fields.bid_price = None;
        fields.slot = None;
        fields.publisher = None;
        fields.country = None;
        fields.latency_ms = None;
        fields.ad_domain = None;
        let url = emit(&fields);
        let raw = url.query("price").unwrap();
        assert_eq!(raw.len(), 38, "base64url of 28 bytes");
        let parsed = parse(&url).unwrap().unwrap();
        assert_eq!(parsed, fields);
        assert_eq!(parsed.price.encrypted(), Some(&token));
    }

    #[test]
    fn mathtag_hex_token_round_trip() {
        let token = sample_token(2);
        let fields = NurlFields::minimal(
            Adx::MathTag,
            DspId(6),
            PricePayload::Encrypted(token),
            ImpressionId(1),
            AuctionId(2),
        );
        let url = emit(&fields);
        let raw = url.query("price").unwrap();
        assert_eq!(raw.len(), 56, "hex of 28 bytes");
        assert!(raw
            .bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit()));
        let parsed = parse(&url).unwrap().unwrap();
        assert_eq!(parsed.price.encrypted(), Some(&token));
    }

    #[test]
    fn every_adx_round_trips_both_visibilities() {
        for adx in Adx::ALL {
            for price in [
                PricePayload::Cleartext(Cpm::from_f64(1.25)),
                PricePayload::Encrypted(sample_token(3)),
            ] {
                let fields = NurlFields::minimal(
                    adx,
                    DspId(0),
                    price.clone(),
                    ImpressionId(10),
                    AuctionId(20),
                );
                let parsed = parse(&emit(&fields)).unwrap().unwrap();
                assert_eq!(parsed, fields, "round trip for {adx}");
            }
        }
    }

    #[test]
    fn non_nurl_traffic_is_none() {
        let u = Url::parse("http://www.elpais.es/articles/page.html?id=5").unwrap();
        assert_eq!(parse(&u).unwrap(), None);
        // Right host, wrong path: also not a notification.
        let u = Url::parse("http://cpp.imp.mpx.mopub.com/other/path?charge_price=1").unwrap();
        assert_eq!(parse(&u).unwrap(), None);
    }

    #[test]
    fn malformed_notifications_are_errors() {
        let base = "http://cpp.imp.mpx.mopub.com/imp";
        let missing_price = Url::parse(&format!("{base}?imp={}", ImpressionId(1).wire())).unwrap();
        assert_eq!(parse(&missing_price), Err(NurlParseError::MissingPrice));

        let bad_price = Url::parse(&format!(
            "{base}?charge_price=notanumber&imp={}&auc={}&bidder=mediamath.com",
            ImpressionId(1).wire(),
            AuctionId(1).wire()
        ))
        .unwrap();
        assert_eq!(parse(&bad_price), Err(NurlParseError::BadCleartextPrice));

        let bad_imp = Url::parse(&format!(
            "{base}?charge_price=1&imp=zzz&auc={}&bidder=mediamath.com",
            AuctionId(1).wire()
        ))
        .unwrap();
        assert_eq!(parse(&bad_imp), Err(NurlParseError::BadId("imp")));
    }

    #[test]
    fn bid_price_is_not_the_charge_price() {
        // §4.1: bidding prices co-existing in the nURL must be filtered out.
        let fields = rich_fields(Adx::MoPub, PricePayload::Cleartext(Cpm::from_f64(0.80)));
        let parsed = parse(&emit(&fields)).unwrap().unwrap();
        assert_eq!(parsed.price.cleartext(), Some(Cpm::from_f64(0.80)));
        assert_eq!(parsed.bid_price, Some(Cpm::from_f64(0.99)));
        assert_ne!(parsed.price.cleartext(), parsed.bid_price);
    }

    #[test]
    fn splitmix_inverse_is_exact() {
        for id in [0u64, 1, 42, u64::MAX, 0xdead_beef_cafe_f00d] {
            let wire = AuctionId(id).wire();
            assert_eq!(wire_id(Some(&wire)), Some(id));
        }
        assert_eq!(wire_id(Some("nothex")), None);
        assert_eq!(wire_id(None), None);
    }

    #[test]
    fn macro_list_covers_all_exchanges() {
        let macros: Vec<_> = price_macros().collect();
        assert_eq!(macros.len(), Adx::ALL.len());
        for adx in Adx::ALL {
            assert!(macros.iter().any(|(a, _)| *a == adx));
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip_any_ids(
            adx_idx in 0usize..17,
            dsp in 0u32..200,
            imp: u64,
            auc: u64,
            micros in 1i64..100_000_000,
        ) {
            let fields = NurlFields::minimal(
                Adx::from_index(adx_idx),
                DspId(dsp),
                PricePayload::Cleartext(Cpm::from_micros(micros)),
                ImpressionId(imp),
                AuctionId(auc),
            );
            let reparsed = parse(&Url::parse(&emit(&fields).to_string()).unwrap()).unwrap().unwrap();
            prop_assert_eq!(reparsed, fields);
        }
    }
}
