//! A strict URL parser/builder for HTTP(S) query-string URLs.
//!
//! The analyzer sees millions of raw request URLs; the exchanges emit
//! notification URLs. Both sides need the same small subset of the URL
//! grammar — scheme, host, path, `key=value` query pairs — with RFC-3986
//! percent-encoding. Hand-rolled rather than pulling in the `url` crate:
//! the subset is tiny, and we want total control over what counts as
//! malformed (a mis-parsed price is a corrupted measurement).

use crate::urlref::UrlRef;
use std::borrow::Cow;
use std::fmt;

/// Errors from [`Url::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrlParseError {
    /// Missing or unsupported scheme (only `http`/`https`).
    Scheme,
    /// Empty or syntactically invalid host.
    Host,
    /// A percent escape was truncated or non-hex.
    Escape(usize),
}

impl fmt::Display for UrlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrlParseError::Scheme => write!(f, "missing or unsupported scheme"),
            UrlParseError::Host => write!(f, "invalid host"),
            UrlParseError::Escape(pos) => write!(f, "bad percent-escape at byte {pos}"),
        }
    }
}

impl std::error::Error for UrlParseError {}

/// A parsed HTTP(S) URL: scheme, host, path and decoded query pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Url {
    https: bool,
    host: String,
    path: String,
    query: Vec<(String, String)>,
}

impl Url {
    /// Parses a URL string. Query keys/values are percent-decoded; the
    /// path is kept as-is (nURL detection matches on raw path segments).
    ///
    /// A thin owning wrapper over [`UrlRef::parse`]: the borrowed parser
    /// defines the grammar, this constructor materialises its subslices
    /// (lowercasing the host) and eagerly decodes the query pairs.
    pub fn parse(input: &str) -> Result<Url, UrlParseError> {
        let r = UrlRef::parse(input)?;
        let mut query = Vec::new();
        for (k, v) in r.query_pairs() {
            query.push((
                percent_decode(k)?.into_owned(),
                percent_decode(v)?.into_owned(),
            ));
        }
        Ok(Url {
            https: r.is_https(),
            host: r.host_raw().to_ascii_lowercase(),
            path: r.path().to_owned(),
            query,
        })
    }

    /// Starts building a URL.
    pub fn build(https: bool, host: &str, path: &str) -> UrlBuilder {
        UrlBuilder {
            url: Url {
                https,
                host: host.to_ascii_lowercase(),
                path: if path.starts_with('/') {
                    path.to_owned()
                } else {
                    format!("/{path}")
                },
                query: Vec::new(),
            },
        }
    }

    /// `true` for `https`.
    pub fn is_https(&self) -> bool {
        self.https
    }

    /// Lower-cased host, without port.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Path, always starting with `/`.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// All query pairs in order (decoded).
    pub fn query_pairs(&self) -> &[(String, String)] {
        &self.query
    }

    /// First value of a query parameter, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// True if the host equals `domain` or is a subdomain of it.
    pub fn host_within(&self, domain: &str) -> bool {
        let domain = domain.to_ascii_lowercase();
        self.host == domain || self.host.ends_with(&format!(".{domain}"))
    }

    /// The registrable-ish domain: last two labels of the host. Good
    /// enough for blacklist matching over our synthetic universe (no
    /// multi-label public suffixes there).
    pub fn base_domain(&self) -> &str {
        let mut dots = self.host.rmatch_indices('.');
        match (dots.next(), dots.next()) {
            (Some(_), Some((i, _))) => &self.host[i + 1..],
            _ => &self.host,
        }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}://{}{}",
            if self.https { "https" } else { "http" },
            self.host,
            self.path
        )?;
        for (i, (k, v)) in self.query.iter().enumerate() {
            write!(
                f,
                "{}{}={}",
                if i == 0 { "?" } else { "&" },
                percent_encode(k),
                percent_encode(v)
            )?;
        }
        Ok(())
    }
}

/// Builder for assembling URLs with typed query parameters.
#[derive(Debug, Clone)]
pub struct UrlBuilder {
    url: Url,
}

impl UrlBuilder {
    /// Appends one query pair (stored decoded; encoded on display).
    pub fn param(mut self, key: &str, value: &str) -> UrlBuilder {
        self.url.query.push((key.to_owned(), value.to_owned()));
        self
    }

    /// Appends a pair only when the value is present.
    pub fn opt_param(self, key: &str, value: Option<&str>) -> UrlBuilder {
        match value {
            Some(v) => self.param(key, v),
            None => self,
        }
    }

    /// Finishes the URL.
    pub fn finish(self) -> Url {
        self.url
    }
}

/// Bytes that travel un-escaped inside query components (RFC 3986
/// unreserved set).
fn is_unreserved(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~')
}

/// Upper-case hex alphabet; indexing with a nibble (0–15) cannot go out
/// of bounds, so escaping needs no fallible conversion.
const HEX_UPPER: &[u8; 16] = b"0123456789ABCDEF";

/// Percent-encodes a query component.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    percent_encode_into(s, &mut out);
    out
}

/// Percent-encodes a query component into a caller-owned buffer — the
/// reused-buffer form of [`percent_encode`]. The buffer is appended to,
/// not cleared.
pub fn percent_encode_into(s: &str, out: &mut String) {
    for &b in s.as_bytes() {
        if is_unreserved(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push(HEX_UPPER[(b >> 4) as usize] as char);
            out.push(HEX_UPPER[(b & 0xf) as usize] as char);
        }
    }
}

/// Percent-decodes a query component. `+` decodes to space (the
/// `application/x-www-form-urlencoded` convention real trackers use).
/// Components without escapes — the overwhelmingly common case — are
/// returned borrowed; only components containing `%` or `+` allocate.
pub fn percent_decode(s: &str) -> Result<Cow<'_, str>, UrlParseError> {
    if !s.bytes().any(|b| b == b'%' || b == b'+') {
        return Ok(Cow::Borrowed(s));
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                if i + 2 > bytes.len() {
                    return Err(UrlParseError::Escape(i));
                }
                let hi = bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16));
                let lo = bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16));
                match (hi, lo) {
                    (Some(h), Some(l)) => {
                        out.push(((h << 4) | l) as u8);
                        i += 3;
                    }
                    _ => return Err(UrlParseError::Escape(i)),
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out)
        .map(Cow::Owned)
        .map_err(|e| UrlParseError::Escape(e.utf8_error().valid_up_to()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_basic_url() {
        let u =
            Url::parse("http://cpp.imp.mpx.mopub.com/imp?charge_price=0.95&currency=USD").unwrap();
        assert!(!u.is_https());
        assert_eq!(u.host(), "cpp.imp.mpx.mopub.com");
        assert_eq!(u.path(), "/imp");
        assert_eq!(u.query("charge_price"), Some("0.95"));
        assert_eq!(u.query("currency"), Some("USD"));
        assert_eq!(u.query("missing"), None);
    }

    #[test]
    fn parses_hostonly_and_port() {
        let u = Url::parse("https://example.com").unwrap();
        assert_eq!(u.path(), "/");
        let u = Url::parse("http://example.com:8080/x?a=1").unwrap();
        assert_eq!(u.host(), "example.com");
        assert_eq!(u.query("a"), Some("1"));
    }

    #[test]
    fn decodes_escapes_and_plus() {
        let u = Url::parse("http://t.co/n?cb=http%3A%2F%2Fbeacon.example%2Ft&q=a+b").unwrap();
        assert_eq!(u.query("cb"), Some("http://beacon.example/t"));
        assert_eq!(u.query("q"), Some("a b"));
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(Url::parse("ftp://x.com/"), Err(UrlParseError::Scheme));
        assert_eq!(Url::parse("not a url"), Err(UrlParseError::Scheme));
        assert_eq!(Url::parse("http:///path"), Err(UrlParseError::Host));
        assert_eq!(Url::parse("http://ex ample.com/"), Err(UrlParseError::Host));
        assert!(matches!(
            Url::parse("http://x.com/?a=%zz"),
            Err(UrlParseError::Escape(_))
        ));
        assert!(matches!(
            Url::parse("http://x.com/?a=%f"),
            Err(UrlParseError::Escape(_))
        ));
    }

    #[test]
    fn fragment_is_dropped() {
        let u = Url::parse("http://x.com/p?a=1#frag?b=2").unwrap();
        assert_eq!(u.query("a"), Some("1"));
        assert_eq!(u.query("b"), None);
    }

    #[test]
    fn builder_round_trips() {
        let u = Url::build(false, "Tags.MathTag.com", "notify/js")
            .param("exch", "ruc")
            .param("price", "B6A3F3C19F50C7FD")
            .param("3pck", "http://beacon-eu2.rubiconproject.com/beacon/t/ce48")
            .finish();
        let s = u.to_string();
        assert!(s.starts_with("http://tags.mathtag.com/notify/js?"));
        let back = Url::parse(&s).unwrap();
        assert_eq!(back, u);
    }

    #[test]
    fn host_matching() {
        let u = Url::parse("http://cpp.imp.mpx.mopub.com/imp").unwrap();
        assert!(u.host_within("mopub.com"));
        assert!(u.host_within("mpx.mopub.com"));
        assert!(!u.host_within("notmopub.com"));
        assert_eq!(u.base_domain(), "mopub.com");
        assert_eq!(
            Url::parse("http://localhost/").unwrap().base_domain(),
            "localhost"
        );
    }

    #[test]
    fn display_encodes_reserved() {
        let u = Url::build(true, "x.com", "/cb")
            .param("u", "a/b&c=d e")
            .finish();
        assert_eq!(u.to_string(), "https://x.com/cb?u=a%2Fb%26c%3Dd%20e");
        assert_eq!(
            Url::parse(&u.to_string()).unwrap().query("u"),
            Some("a/b&c=d e")
        );
    }

    #[test]
    fn empty_query_values() {
        let u = Url::parse("http://x.com/p?flag&k=").unwrap();
        assert_eq!(u.query("flag"), Some(""));
        assert_eq!(u.query("k"), Some(""));
    }

    proptest! {
        #[test]
        fn prop_query_value_round_trip(v in "\\PC*") {
            let u = Url::build(false, "x.com", "/p").param("k", &v).finish();
            let back = Url::parse(&u.to_string()).unwrap();
            prop_assert_eq!(back.query("k"), Some(v.as_str()));
        }

        #[test]
        fn prop_percent_codec_round_trip(s in "\\PC*") {
            prop_assert_eq!(percent_decode(&percent_encode(&s)).unwrap(), s);
        }
    }
}
