//! RTB winning-price notification URLs (nURLs): wire formats.
//!
//! When an ad-exchange resolves an auction it piggybacks a *notification
//! URL* in the ad response; the user's browser fires it as the impression
//! renders, telling the winning DSP what it will be charged (§2.2 of the
//! paper). Those URLs are the paper's entire measurement surface, so this
//! crate treats them as a first-class wire format, smoltcp-style:
//!
//! * [`url`] — a strict, allocation-conscious URL parser/builder with
//!   percent-encoding, sufficient for HTTP(S) query-string URLs;
//! * [`fields`] — the typed payload of a notification
//!   ([`fields::NurlFields`]) with its cleartext-or-encrypted price;
//! * [`template`] — per-exchange emitters and parsers: every exchange has
//!   a house format (parameter names, price encoding) modelled after the
//!   Table-1 examples; emit ∘ parse is the identity on the typed payload;
//! * [`detect`] — the analyzer-side detector that recognises nURLs in raw
//!   traffic by domain/path/parameter *macros* (the paper's pattern list),
//!   and disambiguates charge prices from co-occurring bid prices.
//!
//! Parsing never panics on untrusted input — malformed URLs yield typed
//! errors, unknown hosts yield `None`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod detect;
pub mod fields;
pub mod template;
pub mod url;

pub use detect::{is_candidate, screen, DetectedPrice, FastReject, NurlDetector};
pub use fields::{NurlFields, PricePayload};
pub use template::{emit, parse, NurlParseError};
pub use url::{Url, UrlParseError};
