//! RTB winning-price notification URLs (nURLs): wire formats.
//!
//! When an ad-exchange resolves an auction it piggybacks a *notification
//! URL* in the ad response; the user's browser fires it as the impression
//! renders, telling the winning DSP what it will be charged (§2.2 of the
//! paper). Those URLs are the paper's entire measurement surface, so this
//! crate treats them as a first-class wire format, smoltcp-style:
//!
//! * [`url`] — a strict, allocation-conscious URL parser/builder with
//!   percent-encoding, sufficient for HTTP(S) query-string URLs;
//! * [`urlref`] / [`scratch`] — the zero-copy layer underneath it: a
//!   borrowed [`urlref::UrlRef`] whose components are subslices of the
//!   raw request string, with percent-decoding deferred into a
//!   caller-owned reusable [`scratch::UrlScratch`]. The owned parser is
//!   a thin wrapper over this layer; the monitor rejects non-nURL
//!   traffic on it without touching the heap;
//! * [`fields`] — the typed payload of a notification
//!   ([`fields::NurlFields`]) with its cleartext-or-encrypted price;
//! * [`template`] — per-exchange emitters and parsers: every exchange has
//!   a house format (parameter names, price encoding) modelled after the
//!   Table-1 examples; emit ∘ parse is the identity on the typed payload;
//! * [`detect`] — the analyzer-side detector that recognises nURLs in raw
//!   traffic by domain/path/parameter *macros* (the paper's pattern list),
//!   and disambiguates charge prices from co-occurring bid prices.
//!
//! Parsing never panics on untrusted input — malformed URLs yield typed
//! errors, unknown hosts yield `None`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod detect;
pub mod fields;
pub mod scratch;
pub mod template;
pub mod url;
pub mod urlref;

pub use detect::{
    exchange_host, is_candidate, screen, screen_adx, DetectedPrice, FastReject, NurlDetector,
};
pub use fields::{NurlFields, NurlFieldsRef, PricePayload};
pub use scratch::{DecodedPairs, UrlScratch};
pub use template::{
    emit, emit_into, parse, parse_borrowed, parse_borrowed_ref, parse_borrowed_screened,
    parse_borrowed_screened_tallied, parse_borrowed_screened_tallied_ref, parse_screened, render_into, NurlParseError, NurlRefError,
    TemplateTally,
};
pub use url::{Url, UrlParseError};
pub use urlref::{QueryIter, UrlRef};
