//! Observer-side nURL detection.
//!
//! The weblog analyzer and the YourAdValue client both sift raw request
//! URLs for winning-price notifications. [`NurlDetector`] holds the macro
//! list (exchange domain, notification path, price-parameter name) and
//! classifies each URL in one pass, without assuming the emitting side was
//! well-behaved: the price parameter's *value shape* decides whether the
//! observation is cleartext or encrypted, and echoed bid prices are
//! ignored per §4.1.

use crate::scratch::UrlScratch;
use crate::template;
use crate::url::Url;
use crate::urlref::UrlRef;
use yav_crypto::EncryptedPrice;
use yav_types::{Adx, Cpm};

/// A charge price spotted in traffic, as the observer sees it.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectedPrice {
    /// Readable decimal CPM.
    Cleartext(Cpm),
    /// Opaque token — only its wire form is known.
    Encrypted(EncryptedPrice),
    /// The notification's price field existed but was unintelligible.
    Garbled,
}

impl DetectedPrice {
    /// The cleartext value, if readable.
    pub fn cleartext(&self) -> Option<Cpm> {
        match self {
            DetectedPrice::Cleartext(p) => Some(*p),
            _ => None,
        }
    }

    /// True for the encrypted variant.
    pub fn is_encrypted(&self) -> bool {
        matches!(self, DetectedPrice::Encrypted(_))
    }
}

/// A detected winning-price notification.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// The exchange whose endpoint fired.
    pub adx: Adx,
    /// The price observation.
    pub price: DetectedPrice,
    /// The bidder's callback domain, when echoed.
    pub bidder_domain: Option<String>,
}

/// Outcome of [`screen`]'s cheap rejection of a raw URL string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastReject {
    /// No `http://`/`https://` prefix — [`Url::parse`] could never
    /// accept it.
    Scheme,
    /// Has a scheme, but the host is not an exchange notification
    /// domain — ordinary traffic.
    Host,
}

/// Allocation-free pre-screen over a raw URL string: `Ok(())` only when
/// the URL could still be a winning-price notification (supported scheme
/// and a known exchange notification host). Most monitored traffic is
/// *not* an nURL, and the full [`Url::parse`] allocates host/path/query
/// strings per call — callers on the hot path screen first and only
/// parse survivors.
///
/// Mirrors [`Url::parse`]'s authority handling (authority ends at the
/// first `/`, host at the first `:`), so a candidate's subsequent full
/// parse sees the same host.
pub fn screen(raw: &str) -> Result<(), FastReject> {
    screen_adx(raw).map(|_| ())
}

/// [`screen`], but the verdict carries the matched exchange: a caller
/// that goes on to fully parse a surviving URL hands the `Adx` to
/// [`template::parse_borrowed_screened`] and skips the second
/// host-roster scan — true nURLs pay the screen once, not twice.
pub fn screen_adx(raw: &str) -> Result<Adx, FastReject> {
    let rest = if let Some(r) = raw.strip_prefix("https://") {
        r
    } else if let Some(r) = raw.strip_prefix("http://") {
        r
    } else {
        return Err(FastReject::Scheme);
    };
    let authority = rest.split('/').next().unwrap_or(rest);
    let host = authority.split(':').next().unwrap_or("");
    exchange_host(host).ok_or(FastReject::Host)
}

/// One entry of the precomputed host-dispatch table: the domain length
/// and lowercase first byte let [`exchange_host`] skip an exchange
/// without touching the domain string itself.
#[derive(Clone, Copy)]
struct HostEntry {
    len: u8,
    first: u8,
    domain: &'static str,
    adx: Adx,
}

const fn host_entry(adx: Adx) -> HostEntry {
    let domain = adx.domain();
    HostEntry {
        len: domain.len() as u8,
        first: domain.as_bytes()[0],
        domain,
        adx,
    }
}

/// The exchange roster as a flat dispatch table, computed at compile
/// time from `Adx::ALL` so it cannot drift from the enum.
const HOST_TABLE: [HostEntry; Adx::ALL.len()] = {
    let mut table = [host_entry(Adx::ALL[0]); Adx::ALL.len()];
    let mut i = 1;
    while i < Adx::ALL.len() {
        table[i] = host_entry(Adx::ALL[i]);
        i += 1;
    }
    table
};

/// Bitmask of the domain lengths occurring in [`HOST_TABLE`] (all are
/// well under 64 bytes). A host whose length bit is clear cannot match
/// any exchange, which rejects most ordinary traffic with one bit test.
const HOST_LEN_MASK: u64 = {
    let mut mask = 0u64;
    let mut i = 0;
    while i < HOST_TABLE.len() {
        mask |= 1 << HOST_TABLE[i].len;
        i += 1;
    }
    mask
};

/// The exchange whose notification domain equals `host`, matched
/// case-insensitively (raw hosts from [`UrlRef`] keep their original
/// case; the owned parser lowercases). Exact-match only — subdomains of
/// an exchange domain are *not* notification hosts.
///
/// This sits on the reject path of every monitored request, so the
/// roster scan hides behind two prefilters: the length bitmask, then a
/// per-entry length + first-byte check before any string comparison.
pub fn exchange_host(host: &str) -> Option<Adx> {
    if host.len() >= 64 || HOST_LEN_MASK & (1u64 << host.len()) == 0 {
        return None;
    }
    let first = host.as_bytes().first()?.to_ascii_lowercase();
    HOST_TABLE
        .iter()
        .find(|e| {
            e.len as usize == host.len()
                && e.first == first
                && yav_simd::scan::eq_ignore_ascii_case(host.as_bytes(), e.domain.as_bytes())
        })
        .map(|e| e.adx)
}

/// True when [`screen`] accepts `raw` — the one-word form.
pub fn is_candidate(raw: &str) -> bool {
    screen(raw).is_ok()
}

/// Stateless detector around the built-in macro list.
///
/// Construction is cheap; hold one per analysis pass.
#[derive(Debug, Clone, Default)]
pub struct NurlDetector {
    _private: (),
}

impl NurlDetector {
    /// Creates a detector with the built-in macro list.
    pub fn new() -> NurlDetector {
        NurlDetector { _private: () }
    }

    /// Classifies one URL. Returns `None` for ordinary traffic.
    pub fn detect(&self, url: &Url) -> Option<Detection> {
        let adx = Adx::from_domain(url.host())?;
        if url.path() != template::notification_path(adx) {
            return None;
        }
        let raw = url.query(template::price_param(adx))?;
        let price = Self::classify_price(raw);
        Some(Detection {
            adx,
            price,
            bidder_domain: url.query("bidder").map(str::to_owned),
        })
    }

    /// Classifies a borrowed URL, decoding its query into `scratch` only
    /// after host and path both match a notification template — the
    /// zero-copy twin of [`NurlDetector::detect`]. Ordinary traffic is
    /// rejected without touching the scratch (or the heap).
    pub fn detect_ref(&self, url: &UrlRef<'_>, scratch: &mut UrlScratch) -> Option<Detection> {
        let adx = exchange_host(url.host_raw())?;
        if url.path() != template::notification_path(adx) {
            return None;
        }
        let pairs = scratch.decode(url).ok()?;
        let raw = pairs.get(template::price_param(adx))?;
        let price = Self::classify_price(raw);
        Some(Detection {
            adx,
            price,
            bidder_domain: pairs.get("bidder").map(str::to_owned),
        })
    }

    /// Classifies a raw URL string on the borrowed pipeline. Returns
    /// `None` for ordinary traffic and for URLs that do not parse.
    /// Allocates a transient scratch; hot loops should hold their own
    /// and call [`NurlDetector::detect_str_with`].
    pub fn detect_str(&self, raw: &str) -> Option<Detection> {
        let mut scratch = UrlScratch::new();
        self.detect_str_with(raw, &mut scratch)
    }

    /// [`NurlDetector::detect_str`] with a caller-owned scratch — the
    /// steady-state zero-allocation form for rejected URLs.
    pub fn detect_str_with(&self, raw: &str, scratch: &mut UrlScratch) -> Option<Detection> {
        self.detect_ref(&UrlRef::parse(raw).ok()?, scratch)
    }

    /// Shape-classifies a raw price value: decimal ⇒ cleartext; 28-byte
    /// token (hex or base64url) ⇒ encrypted; anything else ⇒ garbled.
    pub fn classify_price(raw: &str) -> DetectedPrice {
        if raw.len() == 56 {
            if let Ok(tok) = EncryptedPrice::from_hex_wire(raw) {
                return DetectedPrice::Encrypted(tok);
            }
            // 56 hex digits always decode to exactly one token, so the
            // only failure is a non-hex byte — classify by the other
            // shapes, as before.
        }
        if let Ok(p) = raw.parse::<Cpm>() {
            return DetectedPrice::Cleartext(p);
        }
        match EncryptedPrice::from_wire(raw) {
            Ok(tok) => DetectedPrice::Encrypted(tok),
            Err(_) => DetectedPrice::Garbled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{NurlFields, PricePayload};
    use crate::template::emit;
    use yav_crypto::{PriceCrypter, PriceKeys};
    use yav_types::{AuctionId, DspId, ImpressionId};

    fn token() -> EncryptedPrice {
        PriceCrypter::new(PriceKeys::derive("det")).encrypt(2_000_000, [5u8; 16])
    }

    #[test]
    fn detects_cleartext_emission() {
        let fields = NurlFields::minimal(
            Adx::MoPub,
            DspId(1),
            PricePayload::Cleartext(Cpm::from_f64(0.95)),
            ImpressionId(1),
            AuctionId(1),
        );
        let det = NurlDetector::new().detect(&emit(&fields)).unwrap();
        assert_eq!(det.adx, Adx::MoPub);
        assert_eq!(det.price.cleartext(), Some(Cpm::from_f64(0.95)));
        assert_eq!(det.bidder_domain.as_deref(), Some("bidder.criteo.com"));
    }

    #[test]
    fn detects_encrypted_emission_any_codec() {
        for adx in [Adx::DoubleClick, Adx::MathTag, Adx::OpenX] {
            let fields = NurlFields::minimal(
                adx,
                DspId(0),
                PricePayload::Encrypted(token()),
                ImpressionId(2),
                AuctionId(2),
            );
            let det = NurlDetector::new().detect(&emit(&fields)).unwrap();
            assert!(det.price.is_encrypted(), "{adx}");
        }
    }

    #[test]
    fn screen_admits_every_exchange_and_rejects_the_rest() {
        for adx in Adx::ALL {
            let url = format!("http://{}/x", adx.domain());
            assert_eq!(screen(&url), Ok(()), "{url}");
            // Case-insensitive, port-tolerant, path-less — all shapes the
            // full parser would accept with the same host.
            let shouty = format!("https://{}:8080", adx.domain().to_ascii_uppercase());
            assert_eq!(screen(&shouty), Ok(()), "{shouty}");
        }
        assert_eq!(screen("definitely not a url"), Err(FastReject::Scheme));
        assert_eq!(screen("ftp://rtb.openx.net/x"), Err(FastReject::Scheme));
        assert_eq!(
            screen("http://www.elmundo.es/index.html"),
            Err(FastReject::Host)
        );
        // A subdomain of an exchange domain is NOT the notification host;
        // the full detector matches hosts exactly, and so must the screen.
        assert_eq!(screen("http://evil.rtb.openx.net/x"), Err(FastReject::Host));
    }

    #[test]
    fn screen_agrees_with_the_full_detector() {
        // The screen may only reject URLs the detector would also reject:
        // every detectable emission must survive it.
        let d = NurlDetector::new();
        let mut raw = String::new();
        for adx in [Adx::MoPub, Adx::DoubleClick, Adx::Rubicon] {
            let fields = NurlFields::minimal(
                adx,
                DspId(2),
                PricePayload::Cleartext(Cpm::from_f64(0.31)),
                ImpressionId(9),
                AuctionId(9),
            );
            crate::template::emit_into(&fields, &mut raw);
            assert!(is_candidate(&raw), "{raw}");
            assert_eq!(d.detect_str(&raw), d.detect(&Url::parse(&raw).unwrap()));
            assert!(d.detect_str(&raw).is_some());
        }
        assert_eq!(d.detect_str("http://cdn.example.com/lib.js"), None);
        assert_eq!(d.detect_str("nonsense"), None);
    }

    #[test]
    fn borrowed_detection_agrees_with_owned() {
        let d = NurlDetector::new();
        let mut scratch = UrlScratch::new();
        let mut raw = String::new();
        for adx in Adx::ALL {
            for price in [
                PricePayload::Cleartext(Cpm::from_f64(0.42)),
                PricePayload::Encrypted(token()),
            ] {
                let fields =
                    NurlFields::minimal(adx, DspId(1), price, ImpressionId(7), AuctionId(7));
                crate::template::emit_into(&fields, &mut raw);
                let owned = d.detect(&Url::parse(&raw).unwrap());
                let borrowed = d.detect_str_with(&raw, &mut scratch);
                assert_eq!(owned, borrowed, "{raw}");
            }
        }
        // Ordinary and hostile inputs reject identically.
        for s in [
            "http://www.elmundo.es/index.html",
            "http://cpp.imp.mpx.mopub.com/robots.txt",
            "http://cpp.imp.mpx.mopub.com/imp?charge_price=%zz",
            "nonsense",
        ] {
            assert_eq!(d.detect_str_with(s, &mut scratch), None, "{s}");
        }
    }

    #[test]
    fn ignores_ordinary_traffic() {
        let d = NurlDetector::new();
        for s in [
            "http://www.elmundo.es/index.html",
            "https://cdn.example.com/lib.js?v=3",
            "http://cpp.imp.mpx.mopub.com/robots.txt",
        ] {
            assert_eq!(d.detect(&Url::parse(s).unwrap()), None, "{s}");
        }
    }

    #[test]
    fn off_style_exchange_still_classified_by_shape() {
        // A cleartext-house exchange delivering an encrypted token (or the
        // reverse) must still be classified correctly: §2.4's Figure 2 is
        // exactly the drift of ADX-DSP pairs from one style to the other.
        let enc_on_clear_house = NurlFields::minimal(
            Adx::MoPub,
            DspId(0),
            PricePayload::Encrypted(token()),
            ImpressionId(3),
            AuctionId(3),
        );
        let det = NurlDetector::new()
            .detect(&emit(&enc_on_clear_house))
            .unwrap();
        assert!(det.price.is_encrypted());

        let clear_on_enc_house = NurlFields::minimal(
            Adx::DoubleClick,
            DspId(0),
            PricePayload::Cleartext(Cpm::ONE),
            ImpressionId(4),
            AuctionId(4),
        );
        let det = NurlDetector::new()
            .detect(&emit(&clear_on_enc_house))
            .unwrap();
        assert_eq!(det.price.cleartext(), Some(Cpm::ONE));
    }

    #[test]
    fn garbled_prices_flagged() {
        assert_eq!(NurlDetector::classify_price("%%%"), DetectedPrice::Garbled);
        assert_eq!(NurlDetector::classify_price("abc"), DetectedPrice::Garbled);
        // 56 hex chars that aren't a valid token length after decode can't
        // happen (56 hex == 28 bytes), but odd-length hex-ish strings fall
        // through to garbled.
        assert_eq!(
            NurlDetector::classify_price(&"a".repeat(55)),
            DetectedPrice::Garbled
        );
    }

    #[test]
    fn classify_prefers_decimal() {
        // "12" is both valid hex and a valid decimal; decimal must win
        // (real cleartext prices are short decimals).
        assert_eq!(
            NurlDetector::classify_price("12"),
            DetectedPrice::Cleartext(Cpm::from_whole(12))
        );
    }
}
