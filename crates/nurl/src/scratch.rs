//! Caller-owned scratch storage for percent-decoding borrowed URLs.
//!
//! [`UrlScratch`] is the reusable half of the zero-copy pipeline: a
//! [`crate::urlref::UrlRef`] defers all decoding, and when a caller does
//! need decoded query pairs (only for the rare URL that survives host and
//! path screening) it decodes them *into* a scratch it already owns —
//! one flat byte buffer plus a span table, both reused across requests,
//! so steady-state decoding performs no allocation at all.
//!
//! The split between this module and `urlref` is deliberate: `urlref.rs`
//! must stay strictly allocation-free (the `alloc-in-reject-path` lint
//! rule enforces it token by token), while the scratch owns the only
//! buffers in the borrowed pipeline.

use crate::url::UrlParseError;
use crate::urlref::{decode_byte_at, QueryIter, UrlRef};

/// Reusable decode storage: decoded component bytes plus `(key, value)`
/// span bounds per pair. Hold one per ingestion loop and feed it every
/// URL; capacity grows to the high-water mark and stays.
#[derive(Debug, Clone, Default)]
pub struct UrlScratch {
    bytes: Vec<u8>,
    /// `[key_start, key_end, val_start, val_end]` into `bytes`, per pair.
    spans: Vec<[u32; 4]>,
}

impl UrlScratch {
    /// An empty scratch.
    pub fn new() -> UrlScratch {
        UrlScratch::default()
    }

    /// Percent-decodes every query pair of `url` into this scratch,
    /// replacing its previous contents, and returns a view over the
    /// decoded pairs. Errors are byte-for-byte what the owned
    /// `Url::parse` reports for the same input: pairs decode in order,
    /// key before value, and the first failure wins.
    pub fn decode<'s, 'a: 's>(
        &'s mut self,
        url: &UrlRef<'a>,
    ) -> Result<DecodedPairs<'s>, UrlParseError> {
        self.bytes.clear();
        self.spans.clear();
        let query = url.query_str();
        if !yav_simd::scan::contains_either(query.as_bytes(), b'%', b'+') {
            // Whole-query fast path: with no escapes and no `+`, every
            // component's decoded bytes *are* its raw bytes, so the view
            // borrows the query itself and splits pairs lazily at
            // iteration time — no span table is built, no byte is copied
            // or re-validated (the query is already `&str`).
            return Ok(DecodedPairs {
                raw: Some(query),
                text: "",
                spans: &[],
            });
        }
        for (k, v) in url.query_pairs() {
            let (ks, ke) = decode_component(k, &mut self.bytes)?;
            let (vs, ve) = decode_component(v, &mut self.bytes)?;
            self.spans.push([ks, ke, vs, ve]);
        }
        // One validation pass over the whole buffer builds the `&str`
        // view every later span access slices in O(1). Each component was
        // checked at decode time, and valid UTF-8 concatenates to valid
        // UTF-8, so this cannot fail; the error arm keeps the path
        // panic-free rather than asserting.
        let text = match std::str::from_utf8(&self.bytes) {
            Ok(text) => text,
            Err(e) => return Err(UrlParseError::Escape(e.valid_up_to())),
        };
        Ok(DecodedPairs {
            raw: None,
            text,
            spans: &self.spans,
        })
    }
}

/// Decodes one component onto the end of `buf`, returning its span.
/// UTF-8 is validated per component so error positions are relative to
/// the component's decoded bytes — exactly `percent_decode`'s contract.
fn decode_component(raw: &str, buf: &mut Vec<u8>) -> Result<(u32, u32), UrlParseError> {
    let start = buf.len();
    let bytes = raw.as_bytes();
    if !yav_simd::scan::contains_byte(bytes, b'%') {
        // Escape-free fast path: the decoded bytes are the raw bytes
        // with `+` → space (ASCII to ASCII, so the component stays the
        // valid UTF-8 it already was — no validation pass needed).
        if yav_simd::scan::contains_byte(bytes, b'+') {
            buf.extend(bytes.iter().map(|&b| if b == b'+' { b' ' } else { b }));
        } else {
            buf.extend_from_slice(bytes);
        }
        return Ok((start as u32, buf.len() as u32));
    }
    // Escaped path: bulk-copy plain runs, decode each escape, validate
    // the component's decoded bytes.
    let mut i = 0;
    while i < bytes.len() {
        let run = i;
        i = match yav_simd::scan::find_either(&bytes[i..], b'%', b'+') {
            Some(off) => i + off,
            None => bytes.len(),
        };
        buf.extend_from_slice(&bytes[run..i]);
        if i < bytes.len() {
            let b = decode_byte_at(bytes, &mut i)?;
            buf.push(b);
        }
    }
    match std::str::from_utf8(&buf[start..]) {
        Ok(_) => Ok((start as u32, buf.len() as u32)),
        Err(e) => Err(UrlParseError::Escape(e.valid_up_to())),
    }
}

/// Borrowed view over one URL's decoded query pairs, living inside a
/// [`UrlScratch`] — or, for escape-free queries, directly inside the
/// borrowed URL. The escaped form was UTF-8-validated at decode time, so
/// every span access is a bounds-checked O(1) slice; the raw form splits
/// pairs lazily with the exact [`UrlRef::query_pairs`] grammar, and its
/// raw bytes *are* the decoded bytes (no `%`, no `+`).
#[derive(Debug)]
pub struct DecodedPairs<'s> {
    /// `Some(query)` on the escape-free fast path.
    raw: Option<&'s str>,
    text: &'s str,
    spans: &'s [[u32; 4]],
}

impl<'s> DecodedPairs<'s> {
    /// Number of pairs. O(pairs) for an escape-free query (pairs are
    /// never materialized), O(1) otherwise.
    pub fn len(&self) -> usize {
        match self.raw {
            Some(query) => (QueryIter { rest: query }).count(),
            None => self.spans.len(),
        }
    }

    /// True when the URL carried no query pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All decoded `(key, value)` pairs in order.
    pub fn iter(&self) -> PairsIter<'s> {
        match self.raw {
            Some(query) => PairsIter::Raw(QueryIter { rest: query }),
            None => PairsIter::Spans {
                text: self.text,
                spans: self.spans.iter(),
            },
        }
    }

    /// First value for `key` — the decoded-pairs analogue of
    /// `Url::query`.
    pub fn get(&self, key: &str) -> Option<&'s str> {
        self.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Iterator behind [`DecodedPairs::iter`]: lazy raw splitting for
/// escape-free queries, span slicing for decoded ones.
#[derive(Debug)]
pub enum PairsIter<'s> {
    /// Splitting the borrowed query on the fly.
    Raw(QueryIter<'s>),
    /// Walking the scratch-resident span table.
    Spans {
        /// The decoded text every span indexes into.
        text: &'s str,
        /// Remaining `[key_start, key_end, val_start, val_end]` rows.
        spans: std::slice::Iter<'s, [u32; 4]>,
    },
}

impl<'s> Iterator for PairsIter<'s> {
    type Item = (&'s str, &'s str);

    fn next(&mut self) -> Option<(&'s str, &'s str)> {
        match self {
            PairsIter::Raw(inner) => inner.next(),
            PairsIter::Spans { text, spans } => spans
                .next()
                .map(|s| (span_str(text, s[0], s[1]), span_str(text, s[2], s[3]))),
        }
    }
}

/// A decoded span as `&str`. Span bounds are component boundaries by
/// construction (hence char boundaries); the fallback is unreachable but
/// keeps the crate free of panic paths.
fn span_str(text: &str, a: u32, b: u32) -> &str {
    text.get(a as usize..b as usize).unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_like_the_owned_parser() {
        let raw = "http://t.co/n?cb=http%3A%2F%2Fbeacon.example%2Ft&q=a+b&flag&k=";
        let url = UrlRef::parse(raw).unwrap();
        let mut scratch = UrlScratch::new();
        let pairs = scratch.decode(&url).unwrap();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs.get("cb"), Some("http://beacon.example/t"));
        assert_eq!(pairs.get("q"), Some("a b"));
        assert_eq!(pairs.get("flag"), Some(""));
        assert_eq!(pairs.get("k"), Some(""));
        assert_eq!(pairs.get("missing"), None);
        let all: Vec<_> = pairs.iter().collect();
        assert_eq!(all[0], ("cb", "http://beacon.example/t"));
        assert_eq!(all[3], ("k", ""));
    }

    #[test]
    fn errors_match_percent_decode() {
        let mut scratch = UrlScratch::new();
        for (q, raw_component) in [("a=%zz", "%zz"), ("a=%f", "%f"), ("a=%80", "%80")] {
            let input = format!("http://x.com/?{q}");
            let url = UrlRef::parse(&input).unwrap();
            let got = scratch.decode(&url).map(|_| ()).unwrap_err();
            let want = crate::url::percent_decode(raw_component)
                .map(|_| ())
                .unwrap_err();
            assert_eq!(got, want, "{q}");
        }
    }

    #[test]
    fn escape_free_query_takes_fast_path_identically() {
        // No `%` or `+` anywhere: the bulk-copy fast path serves every
        // span, including empty keys/values (which alias the zero span)
        // and a pair with no `=` (whose value is the static `""`).
        let url = UrlRef::parse("http://x.com/n?a=1&flag&k=&=v&q=hello").unwrap();
        let mut scratch = UrlScratch::new();
        let pairs = scratch.decode(&url).unwrap();
        assert_eq!(pairs.len(), 5);
        let all: Vec<_> = pairs.iter().collect();
        assert_eq!(
            all,
            [
                ("a", "1"),
                ("flag", ""),
                ("k", ""),
                ("", "v"),
                ("q", "hello")
            ]
        );
        assert_eq!(pairs.get("q"), Some("hello"));
        assert_eq!(pairs.get("flag"), Some(""));
    }

    #[test]
    fn scratch_reuse_replaces_contents() {
        let mut scratch = UrlScratch::new();
        let a = UrlRef::parse("http://x.com/?a=1&b=2").unwrap();
        assert_eq!(scratch.decode(&a).unwrap().len(), 2);
        let b = UrlRef::parse("http://x.com/?only=once").unwrap();
        let pairs = scratch.decode(&b).unwrap();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs.get("a"), None);
        assert_eq!(pairs.get("only"), Some("once"));
    }
}
