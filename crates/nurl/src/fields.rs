//! The typed payload of a winning-price notification.

use serde::{Deserialize, Serialize};
use yav_crypto::EncryptedPrice;
use yav_types::{AdSlotSize, Adx, AuctionId, CampaignId, Cpm, DspId, ImpressionId};

/// A charge price as it appears on the wire: either readable or opaque.
#[derive(Debug, Clone, PartialEq)]
pub enum PricePayload {
    /// Readable decimal CPM (the `charge_price=0.95` form).
    Cleartext(Cpm),
    /// A 28-byte encrypted token the observer cannot decrypt.
    Encrypted(EncryptedPrice),
}

impl PricePayload {
    /// The cleartext price, if readable.
    pub fn cleartext(&self) -> Option<Cpm> {
        match self {
            PricePayload::Cleartext(p) => Some(*p),
            PricePayload::Encrypted(_) => None,
        }
    }

    /// The encrypted token, if opaque.
    pub fn encrypted(&self) -> Option<&EncryptedPrice> {
        match self {
            PricePayload::Cleartext(_) => None,
            PricePayload::Encrypted(t) => Some(t),
        }
    }

    /// The paper's dichotomy for this payload.
    pub fn visibility(&self) -> yav_types::PriceVisibility {
        match self {
            PricePayload::Cleartext(_) => yav_types::PriceVisibility::Cleartext,
            PricePayload::Encrypted(_) => yav_types::PriceVisibility::Encrypted,
        }
    }
}

/// Everything a notification URL can carry, in typed form.
///
/// Exchanges differ in which optional fields they include — that
/// heterogeneity is real (Turn carries slot sizes, MoPub carries publisher
/// names and latency, others carry almost nothing) and is preserved by the
/// per-exchange templates.
#[derive(Debug, Clone, PartialEq)]
pub struct NurlFields {
    /// The exchange that ran the auction (identified by the URL host).
    pub adx: Adx,
    /// The winning bidder being notified.
    pub dsp: DspId,
    /// The charge price (second-highest bid), cleartext or encrypted.
    pub price: PricePayload,
    /// The winner's own *bid* price, which some exchanges echo in
    /// cleartext next to the charge price. The analyzer must not confuse
    /// the two (§4.1 "filtering out any bidding prices").
    pub bid_price: Option<Cpm>,
    /// Impression identifier.
    pub impression: ImpressionId,
    /// Auction identifier.
    pub auction: AuctionId,
    /// The winning campaign, when echoed.
    pub campaign: Option<CampaignId>,
    /// Auctioned slot size, when echoed.
    pub slot: Option<AdSlotSize>,
    /// Publisher name, when echoed.
    pub publisher: Option<String>,
    /// ISO country code, when echoed.
    pub country: Option<String>,
    /// Auction latency in milliseconds, when echoed.
    pub latency_ms: Option<u32>,
    /// Advertised landing domain, when echoed.
    pub ad_domain: Option<String>,
}

impl NurlFields {
    /// A minimal payload with only the mandatory fields; optional metadata
    /// defaults to absent.
    pub fn minimal(
        adx: Adx,
        dsp: DspId,
        price: PricePayload,
        impression: ImpressionId,
        auction: AuctionId,
    ) -> NurlFields {
        NurlFields {
            adx,
            dsp,
            price,
            bid_price: None,
            impression,
            auction,
            campaign: None,
            slot: None,
            publisher: None,
            country: None,
            latency_ms: None,
            ad_domain: None,
        }
    }
}

/// The borrowed twin of [`NurlFields`]: identical payload, but the free-form
/// string metadata (publisher name, country, ad domain) is borrowed from the
/// caller instead of owned. The auction hot path assembles one of these from
/// per-shard state and renders it straight into a reused buffer via
/// [`crate::template::render_into`] — no per-notification heap traffic.
#[derive(Debug, Clone)]
pub struct NurlFieldsRef<'a> {
    /// The exchange that ran the auction.
    pub adx: Adx,
    /// The winning bidder being notified.
    pub dsp: DspId,
    /// The charge price, cleartext or encrypted.
    pub price: PricePayload,
    /// The winner's echoed bid price, when present.
    pub bid_price: Option<Cpm>,
    /// Impression identifier.
    pub impression: ImpressionId,
    /// Auction identifier.
    pub auction: AuctionId,
    /// The winning campaign, when echoed.
    pub campaign: Option<CampaignId>,
    /// Auctioned slot size, when echoed.
    pub slot: Option<AdSlotSize>,
    /// Publisher name, when echoed.
    pub publisher: Option<&'a str>,
    /// ISO country code, when echoed.
    pub country: Option<&'a str>,
    /// Auction latency in milliseconds, when echoed.
    pub latency_ms: Option<u32>,
    /// Advertised landing domain, when echoed.
    pub ad_domain: Option<&'a str>,
}

impl NurlFieldsRef<'_> {
    /// Materialises an owned [`NurlFields`] with identical payload.
    pub fn to_owned_fields(&self) -> NurlFields {
        NurlFields {
            adx: self.adx,
            dsp: self.dsp,
            price: self.price.clone(),
            bid_price: self.bid_price,
            impression: self.impression,
            auction: self.auction,
            campaign: self.campaign,
            slot: self.slot,
            publisher: self.publisher.map(str::to_owned),
            country: self.country.map(str::to_owned),
            latency_ms: self.latency_ms,
            ad_domain: self.ad_domain.map(str::to_owned),
        }
    }
}

impl NurlFields {
    /// Borrows this payload as a [`NurlFieldsRef`].
    pub fn as_ref_fields(&self) -> NurlFieldsRef<'_> {
        NurlFieldsRef {
            adx: self.adx,
            dsp: self.dsp,
            price: self.price.clone(),
            bid_price: self.bid_price,
            impression: self.impression,
            auction: self.auction,
            campaign: self.campaign,
            slot: self.slot,
            publisher: self.publisher.as_deref(),
            country: self.country.as_deref(),
            latency_ms: self.latency_ms,
            ad_domain: self.ad_domain.as_deref(),
        }
    }
}

/// Observer-side record of one detected charge price: what YourAdValue and
/// the weblog analyzer store per notification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceObservation {
    /// The exchange the notification came from.
    pub adx: Adx,
    /// The readable price if cleartext; `None` for encrypted.
    pub cleartext: Option<Cpm>,
    /// The opaque token's wire form if encrypted; `None` for cleartext.
    pub encrypted_wire: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_types::PriceVisibility;

    #[test]
    fn payload_accessors() {
        let clear = PricePayload::Cleartext(Cpm::from_f64(0.95));
        assert_eq!(clear.cleartext(), Some(Cpm::from_f64(0.95)));
        assert!(clear.encrypted().is_none());
        assert_eq!(clear.visibility(), PriceVisibility::Cleartext);

        let keys = yav_crypto::PriceKeys::derive("t");
        let token = yav_crypto::PriceCrypter::new(keys).encrypt(950_000, [0u8; 16]);
        let enc = PricePayload::Encrypted(token);
        assert!(enc.cleartext().is_none());
        assert_eq!(enc.encrypted(), Some(&token));
        assert_eq!(enc.visibility(), PriceVisibility::Encrypted);
    }

    #[test]
    fn minimal_has_no_metadata() {
        let f = NurlFields::minimal(
            Adx::MoPub,
            DspId(1),
            PricePayload::Cleartext(Cpm::ONE),
            ImpressionId(5),
            AuctionId(6),
        );
        assert!(f.slot.is_none() && f.publisher.is_none() && f.bid_price.is_none());
        assert_eq!(f.adx, Adx::MoPub);
    }
}
