//! Borrowed, zero-copy view of an HTTP(S) URL.
//!
//! [`UrlRef`] is the allocation-free twin of [`crate::url::Url`]: every
//! component is a subslice of the input, query pairs come out of a lazy
//! [`QueryIter`], and percent-decoding is deferred — either validated in
//! place ([`UrlRef::validate_query`]) or decoded into a caller-owned
//! scratch buffer ([`crate::scratch::UrlScratch`]). The owned parser is a
//! thin wrapper over this one, so the two can never disagree on the
//! grammar.
//!
//! This module is the monitor's reject path: at production scale nearly
//! every observed request is *not* an nURL, and rejecting one must not
//! touch the heap. A dedicated lint rule (`alloc-in-reject-path`) keeps
//! every token in this file borrow-only.

use crate::url::UrlParseError;

/// A parsed URL borrowing the input string: scheme flag plus host, path
/// and raw query subslices. Construction performs no percent-decoding and
/// no allocation; escape errors surface later, from
/// [`UrlRef::validate_query`] or the scratch decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UrlRef<'a> {
    https: bool,
    host: &'a str,
    path: &'a str,
    query: &'a str,
}

impl<'a> UrlRef<'a> {
    /// Parses the structural layer of a URL — scheme, host, path, raw
    /// query — without decoding anything. Accepts exactly the inputs the
    /// owned parser accepts structurally; a URL that only fails on a bad
    /// percent-escape parses here and fails at decode/validate time.
    ///
    /// Unlike the owned parser the host keeps its original case; compare
    /// with `eq_ignore_ascii_case` or lowercase at the call site.
    pub fn parse(input: &'a str) -> Result<UrlRef<'a>, UrlParseError> {
        let (https, rest) = if let Some(r) = input.strip_prefix("https://") {
            (true, r)
        } else if let Some(r) = input.strip_prefix("http://") {
            (false, r)
        } else {
            return Err(UrlParseError::Scheme);
        };

        let (authority, path_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        // Strip an optional port; reject empty hosts and whitespace —
        // byte-for-byte the owned parser's host rule (the vector scan
        // checks exactly `is_ascii_alphanumeric || . || - || _`).
        let host = authority.split(':').next().unwrap_or("");
        if host.is_empty() || yav_simd::scan::host_invalid_at(host.as_bytes()).is_some() {
            return Err(UrlParseError::Host);
        }

        // Fragment first (never used, but must not pollute the query),
        // then the query.
        let path_query = match path_query.find('#') {
            Some(i) => &path_query[..i],
            None => path_query,
        };
        let (path, query) = match path_query.find('?') {
            Some(i) => (&path_query[..i], &path_query[i + 1..]),
            None => (path_query, ""),
        };

        Ok(UrlRef {
            https,
            host,
            path,
            query,
        })
    }

    /// `true` for `https`.
    pub fn is_https(&self) -> bool {
        self.https
    }

    /// Host subslice, port stripped, **original case** (the owned parser
    /// lowercases; borrowing cannot).
    pub fn host_raw(&self) -> &'a str {
        self.host
    }

    /// Path subslice, always starting with `/`, fragment stripped.
    pub fn path(&self) -> &'a str {
        self.path
    }

    /// The raw query string after `?` (before `#`), undecoded. Empty when
    /// the URL carries no query.
    pub fn query_str(&self) -> &'a str {
        self.query
    }

    /// Lazy iterator over raw `(key, value)` query pairs: split on `&`
    /// (empty components skipped), each pair split at its first `=`.
    /// Components are *not* percent-decoded.
    pub fn query_pairs(&self) -> QueryIter<'a> {
        QueryIter { rest: self.query }
    }

    /// Validates every query component exactly as the owned parser's
    /// decoder would — same escape grammar, same `+`-to-space rule, same
    /// UTF-8 acceptance, same [`UrlParseError::Escape`] positions — but
    /// without writing a single decoded byte. `UrlRef::parse` followed by
    /// `validate_query` accepts precisely the inputs `Url::parse`
    /// accepts.
    pub fn validate_query(&self) -> Result<(), UrlParseError> {
        // Escape-free queries — the common case — cannot fail: they are
        // already valid UTF-8 subslices, and `+`-to-space substitution
        // maps ASCII to ASCII.
        if !yav_simd::scan::contains_byte(self.query.as_bytes(), b'%') {
            return Ok(());
        }
        for (k, v) in self.query_pairs() {
            validate_component(k)?;
            validate_component(v)?;
        }
        Ok(())
    }

    /// First raw value whose *decoded* key equals `key`; the zero-copy
    /// analogue of `Url::query`. Keys with invalid escapes simply don't
    /// match. The returned value is raw (undecoded).
    pub fn query_raw(&self, key: &str) -> Option<&'a str> {
        self.query_pairs()
            .find(|(k, _)| decoded_eq(k, key))
            .map(|(_, v)| v)
    }
}

/// Iterator over raw query pairs — see [`UrlRef::query_pairs`].
#[derive(Debug, Clone)]
pub struct QueryIter<'a> {
    /// Unconsumed query text. `pub(crate)` so the scratch module's
    /// escape-free fast path can split a borrowed query with this exact
    /// grammar instead of duplicating it.
    pub(crate) rest: &'a str,
}

impl<'a> Iterator for QueryIter<'a> {
    type Item = (&'a str, &'a str);

    fn next(&mut self) -> Option<(&'a str, &'a str)> {
        loop {
            if self.rest.is_empty() {
                return None;
            }
            let (pair, rest) = match self.rest.find('&') {
                Some(i) => (&self.rest[..i], &self.rest[i + 1..]),
                None => (self.rest, ""),
            };
            self.rest = rest;
            if pair.is_empty() {
                continue;
            }
            return Some(match pair.find('=') {
                Some(i) => (&pair[..i], &pair[i + 1..]),
                None => (pair, ""),
            });
        }
    }
}

/// Decodes the byte at raw position `i` of a component, advancing `i`
/// past it. Mirrors the owned decoder's escape grammar: `%XX` hex pairs,
/// `+` to space, everything else verbatim. Errors carry the raw position
/// of the bad escape, like [`crate::url::percent_decode`].
pub(crate) fn decode_byte_at(bytes: &[u8], i: &mut usize) -> Result<u8, UrlParseError> {
    match bytes[*i] {
        b'%' => {
            if *i + 2 > bytes.len() {
                return Err(UrlParseError::Escape(*i));
            }
            let hi = bytes.get(*i + 1).and_then(|b| (*b as char).to_digit(16));
            let lo = bytes.get(*i + 2).and_then(|b| (*b as char).to_digit(16));
            match (hi, lo) {
                (Some(h), Some(l)) => {
                    *i += 3;
                    Ok(((h << 4) | l) as u8)
                }
                _ => Err(UrlParseError::Escape(*i)),
            }
        }
        b'+' => {
            *i += 1;
            Ok(b' ')
        }
        b => {
            *i += 1;
            Ok(b)
        }
    }
}

/// Validates one component without materialising the decoded bytes:
/// escape grammar errors carry the raw position, UTF-8 errors carry the
/// *decoded* position of the first invalid sequence — the exact values
/// `percent_decode` reports (its UTF-8 error is `valid_up_to()` of the
/// decoded buffer).
fn validate_component(raw: &str) -> Result<(), UrlParseError> {
    // Only `%` escapes can produce errors: without them the decoded
    // bytes are the input (a valid `&str`) with `+` → ASCII space.
    if !yav_simd::scan::contains_byte(raw.as_bytes(), b'%') {
        return Ok(());
    }
    let bytes = raw.as_bytes();
    let mut i = 0;
    let mut utf8 = Utf8Check::new();
    while i < bytes.len() {
        let b = decode_byte_at(bytes, &mut i)?;
        utf8.push(b).map_err(UrlParseError::Escape)?;
    }
    utf8.finish().map_err(UrlParseError::Escape)
}

/// The decoded byte length of a component with valid escapes: `%XX`
/// counts one byte, everything else counts itself. Lets callers compute
/// decoded sizes (e.g. transport features) without a decode buffer.
pub fn decoded_len(raw: &str) -> usize {
    // `+` → space is one-to-one; only `%XX` shrinks.
    if !yav_simd::scan::contains_byte(raw.as_bytes(), b'%') {
        return raw.len();
    }
    let bytes = raw.as_bytes();
    let mut i = 0;
    let mut n = 0;
    while i < bytes.len() {
        if decode_byte_at(bytes, &mut i).is_err() {
            // Malformed tail: count the remaining raw bytes verbatim so
            // the function is total (callers validate first anyway).
            n += bytes.len() - i;
            break;
        }
        n += 1;
    }
    n
}

/// True when `raw` percent-decodes exactly to `target`, without
/// allocating. Invalid escapes never match.
fn decoded_eq(raw: &str, target: &str) -> bool {
    if !yav_simd::scan::contains_either(raw.as_bytes(), b'%', b'+') {
        return raw == target;
    }
    let bytes = raw.as_bytes();
    let want = target.as_bytes();
    let mut i = 0;
    let mut w = 0;
    while i < bytes.len() {
        let Ok(b) = decode_byte_at(bytes, &mut i) else {
            return false;
        };
        if w >= want.len() || want[w] != b {
            return false;
        }
        w += 1;
    }
    w == want.len()
}

/// Incremental UTF-8 acceptor tracking positions in *decoded* bytes,
/// tuned to report exactly what `std::str::from_utf8`'s `valid_up_to()`
/// reports: the decoded offset where the first invalid or incomplete
/// sequence starts.
struct Utf8Check {
    /// Decoded bytes accepted so far.
    pos: usize,
    /// Decoded offset where the in-flight multi-byte sequence began.
    seq_start: usize,
    /// Continuation bytes still expected.
    need: u8,
    /// Allowed range for the next continuation byte (the second byte of
    /// a sequence is range-restricted per the RFC 3629 table; later ones
    /// are always `0x80..=0xBF`).
    lo: u8,
    hi: u8,
}

impl Utf8Check {
    fn new() -> Utf8Check {
        Utf8Check {
            pos: 0,
            seq_start: 0,
            need: 0,
            lo: 0,
            hi: 0,
        }
    }

    fn start(&mut self, need: u8, lo: u8, hi: u8) {
        self.seq_start = self.pos;
        self.need = need;
        self.lo = lo;
        self.hi = hi;
        self.pos += 1;
    }

    fn push(&mut self, b: u8) -> Result<(), usize> {
        if self.need > 0 {
            if b < self.lo || b > self.hi {
                return Err(self.seq_start);
            }
            self.need -= 1;
            self.lo = 0x80;
            self.hi = 0xBF;
            self.pos += 1;
            return Ok(());
        }
        match b {
            0x00..=0x7F => self.pos += 1,
            0xC2..=0xDF => self.start(1, 0x80, 0xBF),
            0xE0 => self.start(2, 0xA0, 0xBF),
            0xE1..=0xEC => self.start(2, 0x80, 0xBF),
            0xED => self.start(2, 0x80, 0x9F),
            0xEE..=0xEF => self.start(2, 0x80, 0xBF),
            0xF0 => self.start(3, 0x90, 0xBF),
            0xF1..=0xF3 => self.start(3, 0x80, 0xBF),
            0xF4 => self.start(3, 0x80, 0x8F),
            _ => return Err(self.pos),
        }
        Ok(())
    }

    fn finish(&self) -> Result<(), usize> {
        if self.need > 0 {
            Err(self.seq_start)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subslices_without_copying() {
        let raw = "https://Tags.MathTag.com:8080/notify/js?price=1&q=a+b#frag";
        let u = UrlRef::parse(raw).unwrap();
        assert!(u.is_https());
        assert_eq!(u.host_raw(), "Tags.MathTag.com");
        assert_eq!(u.path(), "/notify/js");
        assert_eq!(u.query_str(), "price=1&q=a+b");
        // Subslice identity: components point into the input.
        let host_off = u.host_raw().as_ptr() as usize - raw.as_ptr() as usize;
        assert_eq!(
            &raw[host_off..host_off + u.host_raw().len()],
            "Tags.MathTag.com"
        );
    }

    #[test]
    fn query_iter_matches_owned_split_rules() {
        let u = UrlRef::parse("http://x.com/p?a=1&&flag&k=&b=2=3").unwrap();
        let pairs: Vec<_> = u.query_pairs().collect();
        assert_eq!(
            pairs,
            vec![("a", "1"), ("flag", ""), ("k", ""), ("b", "2=3")]
        );
    }

    #[test]
    fn structural_errors_match_owned() {
        assert_eq!(UrlRef::parse("ftp://x.com/"), Err(UrlParseError::Scheme));
        assert_eq!(UrlRef::parse("not a url"), Err(UrlParseError::Scheme));
        assert_eq!(UrlRef::parse("http:///path"), Err(UrlParseError::Host));
        assert_eq!(
            UrlRef::parse("http://ex ample.com/"),
            Err(UrlParseError::Host)
        );
    }

    #[test]
    fn validate_query_accepts_and_rejects_like_decode() {
        let ok = UrlRef::parse("http://x.com/p?cb=http%3A%2F%2Fb.e%2Ft&q=a+b").unwrap();
        assert_eq!(ok.validate_query(), Ok(()));
        let bad = UrlRef::parse("http://x.com/?a=%zz").unwrap();
        assert!(matches!(
            bad.validate_query(),
            Err(UrlParseError::Escape(_))
        ));
        let trunc = UrlRef::parse("http://x.com/?a=%f").unwrap();
        assert!(matches!(
            trunc.validate_query(),
            Err(UrlParseError::Escape(_))
        ));
        // Decodes to invalid UTF-8 (lone continuation byte).
        let utf8 = UrlRef::parse("http://x.com/?a=%80").unwrap();
        assert_eq!(utf8.validate_query(), Err(UrlParseError::Escape(0)));
    }

    #[test]
    fn query_raw_compares_decoded_keys() {
        let u = UrlRef::parse("http://x.com/p?re%64ir=http%3A%2F%2Fe").unwrap();
        assert_eq!(u.query_raw("redir"), Some("http%3A%2F%2Fe"));
        assert_eq!(u.query_raw("red"), None);
        assert_eq!(u.query_raw("redirx"), None);
    }

    #[test]
    fn decoded_len_counts_decoded_bytes() {
        assert_eq!(decoded_len("a+b"), 3);
        assert_eq!(decoded_len("%41%42c"), 3);
        assert_eq!(decoded_len(""), 0);
    }

    #[test]
    fn utf8_check_agrees_with_std() {
        // Exhaustive-ish corpus of valid/invalid sequences: the decoded
        // error position must equal `from_utf8`'s `valid_up_to()`.
        let cases: &[&[u8]] = &[
            b"plain ascii",
            "καλημέρα κόσμε".as_bytes(),
            "🦀🦀".as_bytes(),
            &[0x61, 0x80],
            &[0x61, 0xC2],
            &[0x61, 0xC2, 0x41],
            &[0xE0, 0x80, 0x80],
            &[0xE0, 0xA0],
            &[0xED, 0xA0, 0x80],
            &[0xF0, 0x8F, 0x80, 0x80],
            &[0xF4, 0x90, 0x80, 0x80],
            &[0xF1, 0x80, 0x80],
            &[0xFE, 0xFF],
            &[0xC0, 0xAF],
        ];
        for bytes in cases {
            let mut check = Utf8Check::new();
            let mut incremental: Result<(), usize> = Ok(());
            for &b in *bytes {
                if let Err(e) = check.push(b) {
                    incremental = Err(e);
                    break;
                }
            }
            if incremental.is_ok() {
                incremental = check.finish();
            }
            let std_result = std::str::from_utf8(bytes);
            match (incremental, std_result) {
                (Ok(()), Ok(_)) => {}
                (Err(pos), Err(e)) => {
                    assert_eq!(pos, e.valid_up_to(), "position for {bytes:?}")
                }
                (inc, std) => panic!("disagree on {bytes:?}: {inc:?} vs {std:?}"),
            }
        }
    }
}
