//! The YourAdValue extension runtime.
//!
//! [`YourAdValue`] is the client: it observes the device's HTTP requests
//! (the browser's webRequest hook in the real extension), filters
//! winning-price notifications, tallies cleartext prices directly and
//! estimates encrypted ones locally with the downloaded decision-tree
//! model — privacy-preserving: no browsing data leaves the device unless
//! the user opts into anonymous contribution (§3.3).

use crate::ledger::{Ledger, PriceEvent};
use yav_analyzer::taxonomy;
use yav_analyzer::ua::{parse_user_agent, UaFingerprint};
use yav_nurl::fields::{NurlFields, PricePayload};
use yav_nurl::{template, TemplateTally, UrlRef, UrlScratch};
use yav_pme::engine::{ContributionBatch, Pme};
use yav_pme::model::{self, ClientModel, CoreContext, EstimateScratch};
use yav_types::{City, Cpm, PriceVisibility, SimTime};
use yav_weblog::HttpRequest;

/// Pre-resolved telemetry handles for the ingestion path. Looking a
/// metric up by name costs a registry lock; the monitor observes every
/// HTTP request the device makes, so it pays that cost once at
/// construction instead of per request.
#[derive(Debug, Clone)]
struct MonitorMetrics {
    parse_error: yav_telemetry::Counter,
    not_notification: yav_telemetry::Counter,
    rejected_total: yav_telemetry::Counter,
    skipped_no_model: yav_telemetry::Counter,
    events: yav_telemetry::Counter,
    ledger_cleartext_cpm: yav_telemetry::Gauge,
    ledger_estimated_cpm: yav_telemetry::Gauge,
    observe_us: yav_telemetry::Histogram,
    /// Per-phase wall time of [`YourAdValue::observe_batch`]'s three
    /// passes — the breakdown that explains where a batch's
    /// `ingest.observe.us` actually goes.
    sift_us: yav_telemetry::Histogram,
    predict_us: yav_telemetry::Histogram,
    commit_us: yav_telemetry::Histogram,
    /// Mirror of the counter [`EstimateScratch`] bumps per serial
    /// estimate; the batch path adds its whole count at once.
    predictions: yav_telemetry::Counter,
    /// The SIMD dispatch tier the ingest hot path resolved to, as
    /// [`yav_simd::Level`]'s numeric value (0 scalar … 4 neon). A gauge
    /// so dashboards can tell a portable-fallback deployment from a
    /// native one without parsing logs.
    simd_level: yav_telemetry::Gauge,
}

impl Default for MonitorMetrics {
    fn default() -> MonitorMetrics {
        MonitorMetrics {
            parse_error: yav_telemetry::counter("core.monitor.nurl.parse_error"),
            not_notification: yav_telemetry::counter("core.monitor.nurl.not_notification"),
            rejected_total: yav_telemetry::counter("ingest.rejected_total"),
            skipped_no_model: yav_telemetry::counter("core.monitor.skipped_no_model"),
            events: yav_telemetry::counter("core.monitor.events"),
            ledger_cleartext_cpm: yav_telemetry::gauge("core.monitor.ledger_cleartext_cpm"),
            ledger_estimated_cpm: yav_telemetry::gauge("core.monitor.ledger_estimated_cpm"),
            observe_us: yav_telemetry::histogram("ingest.observe.us"),
            sift_us: yav_telemetry::histogram("ingest.batch.sift.us"),
            predict_us: yav_telemetry::histogram("ingest.batch.predict.us"),
            commit_us: yav_telemetry::histogram("ingest.batch.commit.us"),
            predictions: yav_telemetry::counter("pme.predictions_total"),
            simd_level: {
                let g = yav_telemetry::gauge("ingest.simd_level");
                g.set(yav_simd::level() as u8 as f64);
                g
            },
        }
    }
}

/// Reusable buffers for the zero-copy ingestion path: URL decode
/// scratch shared by every observed request, plus the flat feature
/// matrix and slot map [`YourAdValue::observe_batch`] stages encrypted
/// notifications into. Capacity grows to the high-water mark and stays.
#[derive(Debug, Default)]
pub struct ObserveScratch {
    /// Per-request sift state (URL decode, template tally, UA memo).
    sift: SiftScratch,
    /// Row-major encoded features, one row per staged encrypted event.
    rows: Vec<f64>,
    /// For each feature row, the index of its staged event.
    slots: Vec<usize>,
    /// Events staged by pass 1 of [`YourAdValue::observe_batch`], reused
    /// across batches (the old per-call `Vec::new` was one of the batch
    /// path's losses to serial on reject-heavy streams).
    staged: Vec<PriceEvent>,
}

/// Reusable state every sift path carries: URL decode scratch, the
/// deferred `nurl.template.*` tally, and a one-entry user-agent
/// fingerprint memo. A device sends the same UA string on essentially
/// every request, so repeat fingerprinting collapses to one string
/// compare; the memo lives with the scratch so serial, batch and
/// multi-tenant ingestion all benefit without sharing monitor state.
///
/// Callers own the tally flush: serial paths flush after every request
/// (counter totals indistinguishable from per-URL accounting), batch
/// paths once per batch.
#[derive(Debug, Default)]
pub(crate) struct SiftScratch {
    url: UrlScratch,
    pub(crate) tally: TemplateTally,
    ua_raw: String,
    ua_fp: Option<UaFingerprint>,
}

impl SiftScratch {
    /// The memoized [`parse_user_agent`].
    fn fingerprint(&mut self, ua: &str) -> UaFingerprint {
        match self.ua_fp {
            Some(fp) if self.ua_raw == ua => fp,
            _ => {
                let fp = parse_user_agent(ua);
                self.ua_raw.clear();
                self.ua_raw.push_str(ua);
                self.ua_fp = Some(fp);
                fp
            }
        }
    }
}

/// Why [`sift_request`] discarded a URL. The caller owns the accounting:
/// the serial path bumps counters per drop, the batch path tallies
/// locally and flushes once per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SiftDrop {
    /// Unparseable URL or malformed notification payload.
    ParseError,
    /// Ordinary traffic (non-exchange host or non-notification endpoint).
    NotNotification,
}

/// Screens one request down to its notification payload over the
/// zero-copy parser. Pure with respect to the monitor: all accounting
/// stays with the caller, which is what lets the multi-tenant store and
/// both observe paths share one sift without sharing monitor state.
///
/// Non-nURL traffic — the overwhelming majority — leaves through one of
/// the early rejects without touching the heap: [`yav_nurl::screen_adx`]
/// inspects only the scheme prefix and authority, [`UrlRef::parse`]
/// borrows subslices of the raw request, and the verdict carries the
/// matched exchange into the full parse so true nURLs scan the host
/// roster exactly once.
pub(crate) fn sift_request(
    home_city: Option<City>,
    req: &HttpRequest,
    scratch: &mut SiftScratch,
) -> Result<(NurlFields, CoreContext), SiftDrop> {
    let adx = match yav_nurl::screen_adx(&req.url) {
        Ok(adx) => adx,
        // Scheme-less strings could never parse as URLs.
        Err(yav_nurl::FastReject::Scheme) => return Err(SiftDrop::ParseError),
        Err(yav_nurl::FastReject::Host) => return Err(SiftDrop::NotNotification),
    };
    // Post-screen structural failure: the scheme and host already
    // passed, so this is unreachable in practice, but the accounting
    // stays total.
    let url = UrlRef::parse(&req.url).map_err(|_| SiftDrop::ParseError)?;
    let fields = match template::parse_borrowed_screened_tallied(
        adx,
        &url,
        &mut scratch.url,
        &mut scratch.tally,
    ) {
        Ok(Some(fields)) => fields,
        Ok(None) => return Err(SiftDrop::NotNotification),
        Err(_) => return Err(SiftDrop::ParseError),
    };

    let fp = scratch.fingerprint(&req.user_agent);
    let ctx = CoreContext {
        city: home_city,
        time: req.time,
        device: fp.device,
        os: fp.os,
        interaction: fp.interaction,
        format: fields.slot,
        adx: fields.adx,
        iab: fields.publisher.as_deref().and_then(taxonomy::categorize),
        publisher: fields.publisher.clone(),
    };
    Ok((fields, ctx))
}

/// [`sift_request`] for callers that only need the price: parses with
/// the borrowed-payload template path (no owned field strings) and
/// builds the estimator's [`CoreContext`] — the one allocating piece —
/// only when `want_ctx` is set. With no model loaded, the whole sift is
/// heap-free, which is what keeps the multi-tenant feed path inside the
/// steady-state zero-allocation contract (`no_alloc_gen.rs`).
pub(crate) fn sift_request_priced(
    home_city: Option<City>,
    req: &HttpRequest,
    scratch: &mut SiftScratch,
    want_ctx: bool,
) -> Result<(PricePayload, Option<CoreContext>), SiftDrop> {
    let adx = match yav_nurl::screen_adx(&req.url) {
        Ok(adx) => adx,
        Err(yav_nurl::FastReject::Scheme) => return Err(SiftDrop::ParseError),
        Err(yav_nurl::FastReject::Host) => return Err(SiftDrop::NotNotification),
    };
    let url = UrlRef::parse(&req.url).map_err(|_| SiftDrop::ParseError)?;
    let fields = match template::parse_borrowed_screened_tallied_ref(
        adx,
        &url,
        &mut scratch.url,
        &mut scratch.tally,
    ) {
        Ok(Some(fields)) => fields,
        Ok(None) => return Err(SiftDrop::NotNotification),
        Err(_) => return Err(SiftDrop::ParseError),
    };

    // Extract everything the context needs while the borrowed payload is
    // live: it ties up the URL scratch, which the fingerprint memo does
    // not touch, but the owned publisher copy must happen here anyway.
    let price = fields.price.clone();
    let (format, field_adx) = (fields.slot, fields.adx);
    let (iab, publisher) = if want_ctx {
        (
            fields.publisher.and_then(taxonomy::categorize),
            fields.publisher.map(str::to_owned),
        )
    } else {
        (None, None)
    };
    let ctx = want_ctx.then(|| {
        let fp = scratch.fingerprint(&req.user_agent);
        CoreContext {
            city: home_city,
            time: req.time,
            device: fp.device,
            os: fp.os,
            interaction: fp.interaction,
            format,
            adx: field_adx,
            iab,
            publisher,
        }
    });
    Ok((price, ctx))
}

/// The client-side monitor.
#[derive(Debug, Default)]
pub struct YourAdValue {
    /// The user's home city as configured (or detected) by the extension;
    /// used as model input when a notification carries no location.
    home_city: Option<City>,
    /// The downloaded estimation model, if any.
    model: Option<ClientModel>,
    /// Local storage.
    ledger: Ledger,
    /// Pending anonymous contributions (drained on opt-in upload).
    pending: ContributionBatch,
    /// Encrypted notifications skipped because no model was installed.
    skipped_no_model: u64,
    /// Observed URLs dropped, by reason.
    drops: DropStats,
    /// Reusable buffers + telemetry handles for per-impression
    /// estimation (the extension values every encrypted notification, so
    /// the estimate path must not allocate).
    scratch: EstimateScratch,
    /// Reusable ingestion buffers (URL decoding, batch staging).
    obs: ObserveScratch,
    /// Pre-resolved telemetry handles.
    metrics: MonitorMetrics,
}

/// Trace payload code on `ingest.drop` instants: malformed URL or
/// payload.
const DROP_PARSE_ERROR: u64 = 1;
/// Trace payload code on `ingest.drop` instants: ordinary traffic.
const DROP_NOT_NOTIFICATION: u64 = 2;

/// Why observed requests were silently discarded — the monitor's own
/// loss accounting (every non-notification or malformed URL used to
/// vanish without a trace).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropStats {
    /// URLs with no parseable scheme, candidate URLs that failed the
    /// full parse, or notification endpoints with a malformed payload.
    pub parse_error: u64,
    /// Ordinary traffic: URLs on non-exchange hosts (fast-rejected
    /// before full parsing) or exchange URLs that are not notifications.
    pub not_notification: u64,
}

impl YourAdValue {
    /// A fresh installation with no model.
    pub fn new(home_city: Option<City>) -> YourAdValue {
        YourAdValue {
            home_city,
            ..YourAdValue::default()
        }
    }

    /// Installs (or replaces) the estimation model — the result of the
    /// extension's periodic "check for new versions" poll.
    pub fn install_model(&mut self, model: ClientModel) {
        self.model = Some(model);
    }

    /// The installed model version (0 = none).
    pub fn model_version(&self) -> u32 {
        self.model.as_ref().map(|m| m.version).unwrap_or(0)
    }

    /// Polls a PME for a fresher model; installs it if the version
    /// advanced. Returns true when an update was installed.
    pub fn refresh_model(&mut self, pme: &Pme) -> bool {
        match pme.current_model() {
            Some(m) if m.version > self.model_version() => {
                self.model = Some(m);
                true
            }
            _ => false,
        }
    }

    /// [`sift_request`] plus this monitor's per-drop accounting. Shared
    /// by [`YourAdValue::observe`] and (via the free function and a
    /// batch-local tally) [`YourAdValue::observe_batch`], so the two
    /// paths cannot drift.
    fn sift(&mut self, req: &HttpRequest) -> Option<(NurlFields, CoreContext)> {
        let result = sift_request(self.home_city, req, &mut self.obs.sift);
        // Serial calls flush the template tally immediately: counter
        // totals at return are exactly what per-URL accounting produces.
        self.obs.sift.tally.flush();
        match result {
            Ok(found) => Some(found),
            Err(SiftDrop::ParseError) => {
                self.drops.parse_error += 1;
                self.metrics.parse_error.inc();
                self.metrics.rejected_total.inc();
                yav_trace::trace_instant!("ingest.drop", DROP_PARSE_ERROR);
                None
            }
            Err(SiftDrop::NotNotification) => {
                self.drops.not_notification += 1;
                self.metrics.not_notification.inc();
                self.metrics.rejected_total.inc();
                yav_trace::trace_instant!("ingest.drop", DROP_NOT_NOTIFICATION);
                None
            }
        }
    }

    /// Stores one finished event: ledger, event counter, running totals
    /// split the way the paper splits them.
    fn commit(&mut self, event: PriceEvent) -> PriceEvent {
        self.ledger.push(event.clone());
        self.metrics.events.inc();
        if event.estimated {
            self.metrics.ledger_estimated_cpm.add(event.amount.as_f64());
        } else {
            self.metrics.ledger_cleartext_cpm.add(event.amount.as_f64());
        }
        event
    }

    /// Observes one HTTP request. Returns the stored event if it was a
    /// winning-price notification.
    pub fn observe(&mut self, req: &HttpRequest) -> Option<PriceEvent> {
        let _trace = yav_trace::trace_span!("ingest.observe");
        let (fields, ctx) = self.sift(req)?;
        let event = match &fields.price {
            PricePayload::Cleartext(price) => {
                self.pending.cleartext.push((ctx, *price));
                PriceEvent {
                    time: req.time,
                    adx: fields.adx,
                    visibility: PriceVisibility::Cleartext,
                    amount: *price,
                    estimated: false,
                }
            }
            PricePayload::Encrypted(_) => {
                let Some(model) = &self.model else {
                    // No model yet: the price is counted as an encrypted
                    // sighting but cannot be valued.
                    self.skipped_no_model += 1;
                    self.metrics.skipped_no_model.inc();
                    self.pending.encrypted.push(ctx);
                    return None;
                };
                let estimate = model.estimate_into(&ctx, &mut self.scratch);
                self.pending.encrypted.push(ctx);
                PriceEvent {
                    time: req.time,
                    adx: fields.adx,
                    visibility: PriceVisibility::Encrypted,
                    amount: estimate,
                    estimated: true,
                }
            }
        };
        Some(self.commit(event))
    }

    /// Observes a batch of HTTP requests, returning the stored events in
    /// request order. Bit-identical side effects to calling
    /// [`YourAdValue::observe`] per request — same ledger, drop stats and
    /// pending contributions — but encrypted notifications are valued
    /// through `CompiledForest::predict_batch`'s level-synchronous
    /// traversal instead of row-at-a-time tree walks,
    /// and all scratch (URL decode buffers, the feature matrix) is
    /// reused across the batch.
    ///
    /// Batches record one `ingest.observe.us` sample and add their
    /// prediction count to `pme.predictions_total` in one step; the
    /// per-prediction `pme.predict.us` histogram is a serial-path-only
    /// metric.
    pub fn observe_batch(&mut self, reqs: &[HttpRequest]) -> Vec<PriceEvent> {
        let _timer = self.metrics.observe_us.time_us();
        // Refresh the dispatch-tier gauge: `force_level` can retier the
        // kernels at any time (tests and the parity bench do), and one
        // atomic store per batch is free.
        self.metrics.simd_level.set(yav_simd::level() as u8 as f64);
        let _trace = yav_trace::trace_span!("ingest.observe_batch", reqs.len());
        // The staging buffers move out of `self` for the duration of the
        // borrow-heavy first pass and return before exit.
        let mut rows = std::mem::take(&mut self.obs.rows);
        let mut slots = std::mem::take(&mut self.obs.slots);
        let mut staged = std::mem::take(&mut self.obs.staged);
        rows.clear();
        slots.clear();
        staged.clear();

        // Pass 1: sift every request in order, staging events and (for
        // encrypted notifications under a model) one encoded feature row
        // each, with a placeholder amount until pass 2 fills it in.
        //
        // Drops are tallied in two locals and flushed to the counters
        // once per batch: the final `DropStats` and counter values are
        // identical to the serial path's, but the dominant reject case
        // pays one register increment instead of three atomic RMWs —
        // without that, batch observe *lost* to serial on reject-heavy
        // streams (BENCH_ingest.json had it at 0.95× on the mixed
        // stream).
        let mut drop_parse_error = 0u64;
        let mut drop_not_notification = 0u64;
        {
            let _phase = yav_trace::trace_span!("ingest.sift", reqs.len());
            let _phase_us = self.metrics.sift_us.time_us();
            for req in reqs {
                let (fields, ctx) = match sift_request(self.home_city, req, &mut self.obs.sift) {
                    Ok(found) => found,
                    Err(SiftDrop::ParseError) => {
                        drop_parse_error += 1;
                        yav_trace::trace_instant!("ingest.drop", DROP_PARSE_ERROR);
                        continue;
                    }
                    Err(SiftDrop::NotNotification) => {
                        drop_not_notification += 1;
                        yav_trace::trace_instant!("ingest.drop", DROP_NOT_NOTIFICATION);
                        continue;
                    }
                };
                match &fields.price {
                    PricePayload::Cleartext(price) => {
                        self.pending.cleartext.push((ctx, *price));
                        staged.push(PriceEvent {
                            time: req.time,
                            adx: fields.adx,
                            visibility: PriceVisibility::Cleartext,
                            amount: *price,
                            estimated: false,
                        });
                    }
                    PricePayload::Encrypted(_) => {
                        let Some(model) = &self.model else {
                            self.skipped_no_model += 1;
                            self.metrics.skipped_no_model.inc();
                            self.pending.encrypted.push(ctx);
                            continue;
                        };
                        model::encode_append(&ctx, model.with_publisher, &mut rows);
                        slots.push(staged.len());
                        self.pending.encrypted.push(ctx);
                        staged.push(PriceEvent {
                            time: req.time,
                            adx: fields.adx,
                            visibility: PriceVisibility::Encrypted,
                            amount: Cpm::ZERO,
                            estimated: true,
                        });
                    }
                }
            }
        }
        self.drops.parse_error += drop_parse_error;
        self.drops.not_notification += drop_not_notification;
        self.metrics.parse_error.add(drop_parse_error);
        self.metrics.not_notification.add(drop_not_notification);
        self.metrics
            .rejected_total
            .add(drop_parse_error + drop_not_notification);
        self.obs.sift.tally.flush();

        // Pass 2: one batched forest traversal values every staged
        // encrypted event.
        if !slots.is_empty() {
            let _phase = yav_trace::trace_span!("ingest.predict", slots.len());
            let _phase_us = self.metrics.predict_us.time_us();
            if let Some(model) = &self.model {
                let classes = model
                    .compiled
                    .predict_batch(&rows, model.compiled.n_features());
                for (&slot, &class) in slots.iter().zip(&classes) {
                    if let (Some(event), Some(&price)) =
                        (staged.get_mut(slot), model.class_prices.get(class))
                    {
                        event.amount = Cpm::from_f64(price);
                    }
                }
                self.metrics.predictions.add(slots.len() as u64);
            }
        }

        // Pass 3: commit in request order, so ledger contents, counters
        // and the running gauge sums match the serial path exactly.
        let mut out = Vec::with_capacity(staged.len());
        {
            let _phase = yav_trace::trace_span!("ingest.commit", staged.len());
            let _phase_us = self.metrics.commit_us.time_us();
            for event in staged.drain(..) {
                out.push(self.commit(event));
            }
        }
        self.obs.rows = rows;
        self.obs.slots = slots;
        self.obs.staged = staged;
        out
    }

    /// Convenience for URL-only observation (no headers available).
    pub fn observe_url(&mut self, time: SimTime, url: &str) -> Option<PriceEvent> {
        self.observe(&HttpRequest::bare(time, url))
    }

    /// The local ledger.
    // yav-lint: allow(boundary-escape) — the ledger is the user's own price history, read in-process by the extension UI; it never crosses a network or exporter boundary (privacy-taint guards the exporters)
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Encrypted notifications that could not be valued (no model).
    pub fn skipped_no_model(&self) -> u64 {
        self.skipped_no_model
    }

    /// How many observed URLs were discarded, by reason.
    pub fn drop_stats(&self) -> DropStats {
        self.drops
    }

    /// Drains and returns the pending anonymous-contribution batch (what
    /// an opted-in client uploads to the PME).
    pub fn take_contributions(&mut self) -> ContributionBatch {
        std::mem::take(&mut self.pending)
    }

    /// Uploads pending contributions to a PME (opt-in path). Returns the
    /// number of observations sent.
    pub fn contribute_to(&mut self, pme: &Pme) -> usize {
        let batch = self.take_contributions();
        let n = batch.len();
        if n > 0 {
            pme.contribute(batch);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_auction::{Market, MarketConfig};
    use yav_campaign::Campaign;
    use yav_pme::model::TrainConfig;
    use yav_weblog::{PublisherUniverse, WeblogConfig, WeblogGenerator};

    fn trained_pme() -> Pme {
        let mut market = Market::new(MarketConfig::default());
        let universe = PublisherUniverse::build(0xD474, 300, 120);
        let rows = yav_campaign::execute(&mut market, &universe, &Campaign::a1().scaled(10)).rows;
        let pme = Pme::new();
        pme.train_from_campaign(&rows, &TrainConfig::quick());
        pme
    }

    fn traffic() -> Vec<HttpRequest> {
        let generator = WeblogGenerator::new(WeblogConfig::tiny());
        let mut market = Market::new(MarketConfig::default());
        generator.collect(&mut market).requests
    }

    #[test]
    fn tallies_cleartext_without_model() {
        let mut yav = YourAdValue::new(Some(City::Madrid));
        let mut events = 0;
        for req in traffic() {
            if yav.observe(&req).is_some() {
                events += 1;
            }
        }
        assert!(events > 0);
        let s = yav.ledger().summary();
        assert!(s.cleartext.is_positive());
        // Without a model every encrypted sighting is skipped.
        assert_eq!(s.encrypted_count, 0);
        assert!(yav.skipped_no_model() > 0);
    }

    #[test]
    fn drop_stats_account_for_every_discarded_url() {
        let mut yav = YourAdValue::new(None);
        let mut observed = 0u64;
        let requests = traffic();
        for req in &requests {
            if yav.observe(req).is_some() {
                observed += 1;
            }
        }
        let drops = yav.drop_stats();
        // The weblog is overwhelmingly ordinary traffic: every request is
        // either an event, an unvalued encrypted sighting, or a counted
        // drop — nothing vanishes silently.
        assert!(drops.not_notification > 0);
        assert_eq!(
            observed + yav.skipped_no_model() + drops.not_notification + drops.parse_error,
            requests.len() as u64
        );

        // A scheme-less string cannot even be parsed as a URL.
        let t = SimTime::from_ymd_hm(2015, 10, 1, 12, 0);
        assert!(yav.observe_url(t, "definitely not a url").is_none());
        // A known notification endpoint with the price stripped is
        // malformed payload, not ordinary traffic.
        assert!(yav
            .observe_url(t, "http://cpp.imp.mpx.mopub.com/imp?currency=USD")
            .is_none());
        let drops = yav.drop_stats();
        assert_eq!(drops.parse_error, 2);
    }

    #[test]
    fn model_unlocks_encrypted_estimation() {
        let pme = trained_pme();
        let mut yav = YourAdValue::new(Some(City::Madrid));
        assert!(yav.refresh_model(&pme));
        assert!(!yav.refresh_model(&pme), "same version: no reinstall");
        assert_eq!(yav.model_version(), 1);
        for req in traffic() {
            yav.observe(&req);
        }
        let s = yav.ledger().summary();
        assert!(s.encrypted_count > 0);
        assert!(s.encrypted_estimated.is_positive());
        assert_eq!(yav.skipped_no_model(), 0);
        assert!(s.total() > s.cleartext, "Eq. 1: total includes E_u");
    }

    #[test]
    fn contributions_flow_to_pme() {
        let pme = trained_pme();
        let mut yav = YourAdValue::new(None);
        yav.refresh_model(&pme);
        for req in traffic().into_iter().take(40_000) {
            yav.observe(&req);
        }
        let sent = yav.contribute_to(&pme);
        assert!(sent > 0);
        let (clear, enc) = pme.contribution_count();
        assert!(clear > 0);
        assert!(enc > 0);
        // Draining empties the buffer.
        assert_eq!(yav.take_contributions().len(), 0);
    }

    #[test]
    fn ordinary_traffic_is_ignored() {
        let mut yav = YourAdValue::new(None);
        assert!(yav
            .observe_url(SimTime::EPOCH, "http://www.example.com/page.html")
            .is_none());
        assert!(yav
            .observe_url(SimTime::EPOCH, "not a url at all")
            .is_none());
        assert!(yav.ledger().is_empty());
    }

    #[test]
    fn estimates_are_deterministic_per_context() {
        let pme = trained_pme();
        let mut a = YourAdValue::new(Some(City::Seville));
        let mut b = YourAdValue::new(Some(City::Seville));
        a.refresh_model(&pme);
        b.refresh_model(&pme);
        for req in traffic() {
            let ea = a.observe(&req);
            let eb = b.observe(&req);
            assert_eq!(ea, eb);
        }
    }
}
