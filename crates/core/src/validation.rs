//! ARPU validation (§6.3).
//!
//! The paper sanity-checks its per-user CPM totals by extrapolating to a
//! yearly dollar figure and comparing with the per-user ad revenue that
//! major platforms reported for 2015–2016 (Twitter ≈$7–8, Facebook
//! ≈$14–17). The extrapolation multiplies the panel-observed cost by a
//! chain of market factors, each an explicit, documented assumption.

use serde::{Deserialize, Serialize};

/// The §6.3 market-factor assumptions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarketFactors {
    /// Observed daily mobile time as a fraction of total mobile usage
    /// (paper: 2.65 h ≈ 83 % of average daily mobile internet time).
    pub mobile_time_coverage: f64,
    /// Mobile's share of total internet time (paper: ~51 %).
    pub mobile_share_of_internet: f64,
    /// HTTP's share of traffic (the proxy saw no HTTPS; paper: ~40 %).
    pub http_share: f64,
    /// Share of ad spend that reaches the RTB supply chain after
    /// intermediary costs (paper: ~55 % overhead ⇒ observed is 45 %...
    /// the paper divides the observed charge sum by this retention).
    pub rtb_cost_retention: f64,
    /// RTB's share of total online advertising (paper: ~20 %).
    pub rtb_share_of_advertising: f64,
}

impl MarketFactors {
    /// The paper's §6.3 values.
    pub fn paper() -> MarketFactors {
        MarketFactors {
            mobile_time_coverage: 0.83,
            mobile_share_of_internet: 0.51,
            http_share: 0.40,
            rtb_cost_retention: 0.45,
            rtb_share_of_advertising: 0.20,
        }
    }

    /// The combined extrapolation multiplier: observed panel cost →
    /// full-ecosystem yearly ad value of the user.
    pub fn multiplier(&self) -> f64 {
        1.0 / (self.mobile_time_coverage
            * self.mobile_share_of_internet
            * self.http_share
            * self.rtb_cost_retention
            * self.rtb_share_of_advertising)
    }
}

/// A dollar-ARPU estimate extrapolated from panel CPM totals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArpuEstimate {
    /// The 25th-percentile yearly cost observed in the panel (CPM).
    pub panel_p25_cpm: f64,
    /// The 75th-percentile yearly cost observed in the panel (CPM).
    pub panel_p75_cpm: f64,
    /// Extrapolated dollar range `(low, high)` per user-year.
    pub dollars: (f64, f64),
}

impl ArpuEstimate {
    /// Extrapolates from per-user yearly totals (CPM). The CPM totals
    /// are *already* dollar sums per mille: a user costing 25 CPM over a
    /// year generated $0.025 of observed RTB spend; the factor chain
    /// scales that to the whole ecosystem.
    pub fn extrapolate(user_totals_cpm: &[f64], factors: &MarketFactors) -> ArpuEstimate {
        let p25 = yav_stats::summary::quantile(user_totals_cpm, 0.25);
        let p75 = yav_stats::summary::quantile(user_totals_cpm, 0.75);
        let m = factors.multiplier();
        ArpuEstimate {
            panel_p25_cpm: p25,
            panel_p75_cpm: p75,
            dollars: (p25 / 1000.0 * m, p75 / 1000.0 * m),
        }
    }

    /// True when the range overlaps the paper's reference platforms
    /// (Twitter $7–8, Facebook $14–17) to within an order of magnitude —
    /// the paper's own validation criterion ("in the order of magnitude
    /// reported by major online advertising platforms").
    pub fn within_order_of_magnitude_of_platforms(&self) -> bool {
        let (lo, hi) = self.dollars;
        // Same order of magnitude as the $7–17 reference band.
        hi >= 0.7 && lo <= 170.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_factor_chain() {
        let f = MarketFactors::paper();
        // 0.83·0.51·0.40·0.45·0.20 ≈ 0.01524 ⇒ multiplier ≈ 65.6.
        assert!(
            (f.multiplier() - 65.6).abs() < 1.0,
            "multiplier {}",
            f.multiplier()
        );
    }

    #[test]
    fn paper_range_reproduced() {
        // §6.3: a user in the 8–102 CPM range maps to $0.54–6.85.
        let e = ArpuEstimate {
            panel_p25_cpm: 8.0,
            panel_p75_cpm: 102.0,
            dollars: (
                8.0 / 1000.0 * MarketFactors::paper().multiplier(),
                102.0 / 1000.0 * MarketFactors::paper().multiplier(),
            ),
        };
        assert!((e.dollars.0 - 0.54).abs() < 0.05, "low {}", e.dollars.0);
        assert!((e.dollars.1 - 6.85).abs() < 0.35, "high {}", e.dollars.1);
        assert!(e.within_order_of_magnitude_of_platforms());
    }

    #[test]
    fn extrapolate_uses_quartiles() {
        let totals: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let e = ArpuEstimate::extrapolate(&totals, &MarketFactors::paper());
        assert!((e.panel_p25_cpm - 25.75).abs() < 0.01);
        assert!((e.panel_p75_cpm - 75.25).abs() < 0.01);
        assert!(e.dollars.0 < e.dollars.1);
    }

    #[test]
    fn degenerate_panel() {
        let e = ArpuEstimate::extrapolate(&[50.0], &MarketFactors::paper());
        assert_eq!(e.panel_p25_cpm, 50.0);
        assert_eq!(e.panel_p75_cpm, 50.0);
    }
}
