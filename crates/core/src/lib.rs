//! **YourAdValue** — the paper's primary contribution (§3).
//!
//! A user-side tool that watches the device's HTTP traffic, filters RTB
//! winning-price notifications, tallies the readable charge prices,
//! estimates the encrypted ones with a PME-supplied decision-tree model,
//! and reports the cumulative amount advertisers have paid to reach the
//! user:
//!
//! ```text
//! V_u(T) = C_u(T) + E_u(T)                      (Eq. 1)
//! C_u(T) = Σ c_i,        i ∈ SC_u(T)            (Eq. 2)
//! E_u(T) = Σ ESe(S_i),   i ∈ SE_u(T)            (Eq. 3)
//! ```
//!
//! * [`monitor`] — the extension runtime: per-request observation,
//!   price-event production, model refresh against a [`yav_pme::Pme`],
//!   anonymous contribution batching;
//! * [`ledger`] — the browser-local storage: per-impression records,
//!   running sums, toolbar notifications, period queries;
//! * [`methodology`] — the offline driver of §6: applies the model and
//!   the time-shift correction to a whole analyzer report, producing the
//!   per-user cost accounts behind Figures 17–19;
//! * [`validation`] — the §6.3 extrapolation from panel CPM to dollar
//!   ARPU, with each market-factor assumption explicit.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ledger;
pub mod methodology;
pub mod monitor;
pub mod tenant;
pub mod validation;

pub use ledger::{CostSummary, Ledger, PriceEvent};
pub use methodology::{per_user_costs, UserCost};
pub use monitor::{DropStats, ObserveScratch, YourAdValue};
pub use tenant::{TenantReport, TenantState, TenantStore};
pub use validation::{ArpuEstimate, MarketFactors};
