//! Multi-tenant YourAdValue: one monitor process, many users.
//!
//! The single-user [`crate::YourAdValue`] models the browser extension:
//! one device, one ledger. The follow-up deployment (YourAdValue as a
//! service, PAPERS.md) runs the same sift/estimate pipeline over a
//! *multiplexed* stream carrying many users' traffic — an ISP vantage
//! point or a fleet of opted-in clients. [`TenantStore`] is that runtime:
//! a sharded per-user state store where each tenant accumulates only a
//! constant-size [`CostSummary`]-shaped total (no per-event ledger), so a
//! million concurrent tenants fit in memory that a thousand single-user
//! monitors would spend on ledgers alone.
//!
//! The pipeline reuses the exact pieces the single-user paths use —
//! [`crate::monitor::sift_request_priced`] for the zero-copy screen-first sift
//! and `CompiledForest::predict_batch` for valuing encrypted
//! notifications — so a tenant's totals are bit-identical to what a
//! dedicated [`crate::YourAdValue`] fed only that tenant's requests would
//! report (the tenant-equivalence test pins this).

use crate::ledger::CostSummary;
use crate::monitor::{sift_request_priced, DropStats, SiftDrop};
use yav_nurl::fields::PricePayload;

use yav_pme::model::{self, ClientModel};
use yav_types::{City, Cpm, UserId};
use yav_weblog::HttpRequest;

/// Tenants per internal store shard. Sharding is by `user % SHARDS` —
/// structural, so the shard a tenant lands in never depends on arrival
/// order or thread count.
pub const TENANT_SHARDS: usize = 64;

/// Internal buffer size of the push-style [`TenantStore::feed`] path:
/// requests accumulate to this many, then flush through one batched
/// observe (sift + one `predict_batch` + fold).
pub const TENANT_BATCH: usize = 4096;

/// Per-tenant accumulated state: the running totals a single-user
/// monitor's ledger summary would report, without the ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantState {
    /// The tenant's home city (model input when notifications carry no
    /// location), as registered.
    pub home: Option<City>,
    /// Sum of readable cleartext prices, `C_u`.
    pub cleartext: Cpm,
    /// Sum of model-estimated encrypted prices, `E_u`.
    pub encrypted_estimated: Cpm,
    /// Cleartext notifications seen.
    pub cleartext_count: u64,
    /// Encrypted notifications valued.
    pub encrypted_count: u64,
    /// Encrypted notifications seen with no model installed.
    pub skipped_no_model: u64,
}

impl TenantState {
    /// The tenant's totals in [`CostSummary`] form (what the single-user
    /// monitor's `ledger().summary()` reports).
    pub fn summary(&self) -> CostSummary {
        CostSummary {
            cleartext: self.cleartext,
            encrypted_estimated: self.encrypted_estimated,
            cleartext_count: self.cleartext_count,
            encrypted_count: self.encrypted_count,
        }
    }

    /// Total ad value attributed to this tenant, `V_u = C_u + E_u`.
    pub fn total(&self) -> Cpm {
        self.cleartext.saturating_add(self.encrypted_estimated)
    }
}

/// Number of log-2 buckets in the per-tenant total-cost histogram (one
/// per possible `i64` bit length, plus bucket 0 for zero/negative).
pub const COST_BUCKETS: usize = 64;

/// Fleet-level summary of a [`TenantStore`] (or a merge of many).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenants that saw at least one priced notification.
    pub users: u64,
    /// Priced notifications committed across the fleet.
    pub events: u64,
    /// Fleet-wide cost totals (sum of every tenant's summary).
    pub fleet: CostSummary,
    /// Log-2-bucketed histogram of per-tenant total cost in micro-CPM:
    /// bucket `b ≥ 1` holds tenants with `total ∈ [2^(b-1), 2^b)` µCPM,
    /// bucket 0 holds zero totals. The year-in-ads cost curve at fleet
    /// scale, in constant space.
    pub cost_hist: [u64; COST_BUCKETS],
    /// Encrypted sightings that could not be valued (no model).
    pub skipped_no_model: u64,
    /// Stream-level drop accounting (shared across tenants).
    pub drops: DropStats,
}

impl Default for TenantReport {
    fn default() -> TenantReport {
        TenantReport {
            users: 0,
            events: 0,
            fleet: CostSummary {
                cleartext: Cpm::ZERO,
                encrypted_estimated: Cpm::ZERO,
                cleartext_count: 0,
                encrypted_count: 0,
            },
            cost_hist: [0; COST_BUCKETS],
            skipped_no_model: 0,
            drops: DropStats::default(),
        }
    }
}

impl TenantReport {
    /// Folds another report in. Commutative and associative, so
    /// per-shard reports merge in any grouping to the same fleet view.
    pub fn merge(&mut self, other: &TenantReport) {
        self.users += other.users;
        self.events += other.events;
        self.fleet.cleartext = self.fleet.cleartext.saturating_add(other.fleet.cleartext);
        self.fleet.encrypted_estimated = self
            .fleet
            .encrypted_estimated
            .saturating_add(other.fleet.encrypted_estimated);
        self.fleet.cleartext_count += other.fleet.cleartext_count;
        self.fleet.encrypted_count += other.fleet.encrypted_count;
        for (a, b) in self.cost_hist.iter_mut().zip(&other.cost_hist) {
            *a += b;
        }
        self.skipped_no_model += other.skipped_no_model;
        self.drops.parse_error += other.drops.parse_error;
        self.drops.not_notification += other.drops.not_notification;
    }

    /// Approximate `q`-quantile of per-tenant total cost (CPM), read off
    /// the log histogram as the geometric midpoint of the bucket holding
    /// the quantile observation. `None` until a tenant has a total.
    pub fn quantile_total_cpm(&self, q: f64) -> Option<f64> {
        if self.users == 0 {
            return None;
        }
        let rank = ((self.users as f64 * q.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.cost_hist.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if b == 0 {
                    return Some(0.0);
                }
                let lo = (1u64 << (b - 1)) as f64;
                return Some(lo * std::f64::consts::SQRT_2 / 1_000_000.0);
            }
        }
        None
    }
}

/// Histogram bucket of a per-tenant total (micro-CPM).
fn cost_bucket(total: Cpm) -> usize {
    let micros = total.micros();
    if micros <= 0 {
        0
    } else {
        (64 - micros.leading_zeros() as usize).min(COST_BUCKETS - 1)
    }
}

/// Pre-resolved `monitor.tenant.*` telemetry handles.
#[derive(Debug, Clone)]
struct TenantMetrics {
    events: yav_telemetry::Counter,
    batches: yav_telemetry::Counter,
    rejected: yav_telemetry::Counter,
    predictions: yav_telemetry::Counter,
    tenants: yav_telemetry::Gauge,
}

impl Default for TenantMetrics {
    fn default() -> TenantMetrics {
        TenantMetrics {
            events: yav_telemetry::counter("monitor.tenant.events"),
            batches: yav_telemetry::counter("monitor.tenant.batches"),
            rejected: yav_telemetry::counter("monitor.tenant.rejected"),
            predictions: yav_telemetry::counter("monitor.tenant.predictions"),
            tenants: yav_telemetry::gauge("monitor.tenant.tenants"),
        }
    }
}

/// The multi-tenant monitor-state store.
///
/// The store does **not** own the estimation model: every observe call
/// borrows an optional [`ClientModel`]. A fleet shares one model, and at
/// 31 250 weblog shards an owned ~100 kB model clone per store would be
/// three gigabytes of copies.
#[derive(Debug, Default)]
pub struct TenantStore {
    /// Per-user state, sharded by `user % TENANT_SHARDS`. BTreeMaps so
    /// every iteration (the [`TenantStore::report`] fold) is in user
    /// order — deterministic regardless of arrival order.
    shards: Vec<std::collections::BTreeMap<u32, TenantState>>,
    /// Push-path staging slots, bounded by [`TENANT_BATCH`]. Slots are
    /// pooled: a flush resets `buf_len`, not the vector, so steady-state
    /// feeding copies into retained string capacity instead of cloning.
    // yav-lint: allow(stream-materialize) — bounded: flushed at TENANT_BATCH requests, never grows with the population
    buf: Vec<HttpRequest>,
    /// Live prefix of `buf` (slots past it hold reusable stale records).
    buf_len: usize,
    /// Stream-level drop accounting (drops are not attributable to a
    /// tenant: rejected URLs never reach user routing).
    drops: DropStats,
    /// Reusable sift/staging scratch.
    sift: crate::monitor::SiftScratch,
    rows: Vec<f64>,
    staged: Vec<(u32, Cpm)>,
    metrics: TenantMetrics,
}

impl TenantStore {
    /// An empty store.
    pub fn new() -> TenantStore {
        TenantStore {
            shards: vec![std::collections::BTreeMap::new(); TENANT_SHARDS],
            ..TenantStore::default()
        }
    }

    /// Registers a tenant's home city (model input). Unregistered
    /// tenants are created on first sight with no city.
    pub fn register(&mut self, user: UserId, home: City) {
        self.state_mut(user.0).home = Some(home);
    }

    /// Tenants currently holding state.
    pub fn tenant_count(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// A tenant's accumulated state, if it exists.
    // yav-lint: allow(boundary-escape) — single-tenant inspection hook for the simulator harness; exports go through summary()/take_contributions(), never this accessor (privacy-taint guards the exporters)
    pub fn tenant(&self, user: UserId) -> Option<&TenantState> {
        self.shards[user.0 as usize % TENANT_SHARDS].get(&user.0)
    }

    /// Stream-level drop accounting.
    pub fn drop_stats(&self) -> DropStats {
        self.drops
    }

    fn state_mut(&mut self, user: u32) -> &mut TenantState {
        if self.shards.is_empty() {
            self.shards = vec![std::collections::BTreeMap::new(); TENANT_SHARDS];
        }
        self.shards[user as usize % TENANT_SHARDS]
            .entry(user)
            .or_default()
    }

    /// Push-style ingestion: buffers the request and flushes through
    /// [`TenantStore::observe_batch`] every [`TENANT_BATCH`] requests.
    /// Call [`TenantStore::flush`] when the stream ends. Staging reuses
    /// pooled slots, so once every slot exists and has grown to the
    /// stream's line-length high-water mark, feeding allocates nothing.
    pub fn feed(&mut self, model: Option<&ClientModel>, req: &HttpRequest) {
        if self.buf_len < self.buf.len() {
            self.buf[self.buf_len].copy_from(req);
        } else {
            self.buf.push(req.clone());
        }
        self.buf_len += 1;
        if self.buf_len >= TENANT_BATCH {
            self.flush(model);
        }
    }

    /// Processes any buffered [`TenantStore::feed`] requests.
    pub fn flush(&mut self, model: Option<&ClientModel>) {
        if self.buf_len == 0 {
            return;
        }
        let buf = std::mem::take(&mut self.buf);
        self.observe_batch(model, &buf[..self.buf_len]);
        self.buf = buf;
        self.buf_len = 0;
    }

    /// Observes a multiplexed batch: requests from any mix of tenants,
    /// routed by `req.user`. Three passes, same shape as the single-user
    /// batch path: sift + stage (cleartext folds immediately), one
    /// `predict_batch` over every staged encrypted row, fold estimates.
    pub fn observe_batch(&mut self, model: Option<&ClientModel>, reqs: &[HttpRequest]) {
        let _trace = yav_trace::trace_span!("monitor.tenant_batch", reqs.len());
        self.metrics.batches.inc();
        let mut rows = std::mem::take(&mut self.rows);
        let mut staged = std::mem::take(&mut self.staged);
        rows.clear();
        staged.clear();

        // Pass 1: sift and route. Drops tally locally (same deferred-
        // flush discipline as the single-user batch path).
        let mut drop_parse_error = 0u64;
        let mut drop_not_notification = 0u64;
        let mut events = 0u64;
        // The estimator context is the sift's only allocating piece
        // (owned publisher string); it is only built when a model will
        // actually encode it, so the model-free fleet stays heap-quiet.
        let want_ctx = model.is_some();
        for req in reqs {
            let home = self.tenant(req.user).and_then(|t| t.home);
            let (price, ctx) = match sift_request_priced(home, req, &mut self.sift, want_ctx) {
                Ok(found) => found,
                Err(SiftDrop::ParseError) => {
                    drop_parse_error += 1;
                    continue;
                }
                Err(SiftDrop::NotNotification) => {
                    drop_not_notification += 1;
                    continue;
                }
            };
            events += 1;
            match price {
                PricePayload::Cleartext(price) => {
                    let t = self.state_mut(req.user.0);
                    t.cleartext = t.cleartext.saturating_add(price);
                    t.cleartext_count += 1;
                }
                PricePayload::Encrypted(_) => match model {
                    Some(m) => {
                        let ctx = ctx.expect("context built whenever a model is loaded");
                        model::encode_append(&ctx, m.with_publisher, &mut rows);
                        staged.push((req.user.0, Cpm::ZERO));
                    }
                    None => {
                        self.state_mut(req.user.0).skipped_no_model += 1;
                        events -= 1;
                    }
                },
            }
        }
        self.drops.parse_error += drop_parse_error;
        self.drops.not_notification += drop_not_notification;
        self.metrics
            .rejected
            .add(drop_parse_error + drop_not_notification);
        self.sift.tally.flush();

        // Pass 2: one batched forest traversal values every staged row.
        if !staged.is_empty() {
            if let Some(m) = model {
                let classes = m.compiled.predict_batch(&rows, m.compiled.n_features());
                for (slot, &class) in staged.iter_mut().zip(&classes) {
                    if let Some(&price) = m.class_prices.get(class) {
                        slot.1 = Cpm::from_f64(price);
                    }
                }
                self.metrics.predictions.add(staged.len() as u64);
            }
        }

        // Pass 3: fold estimates into their tenants, in request order.
        for &(user, amount) in &staged {
            let t = self.state_mut(user);
            t.encrypted_estimated = t.encrypted_estimated.saturating_add(amount);
            t.encrypted_count += 1;
        }
        self.metrics.events.add(events);
        self.metrics.tenants.set(self.tenant_count() as f64);

        self.rows = rows;
        self.staged = staged;
    }

    /// Summarises the fleet. Tenants are walked in user order (BTreeMap
    /// iteration), so the report is deterministic for any arrival order.
    pub fn report(&self) -> TenantReport {
        let mut report = TenantReport {
            drops: self.drops,
            ..TenantReport::default()
        };
        for shard in &self.shards {
            for t in shard.values() {
                let s = t.summary();
                if s.impressions() > 0 {
                    report.users += 1;
                    report.events += s.impressions();
                    report.cost_hist[cost_bucket(t.total())] += 1;
                }
                report.fleet.cleartext = report.fleet.cleartext.saturating_add(s.cleartext);
                report.fleet.encrypted_estimated = report
                    .fleet
                    .encrypted_estimated
                    .saturating_add(s.encrypted_estimated);
                report.fleet.cleartext_count += s.cleartext_count;
                report.fleet.encrypted_count += s.encrypted_count;
                report.skipped_no_model += t.skipped_no_model;
            }
        }
        report
    }

    /// Finishes the store: flushes any buffered requests and returns the
    /// fleet report, dropping all tenant state.
    pub fn finish(mut self, model: Option<&ClientModel>) -> TenantReport {
        self.flush(model);
        self.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::YourAdValue;
    use yav_auction::{Market, MarketConfig};
    use yav_campaign::Campaign;
    use yav_pme::engine::Pme;
    use yav_pme::model::TrainConfig;
    use yav_weblog::{PublisherUniverse, WeblogConfig, WeblogGenerator};

    fn client_model() -> ClientModel {
        let mut market = Market::new(MarketConfig::default());
        let universe = PublisherUniverse::build(0xD474, 300, 120);
        let rows = yav_campaign::execute(&mut market, &universe, &Campaign::a1().scaled(10)).rows;
        let pme = Pme::new();
        pme.train_from_campaign(&rows, &TrainConfig::quick());
        pme.current_model().expect("trained")
    }

    fn world() -> (yav_weblog::Weblog, WeblogGenerator) {
        let generator = WeblogGenerator::new(WeblogConfig::tiny());
        let mut market = Market::new(MarketConfig::default());
        let log = generator.collect(&mut market);
        (log, generator)
    }

    #[test]
    fn tenant_totals_match_dedicated_monitors() {
        let model = client_model();
        let (log, generator) = world();

        let mut store = TenantStore::new();
        for user in generator.panel().users() {
            store.register(user.id, user.home);
        }
        store.observe_batch(Some(&model), &log.requests);
        let report = store.report();
        assert!(report.users > 0);
        assert!(report.fleet.cleartext.is_positive());
        assert!(report.fleet.encrypted_count > 0);

        // A dedicated single-user monitor fed only one tenant's requests
        // reports exactly the tenant's totals.
        for user in generator.panel().users() {
            let mut solo = YourAdValue::new(Some(user.home));
            solo.install_model(model.clone());
            let mine: Vec<_> = log
                .requests
                .iter()
                .filter(|r| r.user == user.id)
                .cloned()
                .collect();
            for req in &mine {
                solo.observe(req);
            }
            let expected = solo.ledger().summary();
            let got = store.tenant(user.id).copied().unwrap_or_default().summary();
            assert_eq!(got, expected, "user {:?}", user.id);
        }
    }

    #[test]
    fn feed_chunking_is_invariant() {
        let model = client_model();
        let (log, generator) = world();
        let registered: Vec<_> = generator.panel().users().to_vec();

        let run = |chunk: usize| {
            let mut store = TenantStore::new();
            for u in &registered {
                store.register(u.id, u.home);
            }
            for batch in log.requests.chunks(chunk) {
                store.observe_batch(Some(&model), batch);
            }
            store.report()
        };
        let whole = run(log.requests.len());
        assert_eq!(run(1), whole);
        assert_eq!(run(333), whole);

        // The push path lands in the same place.
        let mut fed = TenantStore::new();
        for u in &registered {
            fed.register(u.id, u.home);
        }
        for req in &log.requests {
            fed.feed(Some(&model), req);
        }
        assert_eq!(fed.finish(Some(&model)), whole);
    }

    #[test]
    fn no_model_counts_skips_and_reports_merge() {
        let (log, _) = world();
        let mid = log.requests.len() / 2;

        let mut whole = TenantStore::new();
        whole.observe_batch(None, &log.requests);
        let whole = whole.report();
        assert!(whole.skipped_no_model > 0);
        assert_eq!(whole.fleet.encrypted_count, 0);

        let mut a = TenantStore::new();
        a.observe_batch(None, &log.requests[..mid]);
        let mut b = TenantStore::new();
        b.observe_batch(None, &log.requests[mid..]);
        let mut merged = b.report();
        merged.merge(&a.report());
        // Fleet sums and drops are exact under any split; per-user
        // buckets are too when users do not straddle the split, which a
        // user-major tiny log satisfies for almost all users — compare
        // the commutative fields.
        assert_eq!(merged.fleet.cleartext, whole.fleet.cleartext);
        assert_eq!(merged.fleet.cleartext_count, whole.fleet.cleartext_count);
        assert_eq!(merged.skipped_no_model, whole.skipped_no_model);
        assert_eq!(merged.drops, whole.drops);
        assert_eq!(merged.events, whole.events);
    }

    #[test]
    fn quantiles_read_off_the_log_histogram() {
        let mut report = TenantReport::default();
        assert_eq!(report.quantile_total_cpm(0.5), None);
        report.users = 3;
        report.cost_hist[0] = 1; // a zero-total tenant
        report.cost_hist[21] = 2; // ~1–2 CPM (2^20..2^21 µCPM)
        let median = report.quantile_total_cpm(0.5).unwrap();
        assert!(median > 1.0 && median < 2.1, "median {median}");
        assert_eq!(report.quantile_total_cpm(0.0).unwrap(), 0.0);
    }
}
