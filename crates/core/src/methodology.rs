//! The §6 methodology driver: per-user cost accounting over dataset D.
//!
//! Given the analyzer's detections, a trained client model and the §6.2
//! time-shift correction, this module produces the per-user cost accounts
//! behind the paper's headline results: Figure 17 (cumulative cost CDFs),
//! Figure 18 (total cleartext vs total estimated encrypted cost per user)
//! and Figure 19 (average prices per impression per user).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use yav_analyzer::DetectedImpression;
use yav_pme::model::{ClientModel, CoreContext};
use yav_pme::timeshift::TimeShift;
use yav_types::{Cpm, PriceVisibility, UserId};

/// One user's cost account over the analysis period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserCost {
    /// The user.
    pub user: UserId,
    /// Sum of readable cleartext prices, `C_u(T)`.
    pub cleartext: Cpm,
    /// The same sum with the §6.2 time-shift correction applied.
    pub cleartext_corrected: Cpm,
    /// Sum of model-estimated encrypted prices, `E_u(T)`.
    pub encrypted_estimated: Cpm,
    /// Cleartext impressions observed.
    pub cleartext_count: u64,
    /// Encrypted impressions observed.
    pub encrypted_count: u64,
}

impl UserCost {
    /// `V_u(T)` with the raw cleartext sum.
    pub fn total(&self) -> Cpm {
        self.cleartext.saturating_add(self.encrypted_estimated)
    }

    /// `V_u(T)` with the time-corrected cleartext sum (the Figure-17
    /// "total" series).
    pub fn total_corrected(&self) -> Cpm {
        self.cleartext_corrected
            .saturating_add(self.encrypted_estimated)
    }

    /// Average cleartext price per impression (NaN when none).
    pub fn avg_cleartext(&self) -> f64 {
        if self.cleartext_count == 0 {
            f64::NAN
        } else {
            self.cleartext.as_f64() / self.cleartext_count as f64
        }
    }

    /// Average estimated encrypted price per impression (NaN when none).
    pub fn avg_encrypted(&self) -> f64 {
        if self.encrypted_count == 0 {
            f64::NAN
        } else {
            self.encrypted_estimated.as_f64() / self.encrypted_count as f64
        }
    }
}

/// Runs Equations 1–3 over a detection list: tallies cleartext, estimates
/// encrypted with `model`, applies `shift` to the cleartext side, and
/// returns one account per user (sorted by user id).
pub fn per_user_costs(
    detections: &[DetectedImpression],
    model: &ClientModel,
    shift: &TimeShift,
) -> Vec<UserCost> {
    let mut accounts: BTreeMap<UserId, UserCost> = BTreeMap::new();
    for det in detections {
        let account = accounts.entry(det.user).or_insert(UserCost {
            user: det.user,
            cleartext: Cpm::ZERO,
            cleartext_corrected: Cpm::ZERO,
            encrypted_estimated: Cpm::ZERO,
            cleartext_count: 0,
            encrypted_count: 0,
        });
        match det.visibility {
            PriceVisibility::Cleartext => {
                let price = det.cleartext_cpm.unwrap_or(Cpm::ZERO);
                account.cleartext = account.cleartext.saturating_add(price);
                account.cleartext_corrected = account
                    .cleartext_corrected
                    .saturating_add(Cpm::from_f64(shift.correct(price.as_f64())));
                account.cleartext_count += 1;
            }
            PriceVisibility::Encrypted => {
                let estimate = model.estimate(&CoreContext::from(det));
                account.encrypted_estimated = account.encrypted_estimated.saturating_add(estimate);
                account.encrypted_count += 1;
            }
        }
    }
    accounts.into_values().collect()
}

/// Summary statistics over a population of user accounts — the §6.2
/// numbers (median user cost, share under 100 CPM, the uplift from
/// encrypted estimates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationSummary {
    /// Number of users with at least one detection.
    pub users: usize,
    /// Median total cost (CPM).
    pub median_total: f64,
    /// Fraction of users whose yearly total stays under 100 CPM.
    pub under_100_cpm: f64,
    /// Mean relative uplift of total over cleartext-only cost, among
    /// users with encrypted impressions (the "~55 %" of §6.2).
    pub encrypted_uplift: f64,
    /// Fraction of users in the extreme 1 000+ CPM tail.
    pub tail_1000: f64,
}

impl PopulationSummary {
    /// Computes the summary (corrected totals).
    pub fn of(costs: &[UserCost]) -> PopulationSummary {
        let totals: Vec<f64> = costs.iter().map(|c| c.total_corrected().as_f64()).collect();
        let median_total = yav_stats::summary::median(&totals);
        let under_100 =
            totals.iter().filter(|&&t| t < 100.0).count() as f64 / totals.len().max(1) as f64;
        let tail_1000 =
            totals.iter().filter(|&&t| t >= 1000.0).count() as f64 / totals.len().max(1) as f64;
        let uplifts: Vec<f64> = costs
            .iter()
            .filter(|c| c.encrypted_count > 0 && c.cleartext_corrected.is_positive())
            .map(|c| c.encrypted_estimated.as_f64() / c.cleartext_corrected.as_f64())
            .collect();
        let encrypted_uplift = if uplifts.is_empty() {
            0.0
        } else {
            uplifts.iter().sum::<f64>() / uplifts.len() as f64
        };
        PopulationSummary {
            users: costs.len(),
            median_total,
            under_100_cpm: under_100,
            encrypted_uplift,
            tail_1000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_auction::{Market, MarketConfig};
    use yav_campaign::Campaign;
    use yav_pme::engine::Pme;
    use yav_pme::model::TrainConfig;
    use yav_weblog::{PublisherUniverse, WeblogConfig, WeblogGenerator};

    struct Fixture {
        costs: Vec<UserCost>,
        truth: Vec<yav_weblog::GroundTruth>,
    }

    fn fixture() -> Fixture {
        let generator = WeblogGenerator::new(WeblogConfig::tiny());
        let mut market = Market::new(MarketConfig::default());
        let mut analyzer = yav_analyzer::WeblogAnalyzer::new();
        let mut truth = Vec::new();
        generator.run(
            &mut market,
            |req| {
                analyzer.ingest(&req);
            },
            |t| truth.push(t),
        );
        let report = analyzer.finish();

        let universe = PublisherUniverse::build(0xD474, 300, 120);
        let rows = yav_campaign::execute(&mut market, &universe, &Campaign::a1().scaled(15)).rows;
        let pme = Pme::new();
        pme.train_from_campaign(&rows, &TrainConfig::quick());
        let model = pme.current_model().unwrap();
        let shift = TimeShift::fit(&[1.0], &[1.0]); // neutral for the test
        Fixture {
            costs: per_user_costs(&report.detections, &model, &shift),
            truth,
        }
    }

    #[test]
    fn accounts_cover_all_detected_users() {
        let fx = fixture();
        let truth_users: std::collections::HashSet<UserId> =
            fx.truth.iter().map(|t| t.user).collect();
        assert_eq!(fx.costs.len(), truth_users.len());
        for c in &fx.costs {
            assert!(c.cleartext_count + c.encrypted_count > 0);
            assert_eq!(c.total(), c.cleartext + c.encrypted_estimated);
        }
    }

    #[test]
    fn cleartext_sums_match_ground_truth_exactly() {
        let fx = fixture();
        let mut expected: BTreeMap<UserId, Cpm> = BTreeMap::new();
        for t in &fx.truth {
            if t.visibility == PriceVisibility::Cleartext {
                let e = expected.entry(t.user).or_insert(Cpm::ZERO);
                *e = e.saturating_add(t.charge);
            }
        }
        for c in &fx.costs {
            assert_eq!(
                c.cleartext,
                expected.get(&c.user).copied().unwrap_or(Cpm::ZERO),
                "user {:?}",
                c.user
            );
        }
    }

    #[test]
    fn encrypted_estimates_track_truth_in_aggregate() {
        let fx = fixture();
        let est_total: f64 = fx
            .costs
            .iter()
            .map(|c| c.encrypted_estimated.as_f64())
            .sum();
        let true_total: f64 = fx
            .truth
            .iter()
            .filter(|t| t.visibility == PriceVisibility::Encrypted)
            .map(|t| t.charge.as_f64())
            .sum();
        let ratio = est_total / true_total;
        // The class-based estimator is structurally conservative on
        // aggregate sums: whale users (§2.1's high-value outliers) carry
        // most of the true encrypted spend, but the probing campaign's
        // max-bid safeguard keeps their impressions out of the training
        // data, and the §5.4 feature set has no user-value signal to
        // recover them. The band is wide on purpose — it catches a
        // broken estimator (ratio near 0 or wildly high), not tail
        // sampling noise.
        assert!(
            (0.1..=2.0).contains(&ratio),
            "aggregate estimated/true encrypted ratio {ratio:.2}"
        );
    }

    #[test]
    fn time_shift_scales_cleartext_only() {
        let fx = fixture();
        // Re-run with a 1.3× shift and compare.
        let generator = WeblogGenerator::new(WeblogConfig::tiny());
        let mut market = Market::new(MarketConfig::default());
        let mut analyzer = yav_analyzer::WeblogAnalyzer::new();
        generator.run(
            &mut market,
            |req| {
                analyzer.ingest(&req);
            },
            |_| {},
        );
        let report = analyzer.finish();
        let universe = PublisherUniverse::build(0xD474, 300, 120);
        let rows = yav_campaign::execute(&mut market, &universe, &Campaign::a1().scaled(15)).rows;
        let pme = Pme::new();
        pme.train_from_campaign(&rows, &TrainConfig::quick());
        let model = pme.current_model().unwrap();
        let shifted = per_user_costs(&report.detections, &model, &TimeShift::fit(&[1.0], &[1.3]));
        for (a, b) in fx.costs.iter().zip(&shifted) {
            assert_eq!(a.user, b.user);
            assert_eq!(a.encrypted_estimated, b.encrypted_estimated);
            if a.cleartext.is_positive() {
                let ratio = b.cleartext_corrected.as_f64() / a.cleartext.as_f64();
                assert!((ratio - 1.3).abs() < 0.01, "ratio {ratio}");
            }
        }
    }

    #[test]
    fn population_summary_shape() {
        let fx = fixture();
        let s = PopulationSummary::of(&fx.costs);
        assert_eq!(s.users, fx.costs.len());
        assert!(s.median_total > 0.0);
        assert!((0.0..=1.0).contains(&s.under_100_cpm));
        assert!((0.0..=1.0).contains(&s.tail_1000));
        assert!(s.encrypted_uplift >= 0.0);
    }
}
