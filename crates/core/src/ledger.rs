//! Browser-local storage for YourAdValue.
//!
//! The extension stores every filtered charge price, the estimations for
//! encrypted ones, and relevant auction metadata in the browser's local
//! storage (§3.3); the toolbar shows running totals and per-price
//! notifications on request. [`Ledger`] is that store.

use serde::{Deserialize, Serialize};
use yav_types::{Adx, Cpm, PriceVisibility, SimTime};

/// One detected charge-price event, as stored locally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceEvent {
    /// When the notification fired.
    pub time: SimTime,
    /// The exchange it came from.
    pub adx: Adx,
    /// How the price arrived.
    pub visibility: PriceVisibility,
    /// The price: read directly (cleartext) or estimated (encrypted).
    pub amount: Cpm,
    /// True when `amount` is a model estimate rather than a read value.
    pub estimated: bool,
}

/// Cumulative cost summary over a queried period — what the toolbar
/// popup renders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostSummary {
    /// Sum of readable (cleartext) charge prices, `C_u(T)`.
    pub cleartext: Cpm,
    /// Sum of estimated encrypted charge prices, `E_u(T)`.
    pub encrypted_estimated: Cpm,
    /// Number of cleartext notifications.
    pub cleartext_count: u64,
    /// Number of encrypted notifications.
    pub encrypted_count: u64,
}

impl CostSummary {
    /// The total `V_u(T) = C_u(T) + E_u(T)` (Eq. 1).
    pub fn total(&self) -> Cpm {
        self.cleartext.saturating_add(self.encrypted_estimated)
    }

    /// Total notifications in the period.
    pub fn impressions(&self) -> u64 {
        self.cleartext_count + self.encrypted_count
    }
}

/// The local event store.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Ledger {
    events: Vec<PriceEvent>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    /// Appends one event.
    pub fn push(&mut self, event: PriceEvent) {
        self.events.push(event);
    }

    /// All stored events, oldest first.
    pub fn events(&self) -> &[PriceEvent] {
        &self.events
    }

    /// Number of stored events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been detected yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Summary over the whole history.
    pub fn summary(&self) -> CostSummary {
        self.summary_between(
            SimTime::from_minutes(i64::MIN),
            SimTime::from_minutes(i64::MAX),
        )
    }

    /// Summary over `[from, to)`.
    pub fn summary_between(&self, from: SimTime, to: SimTime) -> CostSummary {
        let mut s = CostSummary {
            cleartext: Cpm::ZERO,
            encrypted_estimated: Cpm::ZERO,
            cleartext_count: 0,
            encrypted_count: 0,
        };
        for e in &self.events {
            if e.time < from || e.time >= to {
                continue;
            }
            match e.visibility {
                PriceVisibility::Cleartext => {
                    s.cleartext = s.cleartext.saturating_add(e.amount);
                    s.cleartext_count += 1;
                }
                PriceVisibility::Encrypted => {
                    s.encrypted_estimated = s.encrypted_estimated.saturating_add(e.amount);
                    s.encrypted_count += 1;
                }
            }
        }
        s
    }

    /// The most recent events, newest first — the toolbar's "previous
    /// individual charge prices" view.
    pub fn recent(&self, n: usize) -> Vec<&PriceEvent> {
        self.events.iter().rev().take(n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(day: i64, visibility: PriceVisibility, cpm: f64) -> PriceEvent {
        PriceEvent {
            time: SimTime::EPOCH.plus_days(day),
            adx: Adx::MoPub,
            visibility,
            amount: Cpm::from_f64(cpm),
            estimated: visibility == PriceVisibility::Encrypted,
        }
    }

    #[test]
    fn sums_split_by_visibility() {
        let mut ledger = Ledger::new();
        ledger.push(event(1, PriceVisibility::Cleartext, 0.5));
        ledger.push(event(2, PriceVisibility::Cleartext, 1.0));
        ledger.push(event(3, PriceVisibility::Encrypted, 2.0));
        let s = ledger.summary();
        assert_eq!(s.cleartext, Cpm::from_f64(1.5));
        assert_eq!(s.encrypted_estimated, Cpm::from_f64(2.0));
        assert_eq!(s.total(), Cpm::from_f64(3.5));
        assert_eq!(s.impressions(), 3);
        assert_eq!(s.cleartext_count, 2);
    }

    #[test]
    fn period_queries_are_half_open() {
        let mut ledger = Ledger::new();
        for day in 0..10 {
            ledger.push(event(day, PriceVisibility::Cleartext, 1.0));
        }
        let s = ledger.summary_between(SimTime::EPOCH.plus_days(2), SimTime::EPOCH.plus_days(5));
        assert_eq!(s.cleartext_count, 3);
        assert_eq!(s.cleartext, Cpm::from_whole(3));
    }

    #[test]
    fn recent_is_newest_first() {
        let mut ledger = Ledger::new();
        for day in 0..5 {
            ledger.push(event(day, PriceVisibility::Cleartext, day as f64));
        }
        let recent = ledger.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].amount, Cpm::from_f64(4.0));
        assert_eq!(recent[1].amount, Cpm::from_f64(3.0));
    }

    #[test]
    fn empty_ledger() {
        let ledger = Ledger::new();
        assert!(ledger.is_empty());
        assert_eq!(ledger.summary().total(), Cpm::ZERO);
        assert!(ledger.recent(3).is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let mut ledger = Ledger::new();
        ledger.push(event(1, PriceVisibility::Encrypted, 1.25));
        let json = serde_json::to_string(&ledger).unwrap();
        let back: Ledger = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ledger);
    }
}
