//! Hostile-input regression suite for the monitor's nURL path.
//!
//! The paper's client (§6) runs against whatever the network hands it:
//! truncated responses, middlebox-mangled URLs, plain garbage. The
//! monitor must never panic on such input, and every fed URL must land
//! in exactly one accounting bucket — a stored event, an unvalued
//! encrypted sighting, or a counted drop.

use yav_core::YourAdValue;
use yav_crypto::{PriceCrypter, PriceKeys};
use yav_nurl::fields::PricePayload;
use yav_nurl::NurlFields;
use yav_types::{Adx, AuctionId, Cpm, DspId, ImpressionId, SimTime};

fn t() -> SimTime {
    SimTime::from_ymd_hm(2015, 6, 15, 12, 0)
}

/// One valid emission per exchange and price visibility.
fn valid_emissions() -> Vec<String> {
    let crypter = PriceCrypter::new(PriceKeys::derive("malformed-nurls"));
    let mut out = Vec::new();
    for (i, &adx) in Adx::ALL.iter().enumerate() {
        let clear = PricePayload::Cleartext(Cpm::from_f64(0.25 + i as f64 / 100.0));
        let token = crypter.encrypt(1_000_000 + i as u64, [i as u8; 16]);
        let enc = PricePayload::Encrypted(token);
        for price in [clear, enc] {
            let fields = NurlFields::minimal(
                adx,
                DspId(i as u32),
                price,
                ImpressionId(i as u64),
                AuctionId(i as u64 + 1000),
            );
            out.push(yav_nurl::emit(&fields).to_string());
        }
    }
    out
}

/// Feeds `urls` through a fresh monitor and asserts the accounting
/// identity: nothing vanishes, nothing double-counts, nothing panics.
fn feed_and_check(urls: &[String]) {
    let mut yav = YourAdValue::new(None);
    let mut events = 0u64;
    for url in urls {
        if yav.observe_url(t(), url).is_some() {
            events += 1;
        }
    }
    let drops = yav.drop_stats();
    assert_eq!(
        events + yav.skipped_no_model() + drops.parse_error + drops.not_notification,
        urls.len() as u64,
        "every fed URL must land in exactly one bucket"
    );
}

#[test]
fn every_prefix_truncation_is_survivable() {
    let mut fed = Vec::new();
    for url in valid_emissions() {
        assert!(url.is_ascii(), "emitter output is ASCII; slicing is safe");
        for len in 0..=url.len() {
            fed.push(url[..len].to_owned());
        }
    }
    feed_and_check(&fed);
}

#[test]
fn every_single_byte_corruption_is_survivable() {
    let mut fed = Vec::new();
    for url in valid_emissions() {
        let bytes = url.as_bytes();
        for pos in 0..bytes.len() {
            for garbage in [b'%', b'?', b'=', b'&', b' ', b'\0', b'~'] {
                if bytes[pos] == garbage {
                    continue;
                }
                let mut mutated = bytes.to_vec();
                mutated[pos] = garbage;
                fed.push(String::from_utf8(mutated).expect("ASCII stays UTF-8"));
            }
        }
    }
    feed_and_check(&fed);
}

#[test]
fn garbage_strings_are_survivable() {
    let fed: Vec<String> = [
        "",
        " ",
        "http://",
        "https://",
        "http:///",
        "http://:80/",
        "http://cpp.imp.mpx.mopub.com",
        "http://cpp.imp.mpx.mopub.com/imp?",
        "http://cpp.imp.mpx.mopub.com/imp?%",
        "http://cpp.imp.mpx.mopub.com/imp?%zz=1",
        "http://cpp.imp.mpx.mopub.com/imp?charge_price=",
        "http://cpp.imp.mpx.mopub.com/imp?charge_price=%GG",
        "http://cpp.imp.mpx.mopub.com/imp?charge_price=NaN",
        "http://cpp.imp.mpx.mopub.com/imp?charge_price=-1e309",
        "ftp://cpp.imp.mpx.mopub.com/imp?charge_price=0.5",
        "not a url at all",
        "héllo wörld 🦀",
        "%%%%%%%%",
        "\0\0\0",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain(std::iter::once(format!(
        "http://cpp.imp.mpx.mopub.com/imp?charge_price=0.5&pad={}",
        "x".repeat(1 << 16)
    )))
    .collect();
    feed_and_check(&fed);
}

#[test]
fn valid_emissions_are_all_detected() {
    let urls = valid_emissions();
    let mut yav = YourAdValue::new(None);
    let mut events = 0u64;
    for url in &urls {
        if yav.observe_url(t(), url).is_some() {
            events += 1;
        }
    }
    // No model installed: cleartext halves become events, encrypted
    // halves are counted-but-unvalued sightings. Nothing is dropped.
    assert_eq!(events, Adx::ALL.len() as u64);
    assert_eq!(yav.skipped_no_model(), Adx::ALL.len() as u64);
    assert_eq!(yav.drop_stats(), yav_core::DropStats::default());
}
