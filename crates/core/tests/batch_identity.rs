//! `observe_batch` ⇄ serial `observe` bit-identity.
//!
//! The batch path restructures the work — shared URL scratch, a staged
//! feature matrix, one level-synchronous forest traversal — but it is a
//! pure throughput optimisation: every observable side effect must be
//! byte-for-byte what the serial loop produces. This suite pins that
//! over real generated traffic and the hostile corpus, with and without
//! an installed model, across batch-boundary placements.

use yav_core::YourAdValue;
use yav_pme::engine::Pme;
use yav_pme::model::TrainConfig;
use yav_types::{City, SimTime};
use yav_weblog::{HttpRequest, PublisherUniverse, WeblogConfig, WeblogGenerator};

fn trained_pme() -> Pme {
    let mut market = yav_auction::Market::new(yav_auction::MarketConfig::default());
    let universe = PublisherUniverse::build(0xD474, 300, 120);
    let rows = yav_campaign::execute(
        &mut market,
        &universe,
        &yav_campaign::Campaign::a1().scaled(10),
    )
    .rows;
    let pme = Pme::new();
    pme.train_from_campaign(&rows, &TrainConfig::quick());
    pme
}

fn traffic() -> Vec<HttpRequest> {
    let generator = WeblogGenerator::new(WeblogConfig::tiny());
    let mut market = yav_auction::Market::new(yav_auction::MarketConfig::default());
    generator.collect(&mut market).requests
}

/// Runs the same requests serially through one monitor and batched
/// through another, and asserts every externally visible piece of state
/// is identical.
fn assert_identical(requests: &[HttpRequest], model: Option<&Pme>, chunk: usize) {
    let mut serial = YourAdValue::new(Some(City::Madrid));
    let mut batched = YourAdValue::new(Some(City::Madrid));
    if let Some(pme) = model {
        assert!(serial.refresh_model(pme));
        assert!(batched.refresh_model(pme));
    }

    let mut serial_events = Vec::new();
    for req in requests {
        if let Some(e) = serial.observe(req) {
            serial_events.push(e);
        }
    }
    let mut batch_events = Vec::new();
    for chunk in requests.chunks(chunk) {
        batch_events.extend(batched.observe_batch(chunk));
    }

    assert_eq!(serial_events, batch_events, "returned event streams");
    assert_eq!(serial.ledger(), batched.ledger(), "ledger contents");
    assert_eq!(serial.drop_stats(), batched.drop_stats(), "drop accounting");
    assert_eq!(
        serial.skipped_no_model(),
        batched.skipped_no_model(),
        "unvalued encrypted sightings"
    );
    assert_eq!(
        serial.take_contributions(),
        batched.take_contributions(),
        "pending contribution batches"
    );
}

#[test]
fn batch_matches_serial_without_model() {
    let requests = traffic();
    assert_identical(&requests, None, 1024);
}

#[test]
fn batch_matches_serial_with_model() {
    let pme = trained_pme();
    let requests = traffic();
    // Batch boundaries must not matter: one request per batch degenerates
    // to the serial path; odd sizes split prediction blocks unevenly; one
    // giant batch exercises the block loop.
    for chunk in [1, 7, 333, usize::MAX] {
        assert_identical(&requests[..40_000.min(requests.len())], Some(&pme), chunk);
    }
    assert_identical(&requests, Some(&pme), 4096);
}

#[test]
fn batch_matches_serial_on_hostile_corpus() {
    let t = SimTime::from_ymd_hm(2015, 6, 15, 12, 0);
    let requests: Vec<HttpRequest> = [
        "",
        "http://",
        "http:///path",
        "http://ex ample.com/",
        "http://cpp.imp.mpx.mopub.com/imp?%zz=1",
        "http://cpp.imp.mpx.mopub.com/imp?currency=USD",
        "http://cpp.imp.mpx.mopub.com/imp?charge_price=0.95&currency=USD",
        "http://www.example.com/page.html",
        "not a url at all",
        "héllo wörld 🦀",
    ]
    .iter()
    .map(|u| HttpRequest::bare(t, *u))
    .collect();
    let pme = trained_pme();
    assert_identical(&requests, None, 3);
    assert_identical(&requests, Some(&pme), 3);
}

#[test]
fn world_output_is_simd_tier_independent() {
    // The whole ingest path — scans, HMAC, forest partition — dispatches
    // through yav-simd. Forcing each tier in turn must leave every
    // externally visible piece of monitor state bit-identical; this is
    // the end-to-end form of the per-kernel cross_impl guarantees (and
    // what makes `YAV_SIMD=off` a pure performance switch).
    let pme = trained_pme();
    let requests = traffic();
    let requests = &requests[..20_000.min(requests.len())];
    let levels: Vec<yav_simd::Level> = yav_simd::Level::all()
        .iter()
        .copied()
        .filter(|l| l.available())
        .collect();
    let mut monitors = Vec::new();
    for &lvl in &levels {
        yav_simd::force_level(Some(lvl));
        let mut yav = YourAdValue::new(Some(City::Madrid));
        assert!(yav.refresh_model(&pme));
        let mut events = Vec::new();
        for chunk in requests.chunks(2048) {
            events.extend(yav.observe_batch(chunk));
        }
        monitors.push((lvl, yav, events));
    }
    yav_simd::force_level(None);
    let mut tail = monitors.split_off(1);
    let (_, base, base_events) = &mut monitors[0];
    let base_contributions = base.take_contributions();
    for (lvl, yav, events) in &mut tail {
        assert_eq!(events, base_events, "{lvl:?} event stream");
        assert_eq!(yav.ledger(), base.ledger(), "{lvl:?} ledger");
        assert_eq!(yav.drop_stats(), base.drop_stats(), "{lvl:?} drops");
        assert_eq!(
            yav.take_contributions(),
            base_contributions,
            "{lvl:?} contributions"
        );
    }
}

#[test]
fn empty_batch_is_a_no_op() {
    let mut yav = YourAdValue::new(None);
    assert!(yav.observe_batch(&[]).is_empty());
    assert!(yav.ledger().is_empty());
    assert_eq!(yav.drop_stats(), yav_core::DropStats::default());
}
