//! Zero-allocation reject path, proven with a counting allocator.
//!
//! The monitor observes *every* HTTP request the device makes, and in
//! real traffic ~95%+ of those are ordinary requests the nURL screen
//! rejects. The zero-copy pipeline's contract is that this overwhelming
//! path never touches the heap: `UrlRef::parse` borrows subslices of
//! the raw string and the exchange-host screen compares in place. This
//! test swaps in a counting global allocator and asserts the count is
//! exactly zero across the reject path — both at the parser layer and
//! through `YourAdValue::observe` / `observe_batch`.
//!
//! This file deliberately holds a single `#[test]`, and the counter is
//! thread-local: the libtest harness's main thread shares this
//! process's allocator and may allocate (output bookkeeping) while the
//! test thread is inside a measured region, so a process-global count
//! is flaky under load. The contract being proven is about the calling
//! thread's code path, which the thread-local count measures exactly.
//! (Integration tests are separate crates, so the `unsafe` allocator
//! impl lives outside the workspace's `forbid(unsafe_code)` library
//! crates.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use yav_core::YourAdValue;
use yav_nurl::UrlRef;
use yav_types::SimTime;
use yav_weblog::HttpRequest;

/// Counts every allocation and reallocation made by the current
/// thread, then delegates to the system allocator.
struct CountingAlloc;

thread_local! {
    // Const-initialized so the first access inside `alloc` itself never
    // allocates; `try_with` so TLS teardown can't recurse into a panic.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

#[test]
fn reject_path_never_allocates() {
    // Everything the measured region needs is built up front: request
    // strings, the monitor, and its lazily resolved telemetry handles
    // (warmed by a throwaway observe of each request).
    let t = SimTime::from_ymd_hm(2015, 10, 1, 12, 0);
    let rejects: Vec<HttpRequest> = [
        // Ordinary traffic: non-exchange hosts, path/query shapes alike.
        "http://www.example.com/page.html",
        "https://cdn.fastassets.example/lib/app.js?v=123",
        "http://api.dailynoticias7.example/feed?page=2&utm_source=x",
        "https://metricsrus.example/collect?sid=abc%20def&ev=pv",
        // Garbage that cannot parse at all.
        "not a url at all",
        "",
        "ftp://cpp.imp.mpx.mopub.com/imp?charge_price=0.5",
        // Structurally invalid hosts.
        "http://ex ample.com/",
        "http:///path",
    ]
    .iter()
    .map(|u| HttpRequest::bare(t, *u))
    .collect();

    // Warm the SIMD dispatch before measuring: the one-time level probe
    // reads the `YAV_SIMD` env var, and `std::env::var` allocates when
    // the variable is set. The contract is about steady state.
    let _ = yav_simd::level();

    // Parser layer: borrowed parse + host inspection is allocation-free
    // on every input, accepted or rejected.
    let parsed = allocations(|| {
        for req in &rejects {
            if let Ok(url) = UrlRef::parse(&req.url) {
                assert!(yav_nurl::exchange_host(url.host_raw()).is_none());
            }
        }
    });
    assert_eq!(parsed, 0, "UrlRef reject path allocated");

    // Monitor layer: after one warmup pass (telemetry handle resolution
    // happens at construction; DropStats are plain integers), observing
    // any number of reject-path requests performs zero allocations.
    let mut yav = YourAdValue::new(None);
    for req in &rejects {
        assert!(yav.observe(req).is_none());
    }
    let observed = allocations(|| {
        for _ in 0..64 {
            for req in &rejects {
                yav.observe(req);
            }
        }
    });
    assert_eq!(observed, 0, "observe() reject path allocated");

    // The batch path allocates only its returned event vector — which is
    // empty and therefore allocation-free for an all-reject batch.
    let batched = allocations(|| {
        for _ in 0..64 {
            assert!(yav.observe_batch(&rejects).is_empty());
        }
    });
    assert_eq!(batched, 0, "observe_batch() reject path allocated");
}
