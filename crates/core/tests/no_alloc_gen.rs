//! Zero-allocation steady-state window loop, proven with a counting
//! allocator.
//!
//! The streaming world builder's inner loop is generate → auction →
//! analyze → monitor, repeated per event for the whole simulated year.
//! This test pins the PR-10 contract that the loop is heap-quiet once
//! warm: per-*shard* setup (a `ShardScratch`, telemetry handle
//! resolution, staging-slot high-water growth, first-sight aggregate
//! keys) may allocate, but per-*event* work must not.
//!
//! Three measurements, one per pipeline stage:
//!
//! 1. **Generator + market** — the same warmed market is run over a
//!    16-user slice and over the full 48-user panel. Users draw from
//!    independent per-user RNG streams, so tripling the event volume
//!    only repeats per-event work; the allocation counts must be
//!    *equal* (they are the per-run setup constant), which proves the
//!    per-event delta is exactly zero.
//! 2. **Analyzer** — a captured request stream is replayed through
//!    [`WeblogAnalyzer::ingest_quiet`]. After two warm passes (the
//!    first sights every aggregate key, the second grows the reusable
//!    probe/scratch buffers to high water) a further replay is pure
//!    fold work: exactly zero allocations.
//! 3. **Tenant monitor** — the same replay through
//!    [`TenantStore::feed`]/[`TenantStore::flush`] with no model. The
//!    pooled staging slots are at high water after the warm pass:
//!    exactly zero allocations.
//!
//! This file deliberately holds a single `#[test]` with a thread-local
//! counter, for the reasons documented in `no_alloc.rs` (the harness's
//! main thread shares the global allocator). Integration tests are
//! separate crates, so the `unsafe` allocator impl lives outside the
//! workspace's `forbid(unsafe_code)` library crates.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use yav_analyzer::{Retention, WeblogAnalyzer};
use yav_auction::{Market, MarketConfig};
use yav_core::TenantStore;
use yav_weblog::{HttpRequest, Panel, WeblogConfig, WeblogGenerator};

/// Counts every allocation and reallocation made by the current
/// thread, then delegates to the system allocator.
struct CountingAlloc;

thread_local! {
    // Const-initialized so the first access inside `alloc` itself never
    // allocates; `try_with` so TLS teardown can't recurse into a panic.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

const USERS: u32 = 48;

#[test]
fn steady_state_window_loop_never_allocates_per_event() {
    // Warm the SIMD dispatch before measuring: the one-time level probe
    // reads the `YAV_SIMD` env var, and `std::env::var` allocates when
    // the variable is set. The contract is about steady state.
    let _ = yav_simd::level();

    let config = WeblogConfig {
        users: USERS,
        days: 30,
        ..WeblogConfig::small()
    };
    let generator = WeblogGenerator::new(config.clone());
    let users = Panel::build_block(config.seed, 0, USERS);
    let mut market = Market::new_shard(MarketConfig::default(), 0);

    // Warm pass: resolves telemetry handles, grows the market's
    // participant/bid scratch to high water, and captures the stream so
    // the analyzer/monitor replays below see a fixed event sequence.
    let mut captured: Vec<HttpRequest> = Vec::new();
    generator.run_shard_with_users(
        &users,
        &mut market,
        |req| captured.push(req.clone()),
        |_| {},
    );
    assert!(
        captured.len() > 1_000,
        "warm pass produced too few events ({}) to be a meaningful measurement",
        captured.len()
    );

    // --- Stage 1: generator + market -------------------------------
    // Each user draws from an independent RNG stream seeded by its id,
    // so a run over a user slice replays that slice's exact behaviour;
    // only the market's RNG evolves between runs. With the market warm,
    // any allocation left is either the per-run setup constant (scratch
    // + telemetry lookups) or a per-event leak — running 16 users and
    // then 48 users separates the two: equal counts mean the ~3× extra
    // event volume allocated nothing.
    let mut sink_events = 0u64;
    let small = allocations(|| {
        generator.run_shard_with_users(
            &users[..16],
            &mut market,
            |_| sink_events += 1,
            |_| {},
        );
    });
    let small_events = sink_events;
    sink_events = 0;
    let full = allocations(|| {
        generator.run_shard_with_users(&users, &mut market, |_| sink_events += 1, |_| {});
    });
    assert!(
        sink_events > small_events,
        "full run ({} events) must exceed the 16-user run ({} events)",
        sink_events,
        small_events
    );
    assert_eq!(
        full, small,
        "generate+market path allocated per event: {} allocs for {} events vs {} allocs for {} events",
        full, sink_events, small, small_events
    );

    // --- Stage 2: analyzer ------------------------------------------
    // Warm twice: the first pass creates every per-user state, publisher
    // set entry, DSP aggregate, campaign counter and (adx, dsp, month)
    // pair this stream can produce; the second pushes the reusable
    // probe-key and scratch buffers to their length high-water marks
    // (a first-sight miss consumes the pooled probe key, so a capacity
    // can still grow once on the pass after first sight).
    let mut analyzer = WeblogAnalyzer::with_retention(Retention::Bounded);
    for _ in 0..2 {
        for req in &captured {
            analyzer.ingest_quiet(req);
        }
    }
    let analyzed = allocations(|| {
        for req in &captured {
            analyzer.ingest_quiet(req);
        }
    });
    assert_eq!(analyzed, 0, "ingest_quiet() steady state allocated");

    // --- Stage 3: tenant monitor ------------------------------------
    // The warm pass creates tenant states and pushes the staging
    // vector to its high-water length; after a flush the pooled slots
    // are reused via `HttpRequest::copy_from`, so the model-free feed
    // path is allocation-free forever after.
    let mut store = TenantStore::new();
    for req in &captured {
        store.feed(None, req);
    }
    store.flush(None);
    let monitored = allocations(|| {
        for req in &captured {
            store.feed(None, req);
        }
        store.flush(None);
    });
    assert_eq!(
        monitored, 0,
        "TenantStore::feed()/flush() steady state allocated"
    );
}
