//! Two-sample Kolmogorov–Smirnov test.
//!
//! The paper's footnote 5 confirms the time-of-day and day-of-week price
//! distributions are statistically different with two-sample KS tests
//! (p < 0.0002 and p < 0.002). We reproduce that check, computing the KS
//! statistic exactly and the p-value via the asymptotic Kolmogorov
//! distribution.

use serde::{Deserialize, Serialize};

/// Result of a two-sample Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsResult {
    /// The KS statistic: the supremum of |F1(x) − F2(x)|.
    pub statistic: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution).
    pub p_value: f64,
    /// Sizes of the two samples.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
}

impl KsResult {
    /// True if the null hypothesis (same distribution) is rejected at the
    /// given significance level.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample KS test. Both samples are copied and sorted; non-finite
/// values are dropped. Returns `None` if either sample ends up empty.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Option<KsResult> {
    let mut xs: Vec<f64> = a.iter().copied().filter(|v| v.is_finite()).collect();
    let mut ys: Vec<f64> = b.iter().copied().filter(|v| v.is_finite()).collect();
    if xs.is_empty() || ys.is_empty() {
        return None;
    }
    xs.sort_by(|p, q| p.total_cmp(q));
    ys.sort_by(|p, q| p.total_cmp(q));
    let (n1, n2) = (xs.len(), ys.len());

    // Merge-walk both sorted samples tracking the maximal CDF gap.
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n1 && j < n2 {
        let x = xs[i].min(ys[j]);
        while i < n1 && xs[i] <= x {
            i += 1;
        }
        while j < n2 && ys[j] <= x {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }

    let en = ((n1 * n2) as f64 / (n1 + n2) as f64).sqrt();
    let p_value = kolmogorov_sf((en + 0.12 + 0.11 / en) * d);
    Some(KsResult {
        statistic: d,
        p_value,
        n1,
        n2,
    })
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} exp(−2 k² λ²)` (Numerical-Recipes form,
/// including the small-sample correction applied by the caller).
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0f64;
    let mut sign = 1.0f64;
    let a = -2.0 * lambda * lambda;
    for k in 1..=100 {
        let term = sign * 2.0 * (a * (k * k) as f64).exp();
        sum += term;
        if term.abs() < 1e-12 {
            break;
        }
        sign = -sign;
    }
    sum.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_do_not_reject() {
        let xs: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let r = ks_two_sample(&xs, &xs).unwrap();
        assert!(r.statistic < 1e-12);
        assert!(r.p_value > 0.99);
        assert!(!r.rejects_at(0.05));
    }

    #[test]
    fn disjoint_samples_reject_strongly() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..200).map(|i| 1000.0 + i as f64).collect();
        let r = ks_two_sample(&xs, &ys).unwrap();
        assert!((r.statistic - 1.0).abs() < 1e-12);
        assert!(r.p_value < 1e-6);
        assert!(r.rejects_at(0.0002));
    }

    #[test]
    fn shifted_distributions_detected() {
        // Deterministic pseudo-samples from two shifted ramps.
        let xs: Vec<f64> = (0..400).map(|i| (i as f64 * 37.0) % 100.0).collect();
        let ys: Vec<f64> = (0..400).map(|i| (i as f64 * 37.0) % 100.0 + 15.0).collect();
        let r = ks_two_sample(&xs, &ys).unwrap();
        assert!(r.statistic > 0.1);
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn empty_sample_is_none() {
        assert!(ks_two_sample(&[], &[1.0]).is_none());
        assert!(ks_two_sample(&[1.0], &[f64::NAN]).is_none());
    }

    #[test]
    fn statistic_bounds() {
        let r = ks_two_sample(&[1.0, 2.0, 3.0], &[2.0, 3.0, 4.0]).unwrap();
        assert!(r.statistic >= 0.0 && r.statistic <= 1.0);
        assert!(r.p_value >= 0.0 && r.p_value <= 1.0);
    }

    #[test]
    fn kolmogorov_sf_monotone() {
        let mut prev = kolmogorov_sf(0.1);
        for i in 2..40 {
            let v = kolmogorov_sf(i as f64 * 0.1);
            assert!(v <= prev + 1e-12, "sf must be non-increasing");
            prev = v;
        }
        assert!(kolmogorov_sf(0.0) == 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }
}
