//! Correlation coefficients.
//!
//! Pearson correlation backs the PME's high-correlation feature filter
//! (§5.1's fallback when cleartext prices are scarce); Spearman rank
//! correlation is what §4.4 implicitly computes when it observes that
//! ad-slot *area* does not correlate with price.

/// Pearson product-moment correlation of two equal-length samples.
/// Returns `None` if the samples differ in length, are shorter than 2, or
/// either has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Spearman rank correlation: Pearson over mid-ranks (ties share the
/// average rank). Same `None` conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Mid-ranks of a sample (1-based; ties averaged).
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // positions i..=j are tied; assign the average 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_invariant_to_monotone_transform() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| x.exp()).collect(); // monotone, nonlinear
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        // Pearson should be < 1 on the nonlinear relation.
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn ties_get_mid_ranks() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None); // zero variance
        assert_eq!(spearman(&[], &[]), None);
    }

    #[test]
    fn uncorrelated_near_zero() {
        // A deterministic "checkerboard": x ramps, y alternates.
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(pearson(&xs, &ys).unwrap().abs() < 0.05);
    }
}
