//! Walker alias tables: O(1) draws from a fixed categorical
//! distribution.
//!
//! The weblog generator draws publishers, IAB topics, hours-of-day,
//! cities and slot sizes billions of times per simulated year; a linear
//! CDF scan per draw is O(n) in the category count and shows up at the
//! top of the profile. An [`AliasTable`] preprocesses the weights once
//! (O(n), Vose's stable construction) and answers every subsequent draw
//! with one table lookup and one comparison.
//!
//! Each draw consumes **exactly one uniform** from the caller's RNG —
//! the same budget as a single CDF scan — so swapping a scan for an
//! alias table keeps per-event RNG consumption counts identical, which
//! is what the thread-count determinism suite relies on (the *values*
//! drawn differ from the scan's, re-pinning the sampled world to an
//! equally valid realisation).

/// A preprocessed categorical distribution supporting O(1) sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance probability of bucket `i`'s own index.
    prob: Vec<f64>,
    /// The donor index used when bucket `i` rejects.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (not necessarily
    /// normalised). Non-finite or negative weights are treated as zero;
    /// an empty or all-zero input yields a table that always returns 0.
    pub fn new(weights: &[f64]) -> AliasTable {
        let n = weights.len().max(1);
        let clean: Vec<f64> = (0..n)
            .map(|i| {
                let w = weights.get(i).copied().unwrap_or(0.0);
                if w.is_finite() && w > 0.0 {
                    w
                } else {
                    0.0
                }
            })
            .collect();
        let total: f64 = clean.iter().sum();
        if total <= 0.0 {
            return AliasTable {
                prob: vec![1.0; n],
                alias: (0..n as u32).collect(),
            };
        }
        // Vose: scale each weight to mean 1, then pair every deficit
        // ("small") bucket with a surplus ("large") donor.
        let mut scaled: Vec<f64> = clean.iter().map(|w| w * n as f64 / total).collect();
        let mut prob = vec![0.0f64; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are numerically 1.0 up to rounding.
        for &i in small.iter().chain(&large) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no categories (never: construction pads
    /// to at least one bucket; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Samples a category index from one uniform draw `u ∈ [0, 1)`.
    /// O(1): the uniform's high part picks a bucket, the low part
    /// resolves accept-vs-alias within it.
    pub fn sample_with(&self, u: f64) -> usize {
        let n = self.prob.len();
        let scaled = u.clamp(0.0, 0.999_999_999_999_999_9) * n as f64;
        let i = (scaled as usize).min(n - 1);
        let frac = scaled - i as f64;
        if frac < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Samples a category using one uniform from `rng` — exactly one
    /// `gen::<f64>()` call, mirroring a single CDF-scan draw.
    pub fn sample<R: rand::Rng>(&self, rng: &mut R) -> usize {
        self.sample_with(rng.gen::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distribution_matches_weights() {
        let weights = [1.0, 3.0, 0.0, 6.0];
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight bucket drawn");
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let got = counts[i] as f64 / n as f64;
            let want = w / total;
            assert!(
                (got - want).abs() < 0.01,
                "bucket {i}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn degenerate_inputs_are_total() {
        assert_eq!(AliasTable::new(&[]).sample_with(0.5), 0);
        assert_eq!(AliasTable::new(&[0.0, 0.0]).len(), 2);
        let t = AliasTable::new(&[f64::NAN, 2.0, -1.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_category_always_wins() {
        let t = AliasTable::new(&[42.0]);
        for u in [0.0, 0.25, 0.999_999] {
            assert_eq!(t.sample_with(u), 0);
        }
    }

    #[test]
    fn u_at_domain_edges_stays_in_bounds() {
        let t = AliasTable::new(&[1.0, 1.0, 1.0]);
        for u in [0.0, 1.0, 1.5, -0.5, f64::NAN] {
            let i = t.sample_with(if u.is_nan() { 0.0 } else { u });
            assert!(i < 3);
        }
    }
}
