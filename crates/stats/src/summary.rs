//! Descriptive summaries: moments and percentile boxes.

use serde::{Deserialize, Serialize};

/// First- and second-moment summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean. `NaN` when `n == 0`.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected). Zero when `n < 2`.
    pub std: f64,
    /// Smallest observation. `NaN` when `n == 0`.
    pub min: f64,
    /// Largest observation. `NaN` when `n == 0`.
    pub max: f64,
}

impl Summary {
    /// Computes mean / std / extremes in a single pass (Welford's online
    /// algorithm, numerically stable for long price streams).
    pub fn of(values: &[f64]) -> Summary {
        let mut n = 0usize;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut min = f64::NAN;
        let mut max = f64::NAN;
        for &x in values {
            n += 1;
            let delta = x - mean;
            mean += delta / n as f64;
            m2 += delta * (x - mean);
            if min.is_nan() || x < min {
                min = x;
            }
            if max.is_nan() || x > max {
                max = x;
            }
        }
        let std = if n >= 2 {
            (m2 / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        Summary {
            n,
            mean: if n == 0 { f64::NAN } else { mean },
            std,
            min,
            max,
        }
    }

    /// Standard error of the mean, `std / sqrt(n)`.
    pub fn sem(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.std / (self.n as f64).sqrt()
        }
    }
}

/// The percentile box used by Figures 5–7, 10 and 13: 5th, 10th, 50th, 90th
/// and 95th percentiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PercentileSummary {
    /// Number of observations.
    pub n: usize,
    /// 5th percentile.
    pub p5: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl PercentileSummary {
    /// Computes the five-percentile box. Sorts a copy of the input.
    /// Returns all-`NaN` percentiles for an empty sample.
    pub fn of(values: &[f64]) -> PercentileSummary {
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        PercentileSummary {
            n: sorted.len(),
            p5: quantile_sorted(&sorted, 0.05),
            p10: quantile_sorted(&sorted, 0.10),
            p50: quantile_sorted(&sorted, 0.50),
            p90: quantile_sorted(&sorted, 0.90),
            p95: quantile_sorted(&sorted, 0.95),
        }
    }

    /// Spread between the 95th and 5th percentile — the "fluctuation" the
    /// paper observes to be larger in big cities (Fig. 5).
    pub fn spread(&self) -> f64 {
        self.p95 - self.p5
    }
}

/// Linear-interpolation quantile (type 7, the R/NumPy default) over a
/// **pre-sorted** slice. Returns `NaN` on an empty slice.
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(yav_stats::summary::quantile_sorted(&xs, 0.5), 2.5);
/// assert_eq!(yav_stats::summary::quantile_sorted(&xs, 0.0), 1.0);
/// assert_eq!(yav_stats::summary::quantile_sorted(&xs, 1.0), 4.0);
/// ```
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Convenience: quantile of an unsorted slice (sorts a copy).
pub fn quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&sorted, q)
}

/// Median of an unsorted slice.
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&xs);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Naive sample variance: sum((x-5)^2)/7 = 32/7.
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.sem() - s.std / 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
        assert_eq!(s.std, 0.0);
        let s1 = Summary::of(&[3.5]);
        assert_eq!(s1.mean, 3.5);
        assert_eq!(s1.std, 0.0);
        assert_eq!(s1.min, 3.5);
        assert_eq!(s1.max, 3.5);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&xs, 0.5), 30.0);
        assert_eq!(quantile(&xs, 0.25), 20.0);
        assert!((quantile(&xs, 0.1) - 14.0).abs() < 1e-12);
        assert_eq!(quantile(&xs, -1.0), 10.0); // clamped
        assert_eq!(quantile(&xs, 2.0), 50.0); // clamped
    }

    #[test]
    fn percentile_summary_ordering() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let p = PercentileSummary::of(&xs);
        assert!(p.p5 < p.p10 && p.p10 < p.p50 && p.p50 < p.p90 && p.p90 < p.p95);
        assert!((p.p50 - 499.5).abs() < 1.0);
        assert!(p.spread() > 0.0);
    }

    #[test]
    fn percentile_summary_empty() {
        let p = PercentileSummary::of(&[]);
        assert_eq!(p.n, 0);
        assert!(p.p50.is_nan());
    }

    #[test]
    fn median_unsorted() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }
}
