//! Sample-size planning (§5.2).
//!
//! The paper sizes its probing ad-campaigns with the classic normal
//! approximation: the margin of error on a mean is `d = z_{α/2}·σ/√n`,
//! ignoring the finite-population correction for a conservative `n`. With
//! the 280 MoPub campaigns of dataset *D* (mean 1.84 CPM, std 2.15 CPM),
//! 144 setups give d ≈ 0.35 CPM at 95 % confidence, and 185 impressions
//! per campaign give d ≈ 0.1 CPM against the largest observed campaign.

use serde::{Deserialize, Serialize};

/// Two-sided z-score for a confidence level, via inverse-normal on
/// `1 − α/2`. E.g. `z(0.95) ≈ 1.96`.
///
/// # Panics
/// Panics unless `0 < confidence < 1`.
pub fn z_score_two_sided(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    inverse_normal_cdf(1.0 - (1.0 - confidence) / 2.0)
}

/// Margin of error `d = z·σ/√n` for estimating a mean from `n` samples.
pub fn margin_of_error(confidence: f64, std: f64, n: usize) -> f64 {
    assert!(n > 0, "need at least one sample");
    z_score_two_sided(confidence) * std / (n as f64).sqrt()
}

/// Minimum `n` so that the margin of error is at most `d`:
/// `n = ceil((z·σ/d)²)`.
pub fn required_sample_size(confidence: f64, std: f64, d: f64) -> usize {
    assert!(d > 0.0, "margin must be positive");
    let z = z_score_two_sided(confidence);
    ((z * std / d).powi(2)).ceil() as usize
}

/// Acklam's rational approximation to the inverse standard-normal CDF
/// (max absolute error ≈ 1.15e-9 — far below anything campaign planning
/// needs).
///
/// # Panics
/// Panics unless `0 < p < 1`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// A §5.2-style campaign plan: how many setups and impressions are needed
/// for target error bounds, given the observed price moments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleSizePlan {
    /// Confidence level used (e.g. 0.95).
    pub confidence: f64,
    /// Observed mean CPM of historical campaigns.
    pub mean: f64,
    /// Observed std CPM of historical campaigns.
    pub std: f64,
    /// Number of experimental setups planned.
    pub setups: usize,
    /// Expected margin of error on the mean campaign price with that many
    /// setups.
    pub setup_margin: f64,
    /// Impressions per campaign needed for the per-campaign margin target.
    pub impressions_per_campaign: usize,
    /// The per-campaign margin target those impressions achieve.
    pub impression_margin: f64,
}

impl SampleSizePlan {
    /// Reproduces the §5.2 computation: given historical campaign price
    /// moments, the planned setup count and a per-campaign price std and
    /// margin target, derive both error bounds.
    pub fn derive(
        confidence: f64,
        mean: f64,
        std: f64,
        setups: usize,
        per_campaign_std: f64,
        impression_margin: f64,
    ) -> SampleSizePlan {
        SampleSizePlan {
            confidence,
            mean,
            std,
            setups,
            setup_margin: margin_of_error(confidence, std, setups),
            impressions_per_campaign: required_sample_size(
                confidence,
                per_campaign_std,
                impression_margin,
            ),
            impression_margin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_scores_match_tables() {
        assert!((z_score_two_sided(0.95) - 1.959964).abs() < 1e-4);
        assert!((z_score_two_sided(0.99) - 2.575829).abs() < 1e-4);
        assert!((z_score_two_sided(0.90) - 1.644854).abs() < 1e-4);
    }

    #[test]
    fn inverse_normal_symmetry() {
        for p in [0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let z = inverse_normal_cdf(p);
            let z_mirror = inverse_normal_cdf(1.0 - p);
            assert!((z + z_mirror).abs() < 1e-7, "symmetry at {p}");
        }
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
    }

    #[test]
    fn paper_setup_margin() {
        // §5.2: m=1.84, std=2.15 CPM, 144 setups ⇒ error ≈ 0.35 CPM @95 % CI.
        let d = margin_of_error(0.95, 2.15, 144);
        assert!((d - 0.351).abs() < 0.01, "got {d}");
    }

    #[test]
    fn paper_impressions_per_campaign() {
        // §5.2: error 0.1 CPM needs ≥185 impressions for the largest MoPub
        // campaign. Back out the std that yields exactly 185 and confirm
        // the plan is in the stated ballpark for a std near 0.69.
        let n = required_sample_size(0.95, 0.694, 0.1);
        assert!((180..=190).contains(&n), "got {n}");
    }

    #[test]
    fn margin_and_size_are_inverse() {
        let std = 2.15;
        for d in [0.05, 0.1, 0.35, 1.0] {
            let n = required_sample_size(0.95, std, d);
            assert!(margin_of_error(0.95, std, n) <= d + 1e-9);
            if n > 1 {
                assert!(margin_of_error(0.95, std, n - 1) > d);
            }
        }
    }

    #[test]
    fn plan_derivation() {
        let plan = SampleSizePlan::derive(0.95, 1.84, 2.15, 144, 0.694, 0.1);
        assert_eq!(plan.setups, 144);
        assert!((plan.setup_margin - 0.351).abs() < 0.01);
        assert!((180..=190).contains(&plan.impressions_per_campaign));
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0,1)")]
    fn bad_confidence_panics() {
        z_score_two_sided(1.0);
    }
}
