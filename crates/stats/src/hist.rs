//! Fixed-bin histograms and share series.
//!
//! The per-month share plots (Figures 2, 8, 9, 12) and the revenue-share
//! bars (Figures 3, 14) are all "count things into named buckets, then
//! normalise" — [`Histogram`] does the counting; [`share`] the normalising.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equal-width bins. Out-of-range values
/// clamp into the first/last bin so totals are preserved (prices above the
/// axis still belong on the plot's edge).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "need lo < hi");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        let idx = self.bin_of(x);
        self.counts[idx] += 1;
    }

    /// The bin index an observation falls into (clamped to the edges).
    pub fn bin_of(&self, x: f64) -> usize {
        let bins = self.counts.len();
        if !x.is_finite() || x < self.lo {
            return 0;
        }
        let width = (self.hi - self.lo) / bins as f64;
        let idx = ((x - self.lo) / width) as usize;
        idx.min(bins - 1)
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }

    /// Per-bin fractions summing to 1 (all-zero if the histogram is empty).
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

/// Normalises a count vector to shares that sum to 1.0 (an all-zero vector
/// stays all-zero). This is the common kernel of every stacked-share figure.
pub fn share(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// Cumulative sums of a share vector: `out[i] = sum(shares[..=i])` — the
/// y-axis of Figure 3 (*cumulative* portion of cleartext prices).
pub fn cumulative(shares: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    shares
        .iter()
        .map(|&s| {
            acc += s;
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.99] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(5.0);
        h.add(f64::NAN);
        assert_eq!(h.counts(), &[2, 1]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn centers_and_fractions() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        assert_eq!(h.bin_center(0), 0.5);
        assert_eq!(h.bin_center(3), 3.5);
        h.add(0.5);
        h.add(0.6);
        h.add(3.0);
        h.add(3.9);
        assert_eq!(h.fractions(), vec![0.5, 0.0, 0.0, 0.5]);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.fractions(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn share_and_cumulative() {
        assert_eq!(share(&[1, 1, 2]), vec![0.25, 0.25, 0.5]);
        assert_eq!(share(&[0, 0]), vec![0.0, 0.0]);
        let cum = cumulative(&[0.25, 0.25, 0.5]);
        assert!((cum[2] - 1.0).abs() < 1e-12);
        assert_eq!(cum[0], 0.25);
        assert_eq!(cum[1], 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }
}
