//! Statistics substrate for the `your-ad-value` workspace.
//!
//! Every evaluation artefact in the paper is a statistical summary of charge
//! prices: percentile boxes (Fig. 5–7, 10, 13), empirical CDFs (Fig. 11,
//! 16, 17), share series (Fig. 2–3, 8–9, 12, 14), two-sample
//! Kolmogorov–Smirnov tests (footnote 5), and the §5.2 sample-size maths.
//! This crate provides those primitives, self-contained and allocation-light,
//! so the analyzer / PME / bench crates never reimplement them.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod alias;
pub mod cdf;
pub mod corr;
pub mod hist;
pub mod ks;
pub mod sampling;
pub mod summary;

pub use alias::AliasTable;
pub use cdf::Ecdf;
pub use corr::{pearson, spearman};
pub use hist::Histogram;
pub use ks::{ks_two_sample, KsResult};
pub use sampling::{margin_of_error, required_sample_size, z_score_two_sided};
pub use summary::{PercentileSummary, Summary};
