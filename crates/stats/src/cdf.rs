//! Empirical cumulative distribution functions.
//!
//! Figures 11, 16 and 17 are all empirical CDFs over charge prices on a
//! logarithmic x-axis. [`Ecdf`] owns a sorted sample and answers
//! `F(x)`-style queries, inverse quantiles and plot-ready series.

use crate::summary::quantile_sorted;
use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF, sorting (a copy of) the sample. Non-finite values
    /// are dropped — they have no place on a CDF axis.
    pub fn new(values: &[f64]) -> Ecdf {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Ecdf { sorted }
    }

    /// Number of (finite) observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the sample was empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` — the fraction of observations `<= x`. Returns 0 for an empty
    /// sample.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF — the `q`-quantile of the sample.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_sorted(&self.sorted, q)
    }

    /// Median shortcut.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The underlying sorted sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// A plot-ready series of `(x, F(x))` points sampled at `points`
    /// logarithmically spaced x positions between `lo` and `hi` — exactly
    /// how the paper's log-x CDF figures are drawn.
    ///
    /// # Panics
    /// Panics if `lo` or `hi` is non-positive or `lo >= hi`.
    pub fn log_series(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(lo > 0.0 && hi > lo, "log axis needs 0 < lo < hi");
        let (llo, lhi) = (lo.ln(), hi.ln());
        (0..points)
            .map(|i| {
                let t = if points == 1 {
                    0.0
                } else {
                    i as f64 / (points - 1) as f64
                };
                let x = (llo + t * (lhi - llo)).exp();
                (x, self.eval(x))
            })
            .collect()
    }

    /// The full step-function series `(x_i, i/n)` — one point per distinct
    /// observation, useful for exact plotting of small samples.
    pub fn step_series(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let x = self.sorted[i];
            // advance over ties
            let mut j = i + 1;
            while j < n && self.sorted[j] == x {
                j += 1;
            }
            out.push((x, j as f64 / n as f64));
            i = j;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_steps() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(2.5), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn drops_non_finite() {
        let e = Ecdf::new(&[1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.eval(1.5), 0.5);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(e.median(), 2.5);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 4.0);
    }

    #[test]
    fn log_series_monotone() {
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64 / 100.0).collect();
        let e = Ecdf::new(&xs);
        let series = e.log_series(0.01, 100.0, 50);
        assert_eq!(series.len(), 50);
        for w in series.windows(2) {
            assert!(w[0].0 < w[1].0, "x must increase");
            assert!(w[0].1 <= w[1].1, "F must be monotone");
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn step_series_dedupes_ties() {
        let e = Ecdf::new(&[1.0, 1.0, 2.0]);
        assert_eq!(e.step_series(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn empty_is_safe() {
        let e = Ecdf::new(&[]);
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
        assert!(e.median().is_nan());
        assert!(e.step_series().is_empty());
    }

    #[test]
    #[should_panic(expected = "log axis")]
    fn log_series_rejects_bad_bounds() {
        Ecdf::new(&[1.0]).log_series(0.0, 1.0, 10);
    }
}
