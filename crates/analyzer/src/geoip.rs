//! Reverse IP geo-coding.
//!
//! The paper resolves each user IP to city level with the MaxMind GeoIP
//! database. Our synthetic carrier assigns each city a `10.x.0.0/16` pool
//! (see `yav_weblog::generator::city_ip`); [`GeoDb`] is the analyzer-side
//! prefix table mapping those pools back to cities — a miniature,
//! self-contained stand-in for MaxMind with the same lookup contract.

use yav_types::City;

/// A city-level IP prefix database.
#[derive(Debug, Clone, Default)]
pub struct GeoDb {
    _private: (),
}

impl GeoDb {
    /// Opens the built-in database.
    pub fn open() -> GeoDb {
        GeoDb { _private: () }
    }

    /// Resolves an IPv4 address (as u32) to a city, or `None` for
    /// addresses outside the known carrier pools.
    pub fn city_of(&self, ip: u32) -> Option<City> {
        if ip >> 24 != 10 {
            return None;
        }
        let octet2 = ((ip >> 16) & 0xFF) as usize;
        let idx = octet2.checked_sub(40)?;
        if idx < City::ALL.len() {
            Some(City::from_index(idx))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_types::UserId;

    #[test]
    fn round_trips_generator_allocation() {
        let db = GeoDb::open();
        for (i, city) in City::ALL.iter().enumerate() {
            for user in [0u32, 7, 1593] {
                for churn in [0u8, 99, 255] {
                    let ip = yav_weblog::generator::city_ip(*city, UserId(user), churn);
                    assert_eq!(db.city_of(ip), Some(*city), "city {i} user {user}");
                }
            }
        }
    }

    #[test]
    fn unknown_pools_are_none() {
        let db = GeoDb::open();
        assert_eq!(db.city_of(0x0808_0808), None); // 8.8.8.8
        assert_eq!(db.city_of(0x0A00_0000), None); // 10.0.0.0 (below pool base)
        assert_eq!(db.city_of(0x0AFF_0000), None); // 10.255.x (above pool top)
    }
}
