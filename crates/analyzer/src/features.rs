//! The Table-4 feature catalogue: 288 features per detected impression.
//!
//! §5.1 reports 288 available features, grouped into semantically related
//! sets: A) time, B) http-related, C) advertisement-related, D)
//! DSP-related, E) publisher/host interests, F) user http statistics
//! (historical), G) user interests (historical), H) user locations
//! (historical). The schema below reconstructs a catalogue with exactly
//! that count and grouping; every feature is computable online from the
//! per-user and global state the analyzer maintains.

use crate::analyzer::DetectedImpression;
use crate::userstate::{GlobalState, UserState};
use std::sync::OnceLock;
use yav_types::{AdSlotSize, Adx, City, IabCategory};

/// Total number of features (§5.1: 288).
pub const FEATURE_COUNT: usize = 288;

/// The §5.1 feature groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureGroup {
    /// A — auction time.
    Time,
    /// B — http/transport facts of the notification.
    Http,
    /// C — advertisement (slot, exchange, campaign).
    Ad,
    /// D — DSP / bidder.
    Dsp,
    /// E — publisher and host interests.
    Publisher,
    /// F — user http statistics (historical).
    UserHttp,
    /// G — user interests (historical).
    UserInterests,
    /// H — user locations (historical).
    UserLocations,
}

/// Slot sizes indexable 0..19 for one-hots.
const SLOT_INDEX: [AdSlotSize; 19] = [
    AdSlotSize::S300x50,
    AdSlotSize::S320x50,
    AdSlotSize::S468x60,
    AdSlotSize::S200x200,
    AdSlotSize::S316x150,
    AdSlotSize::S728x90,
    AdSlotSize::S280x250,
    AdSlotSize::S120x600,
    AdSlotSize::S300x250,
    AdSlotSize::S336x280,
    AdSlotSize::S160x600,
    AdSlotSize::S800x130,
    AdSlotSize::S400x300,
    AdSlotSize::S320x480,
    AdSlotSize::S480x320,
    AdSlotSize::S300x600,
    AdSlotSize::S350x600,
    AdSlotSize::S768x1024,
    AdSlotSize::S1024x768,
];

/// Index of a slot in [`SLOT_INDEX`].
pub fn slot_index(slot: AdSlotSize) -> usize {
    SLOT_INDEX
        .iter()
        .position(|&s| s == slot)
        .expect("all sizes indexed")
}

/// Number of roster DSP domains given dedicated one-hot slots; everything
/// beyond maps to the shared "other" slot.
const DSP_ROSTER: usize = 12;

/// The named schema: feature names with their group, fixed order.
pub struct FeatureSchema {
    names: Vec<(&'static str, FeatureGroup, String)>,
}

impl FeatureSchema {
    /// The process-wide schema instance.
    pub fn get() -> &'static FeatureSchema {
        static SCHEMA: OnceLock<FeatureSchema> = OnceLock::new();
        SCHEMA.get_or_init(FeatureSchema::build)
    }

    fn build() -> FeatureSchema {
        use FeatureGroup::*;
        let mut names: Vec<(&'static str, FeatureGroup, String)> =
            Vec::with_capacity(FEATURE_COUNT);
        let mut push = |grp: FeatureGroup, name: String| names.push(("", grp, name));

        // A — time (52).
        for h in 0..24 {
            push(Time, format!("hour_{h:02}"));
        }
        for t in yav_types::TimeOfDay::ALL {
            push(Time, format!("tod_{}", t.label()));
        }
        for d in yav_types::DayOfWeek::ALL {
            push(Time, format!("dow_{d}"));
        }
        push(Time, "is_weekend".into());
        for m in yav_types::Month::ALL {
            push(Time, format!("month_{m}"));
        }
        push(Time, "day_of_month_norm".into());
        push(Time, "minutes_since_midnight".into());

        // B — http (12).
        for n in [
            "nurl_bytes",
            "nurl_duration_ms",
            "nurl_param_count",
            "nurl_latency_ms",
            "nurl_is_https",
            "nurl_host_len",
            "nurl_path_depth",
            "nurl_query_len",
            "nurl_has_bid_price",
            "nurl_has_size",
            "nurl_has_publisher",
            "nurl_token_len",
        ] {
            push(Http, n.into());
        }

        // C — advertisement (42).
        for s in SLOT_INDEX {
            push(Ad, format!("slot_{s}"));
        }
        push(Ad, "slot_width".into());
        push(Ad, "slot_height".into());
        push(Ad, "slot_area".into());
        push(Ad, "slot_aspect".into());
        push(Ad, "slot_month_share".into());
        for a in Adx::ALL {
            push(Ad, format!("adx_{a}"));
        }
        push(Ad, "campaign_popularity".into());

        // D — DSP (19).
        for i in 0..DSP_ROSTER {
            push(Dsp, format!("dsp_roster_{i}"));
        }
        push(Dsp, "dsp_other".into());
        for n in [
            "dsp_total_reqs",
            "dsp_total_bytes",
            "dsp_avg_duration_ms",
            "dsp_reqs_per_user",
            "dsp_users_reached",
            "dsp_encrypted_share",
        ] {
            push(Dsp, n.into());
        }

        // E — publisher/host interests (38).
        for c in IabCategory::ALL {
            push(Publisher, format!("pub_iab_{c}"));
        }
        push(Publisher, "pub_iab_unknown".into());
        push(Publisher, "pub_views".into());
        push(Publisher, "pub_impressions".into());
        push(Publisher, "pub_is_app".into());
        for b in 0..16 {
            push(Publisher, format!("pub_hash_{b:02}"));
        }

        // F — user http statistics (64).
        for n in [
            "u_requests",
            "u_bytes",
            "u_duration_ms",
            "u_avg_bytes_per_req",
            "u_avg_duration_per_req",
            "u_beacons",
            "u_cookie_syncs",
            "u_publishers",
            "u_app_share",
            "u_active_days",
            "u_reqs_per_day",
            "u_ads_seen",
            "u_clear_prices_seen",
            "u_encrypted_seen",
            "u_mean_clear_price",
            "u_std_clear_price",
        ] {
            push(UserHttp, n.into());
        }
        for h in 0..24 {
            push(UserHttp, format!("u_hourly_{h:02}"));
        }
        for d in yav_types::DayOfWeek::ALL {
            push(UserHttp, format!("u_daily_{d}"));
        }
        for a in Adx::ALL {
            push(UserHttp, format!("u_adx_imps_{a}"));
        }

        // G — user interests (37).
        for c in IabCategory::ALL {
            push(UserInterests, format!("u_interest_{c}"));
        }
        for c in IabCategory::ALL {
            push(UserInterests, format!("u_top_interest_{c}"));
        }
        push(UserInterests, "u_interest_match".into());

        // H — user locations (24).
        for c in City::ALL {
            push(UserLocations, format!("city_{c}"));
        }
        push(UserLocations, "city_unknown".into());
        for c in City::ALL {
            push(UserLocations, format!("u_city_share_{c}"));
        }
        push(UserLocations, "u_unique_cities".into());
        push(UserLocations, "city_log_population".into());
        push(UserLocations, "city_rank".into());

        assert_eq!(
            names.len(),
            FEATURE_COUNT,
            "schema must have exactly 288 features"
        );
        FeatureSchema { names }
    }

    /// Feature names in extraction order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(|(_, _, n)| n.as_str())
    }

    /// Number of features (always [`FEATURE_COUNT`]).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Group of a feature index.
    pub fn group_of(&self, idx: usize) -> FeatureGroup {
        self.names[idx].1
    }

    /// Name of a feature index.
    pub fn name_of(&self, idx: usize) -> &str {
        &self.names[idx].2
    }

    /// Column indices belonging to one group.
    pub fn group_indices(&self, group: FeatureGroup) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.group_of(i) == group)
            .collect()
    }
}

/// Transport facts about the notification request itself (group B inputs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NurlTransport {
    /// Response bytes of the notification request.
    pub bytes: u32,
    /// Duration of the notification request (ms).
    pub duration_ms: u32,
    /// Number of query parameters.
    pub param_count: u32,
    /// Whether the notification travelled over https.
    pub https: bool,
    /// Host length in bytes.
    pub host_len: u32,
    /// Path depth (number of `/`-separated segments).
    pub path_depth: u32,
    /// Total query-string length (decoded).
    pub query_len: u32,
    /// Whether a bid price co-occurred.
    pub has_bid_price: bool,
    /// Whether a slot size was echoed.
    pub has_size: bool,
    /// Whether a publisher name was echoed.
    pub has_publisher: bool,
    /// Length of the encrypted token (0 for cleartext).
    pub token_len: u32,
}

/// Extracts the full 288-feature vector for one detected impression.
pub fn extract(
    meta: &DetectedImpression,
    transport: &NurlTransport,
    user: &UserState,
    global: &GlobalState,
) -> Vec<f64> {
    let mut f = Vec::with_capacity(FEATURE_COUNT);
    extract_into(&mut f, meta, transport, user, global);
    f
}

/// Like [`extract`], but writes into a caller-owned buffer so hot loops
/// (one vector per detected impression) can reuse a single allocation.
pub fn extract_into(
    out: &mut Vec<f64>,
    meta: &DetectedImpression,
    transport: &NurlTransport,
    user: &UserState,
    global: &GlobalState,
) {
    out.clear();
    out.reserve(FEATURE_COUNT);
    let f = out;
    let time = meta.time;

    // A — time.
    for h in 0..24u32 {
        f.push(if time.hour() == h { 1.0 } else { 0.0 });
    }
    for t in yav_types::TimeOfDay::ALL {
        f.push(if time.time_of_day() == t { 1.0 } else { 0.0 });
    }
    for d in yav_types::DayOfWeek::ALL {
        f.push(if time.day_of_week() == d { 1.0 } else { 0.0 });
    }
    f.push(if time.is_weekend() { 1.0 } else { 0.0 });
    for m in yav_types::Month::ALL {
        f.push(if time.month() == m { 1.0 } else { 0.0 });
    }
    f.push(time.ymd().2 as f64 / 31.0);
    f.push((time.minutes().rem_euclid(yav_types::MINUTES_PER_DAY)) as f64);

    // B — http.
    f.push(transport.bytes as f64);
    f.push(transport.duration_ms as f64);
    f.push(transport.param_count as f64);
    f.push(meta.latency_ms.unwrap_or(0) as f64);
    f.push(if transport.https { 1.0 } else { 0.0 });
    f.push(transport.host_len as f64);
    f.push(transport.path_depth as f64);
    f.push(transport.query_len as f64);
    f.push(if transport.has_bid_price { 1.0 } else { 0.0 });
    f.push(if transport.has_size { 1.0 } else { 0.0 });
    f.push(if transport.has_publisher { 1.0 } else { 0.0 });
    f.push(transport.token_len as f64);

    // C — advertisement.
    for s in SLOT_INDEX {
        f.push(if meta.slot == Some(s) { 1.0 } else { 0.0 });
    }
    let (w, h) = meta.slot.map(|s| s.dimensions()).unwrap_or((0, 0));
    f.push(w as f64);
    f.push(h as f64);
    f.push((w * h) as f64);
    f.push(if h > 0 { w as f64 / h as f64 } else { 0.0 });
    let month_bucket = GlobalState::month_bucket(time);
    let month_total: u64 = global.monthly_slots[month_bucket].iter().sum();
    let slot_share = match meta.slot {
        Some(s) if month_total > 0 => {
            global.monthly_slots[month_bucket][slot_index(s)] as f64 / month_total as f64
        }
        _ => 0.0,
    };
    f.push(slot_share);
    for a in Adx::ALL {
        f.push(if meta.adx == a { 1.0 } else { 0.0 });
    }
    let campaign_pop = meta
        .campaign_wire
        .as_ref()
        .and_then(|c| global.campaigns.get(c))
        .copied()
        .unwrap_or(0);
    f.push(campaign_pop as f64);

    // D — DSP.
    let dsp_domain = meta.dsp_domain.as_deref().unwrap_or("");
    let roster_idx = (0..DSP_ROSTER as u32).find(|&i| yav_types::DspId(i).domain() == dsp_domain);
    for i in 0..DSP_ROSTER {
        f.push(if roster_idx == Some(i as u32) {
            1.0
        } else {
            0.0
        });
    }
    f.push(if roster_idx.is_none() { 1.0 } else { 0.0 });
    let dsp_stats = global.dsps.get(dsp_domain);
    f.push(dsp_stats.map(|s| s.requests as f64).unwrap_or(0.0));
    f.push(dsp_stats.map(|s| s.bytes as f64).unwrap_or(0.0));
    f.push(
        dsp_stats
            .map(|s| {
                if s.requests > 0 {
                    s.duration_ms as f64 / s.requests as f64
                } else {
                    0.0
                }
            })
            .unwrap_or(0.0),
    );
    f.push(global.dsp_avg_reqs_per_user(dsp_domain));
    f.push(dsp_stats.map(|s| s.users.len() as f64).unwrap_or(0.0));
    f.push(
        dsp_stats
            .map(|s| {
                if s.requests > 0 {
                    s.encrypted as f64 / s.requests as f64
                } else {
                    0.0
                }
            })
            .unwrap_or(0.0),
    );

    // E — publisher.
    for c in IabCategory::ALL {
        f.push(if meta.iab == Some(c) { 1.0 } else { 0.0 });
    }
    f.push(if meta.iab.is_none() { 1.0 } else { 0.0 });
    let pub_name = meta.publisher.as_deref().unwrap_or("");
    f.push(global.publisher_views.get(pub_name).copied().unwrap_or(0) as f64);
    f.push(global.publisher_imps.get(pub_name).copied().unwrap_or(0) as f64);
    f.push(if pub_name.starts_with("com.") {
        1.0
    } else {
        0.0
    });
    let hash = fxhash(pub_name) % 16;
    for b in 0..16u64 {
        f.push(if hash == b { 1.0 } else { 0.0 });
    }

    // F — user http statistics.
    let reqs = user.requests.max(1) as f64;
    let days = user.active_days.len().max(1) as f64;
    let ads_seen = user.clear_prices.0 + user.encrypted_seen;
    f.push(user.requests as f64);
    f.push(user.bytes as f64);
    f.push(user.duration_ms as f64);
    f.push(user.bytes as f64 / reqs);
    f.push(user.duration_ms as f64 / reqs);
    f.push(user.beacons as f64);
    f.push(user.cookie_syncs as f64);
    f.push(user.publishers.len() as f64);
    f.push(user.app_requests as f64 / reqs);
    f.push(user.active_days.len() as f64);
    f.push(user.requests as f64 / days);
    f.push(ads_seen as f64);
    f.push(user.clear_prices.0 as f64);
    f.push(user.encrypted_seen as f64);
    let mean_price = user.mean_clear_price();
    f.push(if mean_price.is_finite() {
        mean_price
    } else {
        0.0
    });
    f.push(user.std_clear_price());
    for h in 0..24 {
        f.push(user.hourly[h] as f64 / reqs);
    }
    for d in 0..7 {
        f.push(user.daily[d] as f64 / reqs);
    }
    for a in Adx::ALL {
        f.push(user.adx_impressions[a.index()] as f64);
    }

    // G — user interests.
    let profile = user.interest_profile();
    for p in profile {
        f.push(p);
    }
    let top = profile
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, &w)| if w > 0.0 { Some(i) } else { None })
        .unwrap_or(None);
    for (i, _) in IabCategory::ALL.iter().enumerate() {
        f.push(if top == Some(i) { 1.0 } else { 0.0 });
    }
    f.push(meta.iab.map(|c| profile[c.index()]).unwrap_or(0.0));

    // H — user locations.
    for c in City::ALL {
        f.push(if meta.city == Some(c) { 1.0 } else { 0.0 });
    }
    f.push(if meta.city.is_none() { 1.0 } else { 0.0 });
    let city_total: u64 = user.city_counts.iter().sum();
    for i in 0..10 {
        f.push(if city_total > 0 {
            user.city_counts[i] as f64 / city_total as f64
        } else {
            0.0
        });
    }
    f.push(user.cities.len() as f64);
    f.push(
        meta.city
            .map(|c| (c.population() as f64).ln())
            .unwrap_or(0.0),
    );
    f.push(meta.city.map(|c| c.index() as f64).unwrap_or(10.0));

    debug_assert_eq!(f.len(), FEATURE_COUNT);
}

/// A tiny deterministic string hash (FxHash-style) for bucket features.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in s.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Returns true if a feature row could plausibly come from [`extract`]:
/// right length, all finite. Used by downstream validation.
pub fn validate_row(row: &[f64]) -> bool {
    row.len() == FEATURE_COUNT && row.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_types::{Cpm, PriceVisibility, SimTime};

    fn meta() -> DetectedImpression {
        DetectedImpression {
            time: SimTime::from_ymd_hm(2015, 6, 15, 10, 30),
            user: yav_types::UserId(3),
            adx: Adx::MoPub,
            dsp_domain: Some("mediamath.com".into()),
            visibility: PriceVisibility::Cleartext,
            cleartext_cpm: Some(Cpm::from_f64(0.8)),
            encrypted_token_wire: None,
            slot: Some(AdSlotSize::S300x250),
            publisher: Some("minoticias3.example".into()),
            iab: Some(IabCategory::News),
            city: Some(City::Madrid),
            os: yav_types::Os::Android,
            device: yav_types::DeviceType::Smartphone,
            interaction: yav_types::InteractionType::MobileWeb,
            campaign_wire: None,
            latency_ms: Some(120),
        }
    }

    #[test]
    fn schema_is_exactly_288() {
        let s = FeatureSchema::get();
        assert_eq!(s.len(), FEATURE_COUNT);
        assert_eq!(s.names().count(), 288);
        // Names are unique.
        let set: std::collections::HashSet<&str> = s.names().collect();
        assert_eq!(set.len(), 288);
    }

    #[test]
    fn groups_partition_the_schema() {
        use FeatureGroup::*;
        let s = FeatureSchema::get();
        let total: usize = [
            Time,
            Http,
            Ad,
            Dsp,
            Publisher,
            UserHttp,
            UserInterests,
            UserLocations,
        ]
        .iter()
        .map(|&g| s.group_indices(g).len())
        .sum();
        assert_eq!(total, 288);
        assert_eq!(s.group_indices(Time).len(), 52);
        assert_eq!(s.group_indices(Http).len(), 12);
        assert_eq!(s.group_indices(Ad).len(), 42);
        assert_eq!(s.group_indices(Dsp).len(), 19);
        assert_eq!(s.group_indices(Publisher).len(), 38);
        assert_eq!(s.group_indices(UserHttp).len(), 64);
        assert_eq!(s.group_indices(UserInterests).len(), 37);
        assert_eq!(s.group_indices(UserLocations).len(), 24);
    }

    #[test]
    fn extract_matches_schema_length_and_is_finite() {
        let user = UserState::new();
        let global = GlobalState::default();
        let row = extract(&meta(), &NurlTransport::default(), &user, &global);
        assert!(validate_row(&row));
    }

    #[test]
    fn extract_into_reuses_buffer_and_matches_extract() {
        let user = UserState::new();
        let global = GlobalState::default();
        let fresh = extract(&meta(), &NurlTransport::default(), &user, &global);
        let mut reused = vec![f64::NAN; 7]; // stale junk from a previous row
        extract_into(
            &mut reused,
            &meta(),
            &NurlTransport::default(),
            &user,
            &global,
        );
        assert_eq!(reused, fresh);
        // A second pass through the same buffer must not grow it.
        let cap = reused.capacity();
        extract_into(
            &mut reused,
            &meta(),
            &NurlTransport::default(),
            &user,
            &global,
        );
        assert_eq!(reused.capacity(), cap);
        assert_eq!(reused, fresh);
    }

    #[test]
    fn one_hots_fire_correctly() {
        let user = UserState::new();
        let global = GlobalState::default();
        let row = extract(&meta(), &NurlTransport::default(), &user, &global);
        let s = FeatureSchema::get();
        let by_name = |n: &str| {
            let i = (0..s.len())
                .find(|&i| s.name_of(i) == n)
                .unwrap_or_else(|| panic!("{n}"));
            row[i]
        };
        assert_eq!(by_name("hour_10"), 1.0);
        assert_eq!(by_name("hour_11"), 0.0);
        assert_eq!(by_name("dow_Monday"), 1.0); // 2015-06-15 was a Monday
        assert_eq!(by_name("month_June"), 1.0);
        assert_eq!(by_name("slot_300x250"), 1.0);
        assert_eq!(by_name("adx_MoPub"), 1.0);
        assert_eq!(by_name("adx_OpenX"), 0.0);
        assert_eq!(by_name("dsp_roster_0"), 1.0); // mediamath.com is DspId(0)
        assert_eq!(by_name("pub_iab_IAB12"), 1.0);
        assert_eq!(by_name("city_Madrid"), 1.0);
        assert_eq!(by_name("city_unknown"), 0.0);
        assert_eq!(by_name("slot_width"), 300.0);
        assert_eq!(by_name("slot_height"), 250.0);
        assert_eq!(by_name("nurl_latency_ms"), 120.0);
    }

    #[test]
    fn user_history_reflected() {
        let mut user = UserState::new();
        user.record_publisher("a.example", Some(IabCategory::News));
        user.record_publisher("b.example", Some(IabCategory::News));
        user.record_publisher("c.example", Some(IabCategory::Sports));
        user.record_impression(Adx::MoPub, Some(2.0));
        let global = GlobalState::default();
        let row = extract(&meta(), &NurlTransport::default(), &user, &global);
        let s = FeatureSchema::get();
        let by_name = |n: &str| {
            let i = (0..s.len()).find(|&i| s.name_of(i) == n).unwrap();
            row[i]
        };
        assert!((by_name("u_interest_IAB12") - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(by_name("u_top_interest_IAB12"), 1.0);
        assert!((by_name("u_interest_match") - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(by_name("u_publishers"), 3.0);
        assert_eq!(by_name("u_mean_clear_price"), 2.0);
    }

    #[test]
    fn missing_metadata_is_survivable() {
        let mut m = meta();
        m.slot = None;
        m.publisher = None;
        m.iab = None;
        m.city = None;
        m.dsp_domain = None;
        m.latency_ms = None;
        let row = extract(
            &m,
            &NurlTransport::default(),
            &UserState::new(),
            &GlobalState::default(),
        );
        assert!(validate_row(&row));
        let s = FeatureSchema::get();
        let by_name = |n: &str| {
            let i = (0..s.len()).find(|&i| s.name_of(i) == n).unwrap();
            row[i]
        };
        assert_eq!(by_name("pub_iab_unknown"), 1.0);
        assert_eq!(by_name("city_unknown"), 1.0);
        assert_eq!(by_name("dsp_other"), 1.0);
        assert_eq!(by_name("slot_area"), 0.0);
    }
}
