//! The Weblog Ads Analyzer (§4.1 of the paper).
//!
//! A streaming consumer of raw HTTP request records that rebuilds the
//! paper's measurement pipeline:
//!
//! 1. **Traffic classification** ([`classify`]) — an adblock-style domain
//!    blacklist buckets every request into Advertising / Analytics /
//!    Social / 3rd-party / Rest;
//! 2. **nURL filtering** — advertising requests are matched against the
//!    RTB macro list (`yav-nurl`), charge prices extracted, co-occurring
//!    bid prices discarded;
//! 3. **Enrichment** — reverse IP geo-coding ([`geoip`]), user-agent
//!    fingerprinting ([`ua`]), publisher content taxonomy ([`taxonomy`]),
//!    ADX↔DSP pair identification ([`pairs`]);
//! 4. **Feature extraction** ([`features`]) — the full 288-dimension
//!    vector of Table 4, computed online from per-user evolving state
//!    ([`userstate`]), snapshotted at every detected impression.
//!
//! The analyzer never touches simulator ground truth: its inputs are the
//! same byte strings a proxy log would contain.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyzer;
pub mod classify;
pub mod features;
pub mod geoip;
pub mod pairs;
pub mod parallel;
pub mod summary;
pub mod taxonomy;
pub mod ua;
pub mod userstate;

pub use analyzer::{
    AnalyzerReport, DetectedImpression, ImpressionRecord, Retention, WeblogAnalyzer,
};
pub use classify::{classify_domain, classify_domain_lower, TrafficClass};
pub use features::{FeatureSchema, FEATURE_COUNT};
pub use geoip::GeoDb;
pub use parallel::{analyze_parallel, ParallelAnalysis};
pub use summary::{DetectionSummary, PriceHist};
pub use ua::{parse_user_agent, UaFingerprint};
