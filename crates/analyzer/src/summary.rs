//! Bounded commutative detection aggregates.
//!
//! The materialised pipeline keeps every [`crate::DetectedImpression`] in
//! `AnalyzerReport::detections`; at a million users that list alone is
//! gigabytes. `DetectionSummary` is the constant-size shadow of that list:
//! plain counters, exact micro-CPM sums, and fixed-bin price histograms —
//! all of which merge commutatively, so per-shard summaries fold in any
//! grouping to the same totals. The streaming builder's bounded retention
//! mode drops the detection list and answers its scale-level questions
//! (volumes, price levels, the §6.2 time-shift strata) from this summary
//! instead.

use serde::{Deserialize, Serialize};
use yav_types::{Adx, Cpm, IabCategory, PriceVisibility};

/// Histogram bin width in micro-CPM: 0.01 CPM. 2015 mobile RTB clearing
/// prices live below ~10 CPM, so ~4000 bins cover the mass and the tail
/// folds into the overflow bin.
pub const PRICE_BIN_MICROS: i64 = 10_000;

/// Number of regular bins; prices at or above `BINS × 0.01` CPM land in
/// the final overflow bin.
pub const PRICE_BINS: usize = 4000;

/// Fixed-bin histogram of cleartext prices, exact to 0.01 CPM.
///
/// Bin sums are commutative and associative, so shard histograms merge to
/// the same histogram in any order — unlike capped samples or reservoirs,
/// whose merges depend on grouping. The buffer is lazily allocated: an
/// empty histogram is 24 bytes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriceHist {
    /// Per-bin counts (`PRICE_BINS + 1` entries once touched).
    bins: Vec<u32>,
    /// Total recorded prices.
    count: u64,
}

impl PriceHist {
    /// Records one cleartext price.
    pub fn record(&mut self, price: Cpm) {
        if self.bins.is_empty() {
            self.bins = vec![0; PRICE_BINS + 1];
        }
        let idx = (price.micros().max(0) / PRICE_BIN_MICROS) as usize;
        self.bins[idx.min(PRICE_BINS)] += 1;
        self.count += 1;
    }

    /// Total recorded prices.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Deterministic histogram median: the midpoint (in CPM) of the bin
    /// holding the middle observation. Quantised to half a bin width —
    /// the documented precision loss of bounded retention.
    pub fn median(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let mid = self.count.div_ceil(2);
        let mut seen = 0u64;
        for (i, &n) in self.bins.iter().enumerate() {
            seen += n as u64;
            if seen >= mid {
                let lo = i as i64 * PRICE_BIN_MICROS;
                return Some((lo as f64 + PRICE_BIN_MICROS as f64 / 2.0) / 1_000_000.0);
            }
        }
        None
    }

    /// Folds another histogram in (bin-wise sum).
    pub fn merge(&mut self, other: &PriceHist) {
        if other.bins.is_empty() {
            return;
        }
        if self.bins.is_empty() {
            self.bins = other.bins.clone();
        } else {
            for (a, b) in self.bins.iter_mut().zip(&other.bins) {
                *a += b;
            }
        }
        self.count += other.count;
    }
}

/// Constant-size aggregates over every detection the analyzer saw.
///
/// Always recorded (Full retention keeps the detection list *as well*),
/// so the streaming and materialised pipelines agree on it bit-for-bit.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DetectionSummary {
    /// Every detection.
    pub total: u64,
    /// Detections with a readable price.
    pub cleartext: u64,
    /// Detections with an encrypted price token.
    pub encrypted: u64,
    /// Exact sum of cleartext prices in micro-CPM (i64 sums stay exact
    /// where f64 accumulation would drift at 10^6-user volumes).
    pub cleartext_micros: i64,
    /// Detections per exchange ([`Adx::index`]-indexed).
    pub by_adx: Vec<u64>,
    /// MoPub cleartext prices per IAB stratum ([`IabCategory::index`]-
    /// indexed) — the historical side of the §6.2 time-shift fit.
    pub mopub_iab_prices: Vec<PriceHist>,
}

impl DetectionSummary {
    /// Folds one detection's observable facts in. `iab`/`price` mirror
    /// the fields of the enriched detection.
    pub fn record(
        &mut self,
        adx: Adx,
        visibility: PriceVisibility,
        cleartext_cpm: Option<Cpm>,
        iab: Option<IabCategory>,
    ) {
        if self.by_adx.is_empty() {
            self.by_adx = vec![0; Adx::ALL.len()];
            self.mopub_iab_prices = vec![PriceHist::default(); IabCategory::ALL.len()];
        }
        self.total += 1;
        self.by_adx[adx.index()] += 1;
        match visibility {
            PriceVisibility::Cleartext => self.cleartext += 1,
            PriceVisibility::Encrypted => self.encrypted += 1,
        }
        if let Some(p) = cleartext_cpm {
            self.cleartext_micros = self.cleartext_micros.saturating_add(p.micros());
            if adx == Adx::MoPub {
                if let Some(iab) = iab {
                    self.mopub_iab_prices[iab.index()].record(p);
                }
            }
        }
    }

    /// Mean cleartext price in CPM.
    pub fn mean_cleartext_cpm(&self) -> Option<f64> {
        (self.cleartext > 0)
            .then(|| self.cleartext_micros as f64 / 1_000_000.0 / self.cleartext as f64)
    }

    /// Pooled MoPub cleartext histogram across every IAB stratum.
    pub fn mopub_all_prices(&self) -> PriceHist {
        let mut all = PriceHist::default();
        for h in &self.mopub_iab_prices {
            all.merge(h);
        }
        all
    }

    /// Folds another summary in (the shard merge). Commutative and
    /// associative: any merge tree yields the same summary.
    pub fn merge(&mut self, other: &DetectionSummary) {
        if other.by_adx.is_empty() {
            return;
        }
        if self.by_adx.is_empty() {
            self.by_adx = vec![0; Adx::ALL.len()];
            self.mopub_iab_prices = vec![PriceHist::default(); IabCategory::ALL.len()];
        }
        self.total += other.total;
        self.cleartext += other.cleartext;
        self.encrypted += other.encrypted;
        self.cleartext_micros = self.cleartext_micros.saturating_add(other.cleartext_micros);
        for (a, b) in self.by_adx.iter_mut().zip(&other.by_adx) {
            *a += b;
        }
        for (a, b) in self
            .mopub_iab_prices
            .iter_mut()
            .zip(&other.mopub_iab_prices)
        {
            a.merge(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpm(f: f64) -> Cpm {
        Cpm::from_f64(f)
    }

    #[test]
    fn hist_median_is_bin_midpoint() {
        let mut h = PriceHist::default();
        assert_eq!(h.median(), None);
        for p in [0.50, 1.00, 2.00] {
            h.record(cpm(p));
        }
        // Middle observation is 1.00 → bin [1.00, 1.01) midpoint.
        let m = h.median().unwrap();
        assert!((m - 1.005).abs() < 1e-9, "median {m}");
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn hist_overflow_and_negative_clamp() {
        let mut h = PriceHist::default();
        h.record(cpm(1_000_000.0)); // overflow bin
        h.record(Cpm::from_micros(-5)); // clamps to bin 0
        assert_eq!(h.count(), 2);
        assert!(h.median().is_some());
    }

    #[test]
    fn summary_merge_matches_single_pass() {
        let mut whole = DetectionSummary::default();
        let mut parts = [DetectionSummary::default(), DetectionSummary::default()];
        let detections = [
            (Adx::MoPub, Some(cpm(1.2)), Some(IabCategory::Sports)),
            (Adx::MoPub, Some(cpm(0.4)), Some(IabCategory::News)),
            (Adx::DoubleClick, None, None),
            (Adx::MoPub, Some(cpm(2.0)), None),
        ];
        for (i, (adx, price, iab)) in detections.iter().enumerate() {
            let vis = if price.is_some() {
                PriceVisibility::Cleartext
            } else {
                PriceVisibility::Encrypted
            };
            whole.record(*adx, vis, *price, *iab);
            parts[i % 2].record(*adx, vis, *price, *iab);
        }
        let mut merged = DetectionSummary::default();
        // Either merge order gives the whole-pass summary.
        merged.merge(&parts[1]);
        merged.merge(&parts[0]);
        assert_eq!(merged, whole);
        assert_eq!(merged.total, 4);
        assert_eq!(merged.cleartext, 3);
        assert_eq!(merged.encrypted, 1);
        assert_eq!(merged.by_adx[Adx::MoPub.index()], 3);
        // Only IAB-categorised MoPub cleartext prices enter the strata.
        assert_eq!(merged.mopub_all_prices().count(), 2);
        let mean = merged.mean_cleartext_cpm().unwrap();
        assert!((mean - 1.2).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn empty_merges_are_identity() {
        let mut s = DetectionSummary::default();
        s.merge(&DetectionSummary::default());
        assert_eq!(s, DetectionSummary::default());
        let mut t = DetectionSummary::default();
        t.record(
            Adx::Rubicon,
            PriceVisibility::Cleartext,
            Some(cpm(0.8)),
            None,
        );
        let before = t.clone();
        t.merge(&DetectionSummary::default());
        assert_eq!(t, before);
        let mut u = DetectionSummary::default();
        u.merge(&before);
        assert_eq!(u, before);
    }
}
