//! Parallel weblog analysis: shard by user, merge to the serial result.
//!
//! Everything the analyzer computes is either per-user (so a user-sharded
//! pass sees exactly the state a serial pass would) or a commutative
//! aggregate (sums, set unions — promoted to an explicit merge step), and
//! every [`crate::DetectedImpression`] field is a pure function of the
//! request itself. [`analyze_parallel`] therefore reproduces the serial
//! [`crate::WeblogAnalyzer`] pass **exactly** — same detections in the
//! same order, same aggregates — for any worker count.

use crate::analyzer::{AnalyzerReport, DetectedImpression, WeblogAnalyzer};
use crate::userstate::GlobalState;
use yav_exec::ExecConfig;
use yav_weblog::HttpRequest;

/// What a parallel analysis pass produces: the merged report plus the
/// merged global state (which the serial `finish()` drops).
#[derive(Debug, Clone, Default)]
pub struct ParallelAnalysis {
    /// The merged report, detections restored to input order.
    pub report: AnalyzerReport,
    /// The merged panel-wide state.
    pub global: GlobalState,
}

/// Analyzes a collected request stream on `exec`'s worker pool, sharding
/// requests by user id. Returns exactly what a serial
/// [`WeblogAnalyzer`] pass over `requests` returns (see module docs);
/// here even the shard *count* is free to follow the worker count, since
/// the merged result is shard-structure-independent too.
pub fn analyze_parallel(requests: &[HttpRequest], exec: &ExecConfig) -> ParallelAnalysis {
    let _span = yav_telemetry::span!("exec.analyzer.analyze_parallel");
    let shards = exec.threads();
    yav_telemetry::gauge("exec.analyzer.shards").set(shards as f64);

    let parts = yav_exec::par_map_indexed(exec, shards, |shard| {
        let _trace = yav_trace::trace_span!("analyzer.ingest_shard", shard);
        let mut analyzer = WeblogAnalyzer::new();
        // Input index of each detection, for the order-restoring merge.
        let mut order: Vec<usize> = Vec::new();
        for (i, req) in requests.iter().enumerate() {
            if req.user.0 as usize % shards != shard {
                continue;
            }
            if analyzer.ingest(req).is_some() {
                order.push(i);
            }
        }
        let (report, global) = analyzer.finish_with_state();
        (report, global, order)
    });

    let mut out = ParallelAnalysis::default();
    let mut detections: Vec<(usize, DetectedImpression)> = Vec::new();
    for (mut report, global, order) in parts {
        debug_assert_eq!(report.detections.len(), order.len());
        detections.extend(
            order
                .into_iter()
                .zip(std::mem::take(&mut report.detections)),
        );
        out.report.merge(report);
        out.global.merge(global);
    }
    detections.sort_by_key(|&(i, _)| i);
    out.report.detections = detections.into_iter().map(|(_, d)| d).collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_auction::{Market, MarketConfig};
    use yav_weblog::{WeblogConfig, WeblogGenerator};

    fn tiny_requests() -> Vec<HttpRequest> {
        let generator = WeblogGenerator::new(WeblogConfig::tiny());
        let mut market = Market::new(MarketConfig::default());
        generator.collect(&mut market).requests
    }

    fn serial(requests: &[HttpRequest]) -> (AnalyzerReport, GlobalState) {
        let mut analyzer = WeblogAnalyzer::new();
        for r in requests {
            analyzer.ingest(r);
        }
        analyzer.finish_with_state()
    }

    fn assert_reports_equal(a: &AnalyzerReport, b: &AnalyzerReport) {
        assert_eq!(a.detections, b.detections);
        assert_eq!(a.malformed_nurls, b.malformed_nurls);
        assert_eq!(a.class_counts, b.class_counts);
        assert_eq!(a.monthly_os_requests, b.monthly_os_requests);
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.users_seen, b.users_seen);
        assert_eq!(a.pairs.figure2(), b.pairs.figure2());
        assert_eq!(a.pairs.figure3(), b.pairs.figure3());
    }

    #[test]
    fn parallel_equals_serial_for_any_worker_count() {
        let requests = tiny_requests();
        let (serial_report, serial_global) = serial(&requests);
        assert!(!serial_report.detections.is_empty());
        for threads in [1usize, 2, 8] {
            let par = analyze_parallel(&requests, &ExecConfig::with_threads(threads));
            assert_reports_equal(&par.report, &serial_report);
            assert_eq!(
                par.global.publisher_views, serial_global.publisher_views,
                "threads={threads}"
            );
            assert_eq!(par.global.monthly_slots, serial_global.monthly_slots);
            assert_eq!(par.global.campaigns, serial_global.campaigns);
            assert_eq!(
                par.global.dsps.len(),
                serial_global.dsps.len(),
                "threads={threads}"
            );
            for (domain, stats) in &serial_global.dsps {
                let merged = par.global.dsps.get(domain).expect("dsp present");
                assert_eq!(merged.requests, stats.requests);
                assert_eq!(merged.users, stats.users);
                assert_eq!(merged.encrypted, stats.encrypted);
            }
        }
    }

    #[test]
    fn merge_of_empty_reports_is_empty() {
        let mut a = AnalyzerReport::default();
        a.merge(AnalyzerReport::default());
        assert_eq!(a.total_requests, 0);
        assert!(a.detections.is_empty());
    }
}
