//! Blacklist-based traffic classification.
//!
//! Mirrors the paper's use of the Disconnect adblocker list: a static
//! domain blacklist assigns each request to one of five groups. The list
//! here is the analyzer's *own* knowledge — maintained independently of
//! the generator's domain rosters (a cross-crate test pins coverage, the
//! way a real deployment would track list freshness).

use serde::{Deserialize, Serialize};

/// The five §4.1 traffic groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Ad-exchange endpoints, DSP callbacks, beacons, cookie-sync hosts.
    Advertising,
    /// Page-measurement collectors.
    Analytics,
    /// Social-widget hosts.
    Social,
    /// CDNs, font/asset hosts, tag routers.
    ThirdPartyContent,
    /// Everything else (first-party content).
    Rest,
}

impl TrafficClass {
    /// All five groups.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::Advertising,
        TrafficClass::Analytics,
        TrafficClass::Social,
        TrafficClass::ThirdPartyContent,
        TrafficClass::Rest,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Advertising => "Advertising",
            TrafficClass::Analytics => "Analytics",
            TrafficClass::Social => "Social",
            TrafficClass::ThirdPartyContent => "3rd party content",
            TrafficClass::Rest => "Rest",
        }
    }
}

/// Advertising blacklist: the RTB exchanges' notification/bid domains plus
/// standalone tracker hosts. Matching is suffix-based (any subdomain
/// counts).
const ADVERTISING: [&str; 23] = [
    // Exchange endpoints (kept in sync with the RTB macro list).
    "mopub.com",
    "openx.net",
    "rubiconproject.com",
    "doubleclick.net",
    "contextweb.com",
    "adnxs.com",
    "mathtag.com",
    "smaato.net",
    "nexage.com",
    "inmobi.com",
    "flurry.com",
    "mydas.mobi",
    "turn.com",
    "criteo.com",
    "creativecdn.com",
    "smartadserver.com",
    "360yield.com",
    // Beacon / sync trackers.
    "adsight.example",
    "trackwise.example",
    "cookiebridge.example",
    "idgraph.example",
    "bidlink.example",
    "cartreminder.example",
];

const ANALYTICS: [&str; 6] = [
    "metricsrus.example",
    "webmetrica.example",
    "audiencecount.example",
    "pagepulse.example",
    "clickstream.example",
    "speedindex.example",
];

const SOCIAL: [&str; 5] = [
    "facelink.example",
    "chirper.example",
    "fotogrid.example",
    "pinmark.example",
    "vidtube.example",
];

const THIRD_PARTY: [&str; 7] = [
    "fastassets.example",
    "cloudfiles.example",
    "typeserve.example",
    "pixhost.example",
    "tagrouter.example",
    "libmirror.example",
    "streamedge.example",
];

/// True if `host` equals `entry` or is one of its subdomains.
fn matches(host: &str, entry: &str) -> bool {
    host == entry
        || (host.len() > entry.len()
            && host.ends_with(entry)
            && host.as_bytes()[host.len() - entry.len() - 1] == b'.')
}

/// Classifies a host into its traffic group. Case-insensitive
/// convenience over [`classify_domain_lower`] (allocates a lowercased
/// copy; streaming callers lowercase into a reusable buffer instead).
pub fn classify_domain(host: &str) -> TrafficClass {
    classify_domain_lower(&host.to_ascii_lowercase())
}

/// Classifies an already-lowercased host into its traffic group — the
/// allocation-free form of [`classify_domain`].
pub fn classify_domain_lower(host: &str) -> TrafficClass {
    if ADVERTISING.iter().any(|e| matches(host, e)) {
        TrafficClass::Advertising
    } else if ANALYTICS.iter().any(|e| matches(host, e)) {
        TrafficClass::Analytics
    } else if SOCIAL.iter().any(|e| matches(host, e)) {
        TrafficClass::Social
    } else if THIRD_PARTY.iter().any(|e| matches(host, e)) {
        TrafficClass::ThirdPartyContent
    } else {
        TrafficClass::Rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchanges_are_advertising() {
        for adx in yav_types::Adx::ALL {
            assert_eq!(
                classify_domain(adx.domain()),
                TrafficClass::Advertising,
                "{}",
                adx.domain()
            );
        }
    }

    #[test]
    fn generator_rosters_covered() {
        // The analyzer's blacklist must cover the generator's tracker
        // universe — the Disconnect-freshness property.
        for d in yav_weblog::domains::ANALYTICS {
            assert_eq!(classify_domain(d), TrafficClass::Analytics, "{d}");
        }
        for d in yav_weblog::domains::SOCIAL {
            assert_eq!(classify_domain(d), TrafficClass::Social, "{d}");
        }
        for d in yav_weblog::domains::THIRD_PARTY {
            assert_eq!(classify_domain(d), TrafficClass::ThirdPartyContent, "{d}");
        }
        for d in yav_weblog::domains::AD_TRACKERS {
            assert_eq!(classify_domain(d), TrafficClass::Advertising, "{d}");
        }
    }

    #[test]
    fn suffix_matching_is_label_safe() {
        assert_eq!(
            classify_domain("cpp.imp.mpx.mopub.com"),
            TrafficClass::Advertising
        );
        assert_eq!(classify_domain("MOPUB.COM"), TrafficClass::Advertising);
        // "notmopub.com" must NOT match "mopub.com".
        assert_eq!(classify_domain("notmopub.com"), TrafficClass::Rest);
        assert_eq!(
            classify_domain("mopub.com.evil.example"),
            TrafficClass::Rest
        );
    }

    #[test]
    fn publishers_are_rest() {
        assert_eq!(
            classify_domain("www.dailynoticias7.example"),
            TrafficClass::Rest
        );
        assert_eq!(
            classify_domain("api.com.superdeporte.app3"),
            TrafficClass::Rest
        );
    }
}
