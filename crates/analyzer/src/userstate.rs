//! Per-user evolving state for online feature extraction.
//!
//! Table 4's "user" features are all *historical* aggregates — counts of
//! requests, beacons, cookie syncs, publishers, bytes, durations, the
//! interest profile inferred from browsing so far. [`UserState`] folds
//! each request in O(1) and can be snapshotted whenever an impression
//! needs a feature vector.

use std::collections::{BTreeMap, BTreeSet};
use yav_types::{Adx, City, IabCategory};

/// The analyzer's running knowledge about one user.
#[derive(Debug, Clone, Default)]
pub struct UserState {
    /// Total HTTP requests seen.
    pub requests: u64,
    /// Total response bytes.
    pub bytes: u64,
    /// Total request duration (ms).
    pub duration_ms: u64,
    /// Web-beacon (tracking pixel) requests.
    pub beacons: u64,
    /// Cookie-sync redirects.
    pub cookie_syncs: u64,
    /// Distinct publishers visited.
    pub publishers: BTreeSet<String>,
    /// Distinct cities observed (from geo-coded IPs).
    pub cities: BTreeSet<City>,
    /// Requests per city (the location-history features of Table 4).
    pub city_counts: [u64; 10],
    /// Most recent city.
    pub current_city: Option<City>,
    /// Requests per hour-of-day.
    pub hourly: [u64; 24],
    /// Requests per day-of-week.
    pub daily: [u64; 7],
    /// Content views per IAB category (the raw interest profile).
    pub iab_views: [u64; 18],
    /// RTB impressions detected per exchange.
    pub adx_impressions: [u64; 17],
    /// Cleartext charge prices seen (count, sum, sum of squares — CPM).
    pub clear_prices: (u64, f64, f64),
    /// Encrypted charge-price notifications seen.
    pub encrypted_seen: u64,
    /// App-originated requests.
    pub app_requests: u64,
    /// Distinct active days.
    pub active_days: BTreeSet<i64>,
}

impl UserState {
    /// Fresh state.
    pub fn new() -> UserState {
        UserState::default()
    }

    /// Folds one generic request's transport facts.
    pub fn record_request(
        &mut self,
        time: yav_types::SimTime,
        bytes: u32,
        duration_ms: u32,
        in_app: bool,
        city: Option<City>,
    ) {
        self.requests += 1;
        self.bytes += bytes as u64;
        self.duration_ms += duration_ms as u64;
        self.hourly[time.hour() as usize] += 1;
        self.daily[time.day_of_week().index()] += 1;
        self.active_days
            .insert(time.minutes() / yav_types::MINUTES_PER_DAY);
        if in_app {
            self.app_requests += 1;
        }
        if let Some(c) = city {
            self.cities.insert(c);
            self.city_counts[c.index()] += 1;
            self.current_city = Some(c);
        }
    }

    /// Folds a visited publisher (content request). The membership probe
    /// before the insert keeps revisits (the steady-state case) free of
    /// heap traffic — the owned key is only built for a first visit.
    pub fn record_publisher(&mut self, host: &str, iab: Option<IabCategory>) {
        if !self.publishers.contains(host) {
            self.publishers.insert(host.to_owned());
        }
        if let Some(c) = iab {
            self.iab_views[c.index()] += 1;
        }
    }

    /// Folds a web beacon.
    pub fn record_beacon(&mut self) {
        self.beacons += 1;
    }

    /// Folds a cookie-sync.
    pub fn record_cookie_sync(&mut self) {
        self.cookie_syncs += 1;
    }

    /// Folds a detected impression's observables.
    pub fn record_impression(&mut self, adx: Adx, cleartext_cpm: Option<f64>) {
        self.adx_impressions[adx.index()] += 1;
        match cleartext_cpm {
            Some(p) => {
                let (n, s, ss) = self.clear_prices;
                self.clear_prices = (n + 1, s + p, ss + p * p);
            }
            None => self.encrypted_seen += 1,
        }
    }

    /// The inferred interest profile: per-IAB weights summing to 1
    /// (all-zero for a user with no categorised views yet).
    pub fn interest_profile(&self) -> [f64; 18] {
        let total: u64 = self.iab_views.iter().sum();
        let mut out = [0.0f64; 18];
        if total == 0 {
            return out;
        }
        for (i, &v) in self.iab_views.iter().enumerate() {
            out[i] = v as f64 / total as f64;
        }
        out
    }

    /// Mean cleartext price seen so far (NaN if none).
    pub fn mean_clear_price(&self) -> f64 {
        let (n, s, _) = self.clear_prices;
        if n == 0 {
            f64::NAN
        } else {
            s / n as f64
        }
    }

    /// Std of cleartext prices seen so far (0 if fewer than 2).
    pub fn std_clear_price(&self) -> f64 {
        let (n, s, ss) = self.clear_prices;
        if n < 2 {
            return 0.0;
        }
        let mean = s / n as f64;
        ((ss / n as f64 - mean * mean).max(0.0)).sqrt()
    }
}

/// Panel-wide evolving state: advertiser (DSP) aggregates, campaign
/// popularity, publisher view counts — the Table-4 "ad" features that are
/// historical but not per-user.
#[derive(Debug, Clone, Default)]
pub struct GlobalState {
    /// Per-DSP-domain aggregates. Ordered maps throughout: shard merges
    /// and any future serialization iterate in key order, so output is
    /// structurally independent of insertion (and thread) order.
    pub dsps: BTreeMap<String, DspStats>,
    /// Notifications seen per campaign wire-id.
    pub campaigns: BTreeMap<String, u64>,
    /// Content views per publisher host.
    pub publisher_views: BTreeMap<String, u64>,
    /// Detected impressions per publisher name (as echoed in nURLs).
    pub publisher_imps: BTreeMap<String, u64>,
    /// Detected impressions per ad-slot size, per calendar month index
    /// (0-based within 2015; later months clamp to 11).
    pub monthly_slots: [[u64; 19]; 12],
}

/// Aggregates about one advertiser-side bidder (keyed by callback domain).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DspStats {
    /// Notifications observed.
    pub requests: u64,
    /// Total notification bytes.
    pub bytes: u64,
    /// Total notification duration (ms).
    pub duration_ms: u64,
    /// Distinct users this bidder reached.
    pub users: BTreeSet<u32>,
    /// Encrypted notifications among `requests`.
    pub encrypted: u64,
}

impl DspStats {
    /// Folds another bidder aggregate into this one (shard merge).
    pub fn merge(&mut self, other: DspStats) {
        self.requests += other.requests;
        self.bytes += other.bytes;
        self.duration_ms += other.duration_ms;
        self.users.extend(other.users);
        self.encrypted += other.encrypted;
    }
}

impl GlobalState {
    /// Folds another global state into this one. Every aggregate is a sum
    /// or a set union, so merging per-shard states in any order yields
    /// the state a serial pass over the union of their inputs would have
    /// built.
    pub fn merge(&mut self, other: GlobalState) {
        for (domain, stats) in other.dsps {
            self.dsps.entry(domain).or_default().merge(stats);
        }
        for (campaign, n) in other.campaigns {
            *self.campaigns.entry(campaign).or_insert(0) += n;
        }
        for (host, n) in other.publisher_views {
            *self.publisher_views.entry(host).or_insert(0) += n;
        }
        for (name, n) in other.publisher_imps {
            *self.publisher_imps.entry(name).or_insert(0) += n;
        }
        for (mine, theirs) in self.monthly_slots.iter_mut().zip(other.monthly_slots) {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += b;
            }
        }
    }

    /// Month bucket (0–11) for the monthly slot table.
    pub fn month_bucket(time: yav_types::SimTime) -> usize {
        if time.year() <= 2015 {
            time.month().index()
        } else {
            11
        }
    }

    /// Average notifications per reached user for a bidder (0 if unseen).
    pub fn dsp_avg_reqs_per_user(&self, domain: &str) -> f64 {
        match self.dsps.get(domain) {
            Some(s) if !s.users.is_empty() => s.requests as f64 / s.users.len() as f64,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_types::SimTime;

    #[test]
    fn aggregates_fold() {
        let mut s = UserState::new();
        let t = SimTime::from_ymd_hm(2015, 3, 2, 9, 30); // Monday 09:30
        s.record_request(t, 1000, 50, false, Some(City::Madrid));
        s.record_request(t.plus_minutes(5), 500, 25, true, Some(City::Madrid));
        assert_eq!(s.requests, 2);
        assert_eq!(s.bytes, 1500);
        assert_eq!(s.duration_ms, 75);
        assert_eq!(s.app_requests, 1);
        assert_eq!(s.hourly[9], 2);
        assert_eq!(s.daily[0], 2);
        assert_eq!(s.cities.len(), 1);
        assert_eq!(s.active_days.len(), 1);
    }

    #[test]
    fn interest_profile_normalises() {
        let mut s = UserState::new();
        assert_eq!(s.interest_profile(), [0.0; 18]);
        s.record_publisher("a", Some(IabCategory::Sports));
        s.record_publisher("b", Some(IabCategory::Sports));
        s.record_publisher("c", Some(IabCategory::News));
        let p = s.interest_profile();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[IabCategory::Sports.index()] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.publishers.len(), 3);
    }

    #[test]
    fn price_moments() {
        let mut s = UserState::new();
        assert!(s.mean_clear_price().is_nan());
        s.record_impression(Adx::MoPub, Some(1.0));
        s.record_impression(Adx::MoPub, Some(3.0));
        s.record_impression(Adx::OpenX, None);
        assert_eq!(s.mean_clear_price(), 2.0);
        assert_eq!(s.std_clear_price(), 1.0);
        assert_eq!(s.encrypted_seen, 1);
        assert_eq!(s.adx_impressions[Adx::MoPub.index()], 2);
    }
}
