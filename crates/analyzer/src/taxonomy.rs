//! Publisher content taxonomy.
//!
//! The paper labels each visited website with IAB categories by querying
//! Google AdWords' content classification. Our stand-in classifies a
//! publisher domain by its content keywords — the synthetic universe names
//! publishers after their topic (e.g. `midesporte12.example`), exactly the
//! signal a real content classifier would extract from the page itself.

use yav_types::IabCategory;

/// Topic keywords → IAB category. Order matters only for overlapping
/// keywords (none overlap here).
const KEYWORDS: [(&str, IabCategory); 18] = [
    ("noticias", IabCategory::News),
    // "negocios" must outrank its substring "ocio".
    ("negocios", IabCategory::Business),
    ("ocio", IabCategory::ArtsEntertainment),
    ("deporte", IabCategory::Sports),
    ("tec", IabCategory::Technology),
    ("aficion", IabCategory::Hobbies),
    ("compras", IabCategory::Shopping),
    ("viajes", IabCategory::Travel),
    ("cocina", IabCategory::FoodDrink),
    ("moda", IabCategory::StyleFashion),
    ("salud", IabCategory::Health),
    ("motor", IabCategory::Automotive),
    ("gente", IabCategory::Society),
    ("hogar", IabCategory::HomeGarden),
    ("finanzas", IabCategory::PersonalFinance),
    ("aula", IabCategory::Education),
    ("empleo", IabCategory::Careers),
    ("ciencia", IabCategory::Science),
];

/// Classifies a publisher host (or app bundle name) into an IAB category.
/// Returns `None` when no topic keyword matches — the analyzer treats
/// those as uncategorised, as AdWords does for unknown sites.
pub fn categorize(host: &str) -> Option<IabCategory> {
    KEYWORDS
        .iter()
        .find(|(kw, _)| contains_ascii_ci(host, kw))
        .map(|&(_, iab)| iab)
}

/// ASCII case-insensitive substring probe (`needle` already lowercase).
/// Scanning in place keeps `categorize` off the heap — it runs for every
/// content request in the analyzer's ingest loop, and a lowercased copy
/// of the host would be a per-event allocation.
fn contains_ascii_ci(haystack: &str, needle: &str) -> bool {
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    h.len() >= n.len() && h.windows(n.len()).any(|w| w.eq_ignore_ascii_case(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_universe_fully_categorised() {
        let u = yav_weblog::PublisherUniverse::build(1, 400, 150);
        for p in u.all() {
            let got = categorize(&p.name);
            assert_eq!(got, Some(p.iab), "publisher {}", p.name);
        }
    }

    #[test]
    fn unknown_hosts_none() {
        assert_eq!(categorize("www.example.com"), None);
        assert_eq!(categorize("cdn.fastassets.example"), None);
    }

    #[test]
    fn subdomains_and_case() {
        assert_eq!(
            categorize("WWW.ELDEPORTE5.EXAMPLE"),
            Some(IabCategory::Sports)
        );
        assert_eq!(
            categorize("api.com.minoticias.app3"),
            Some(IabCategory::News)
        );
    }
}
