//! User-agent fingerprinting (§4.3).
//!
//! The paper parses the `User-Agent` header to classify traffic by
//! operating system, hardware class, and whether a request came from a
//! native app or a mobile browser — the app case leaks process-VM /
//! kernel fingerprints (Dalvik, ART, Darwin/CFNetwork).

use serde::{Deserialize, Serialize};
use yav_types::{DeviceType, InteractionType, Os};

/// The facts a user-agent string leaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UaFingerprint {
    /// Operating system.
    pub os: Os,
    /// Hardware class.
    pub device: DeviceType,
    /// Native app vs web browser.
    pub interaction: InteractionType,
}

/// Parses a user-agent string. Unknown strings fall back to
/// `Other`/`Smartphone`/`MobileWeb` — the analyzer must classify every
/// request, not just well-formed ones.
pub fn parse_user_agent(ua: &str) -> UaFingerprint {
    let lower = ua.to_ascii_lowercase();

    // App-side fingerprints first: process VMs and HTTP stacks.
    let in_app = lower.contains("dalvik")
        || lower.contains("cfnetwork")
        || lower.contains("darwin")
        || lower.contains("nativehost")
        || lower.contains("genericmobileapp");

    let os = if lower.contains("android") || lower.contains("dalvik") {
        Os::Android
    } else if lower.contains("iphone")
        || lower.contains("ipad")
        || lower.contains("cfnetwork")
        || lower.contains("darwin")
        || lower.contains("like mac os x")
    {
        Os::Ios
    } else if lower.contains("windows phone") || lower.contains("windowsphone") {
        Os::WindowsMobile
    } else {
        Os::Other
    };

    let device = if lower.contains("ipad") || lower.contains("tablet") {
        DeviceType::Tablet
    } else if lower.contains("windows nt") || lower.contains("macintosh") {
        DeviceType::Pc
    } else {
        DeviceType::Smartphone
    };

    UaFingerprint {
        os,
        device,
        interaction: if in_app {
            InteractionType::MobileApp
        } else {
            InteractionType::MobileWeb
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn android_web() {
        let fp = parse_user_agent(
            "Mozilla/5.0 (Linux; Android 5.1; SM-G900 Build/LMY47X) AppleWebKit/537.36 Chrome/43.0 Mobile Safari/537.36",
        );
        assert_eq!(fp.os, Os::Android);
        assert_eq!(fp.interaction, InteractionType::MobileWeb);
        assert_eq!(fp.device, DeviceType::Smartphone);
    }

    #[test]
    fn android_app_via_dalvik() {
        let fp = parse_user_agent("Dalvik/2.1.0 (Linux; U; Android 5.1; SM-G910)");
        assert_eq!(fp.os, Os::Android);
        assert_eq!(fp.interaction, InteractionType::MobileApp);
    }

    #[test]
    fn ios_app_via_darwin() {
        let fp = parse_user_agent("App/3 CFNetwork/711.3 Darwin/14.0.0");
        assert_eq!(fp.os, Os::Ios);
        assert_eq!(fp.interaction, InteractionType::MobileApp);
    }

    #[test]
    fn ipad_is_tablet() {
        let fp = parse_user_agent(
            "Mozilla/5.0 (iPad; CPU iPhone OS 8_2 like Mac OS X) AppleWebKit/600.1 Version/8.0 Mobile Safari/600.1",
        );
        assert_eq!(fp.os, Os::Ios);
        assert_eq!(fp.device, DeviceType::Tablet);
    }

    #[test]
    fn windows_phone() {
        let fp = parse_user_agent(
            "Mozilla/5.0 (Windows Phone 8.1; ARM; Trident/7.0; IEMobile/11.0) like Gecko",
        );
        assert_eq!(fp.os, Os::WindowsMobile);
    }

    #[test]
    fn junk_falls_back() {
        let fp = parse_user_agent("curl/7.4");
        assert_eq!(fp.os, Os::Other);
        assert_eq!(fp.device, DeviceType::Smartphone);
        assert_eq!(fp.interaction, InteractionType::MobileWeb);
    }

    #[test]
    fn panel_agents_round_trip() {
        // Every user-agent the panel can emit must be classified back to
        // the user's configured OS/device/channel.
        let panel = yav_weblog::Panel::build(3, 300);
        for u in panel.users() {
            let web = parse_user_agent(&u.web_user_agent());
            assert_eq!(web.os, u.os, "web UA of {:?}", u.id);
            assert_eq!(web.interaction, InteractionType::MobileWeb);
            let app = parse_user_agent(&u.app_user_agent());
            assert_eq!(app.os, u.os, "app UA of {:?}", u.id);
            assert_eq!(app.interaction, InteractionType::MobileApp);
            if u.os == Os::Ios {
                assert_eq!(web.device, u.device, "iOS web UA leaks device class");
            }
        }
    }
}
