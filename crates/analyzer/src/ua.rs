//! User-agent fingerprinting (§4.3).
//!
//! The paper parses the `User-Agent` header to classify traffic by
//! operating system, hardware class, and whether a request came from a
//! native app or a mobile browser — the app case leaks process-VM /
//! kernel fingerprints (Dalvik, ART, Darwin/CFNetwork).

use serde::{Deserialize, Serialize};
use yav_types::{DeviceType, InteractionType, Os};

/// The facts a user-agent string leaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UaFingerprint {
    /// Operating system.
    pub os: Os,
    /// Hardware class.
    pub device: DeviceType,
    /// Native app vs web browser.
    pub interaction: InteractionType,
}

/// ASCII case-insensitive substring probe. `needle` must already be
/// lowercase. Scanning in place keeps [`parse_user_agent`] off the heap
/// — it runs once per request in the analyzer's ingest loop, and a
/// lowercased copy of the header would be the loop's only allocation.
fn has(haystack: &str, needle: &str) -> bool {
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    h.len() >= n.len() && h.windows(n.len()).any(|w| w.eq_ignore_ascii_case(n))
}

/// Parses a user-agent string. Unknown strings fall back to
/// `Other`/`Smartphone`/`MobileWeb` — the analyzer must classify every
/// request, not just well-formed ones.
pub fn parse_user_agent(ua: &str) -> UaFingerprint {
    // App-side fingerprints first: process VMs and HTTP stacks.
    let in_app = has(ua, "dalvik")
        || has(ua, "cfnetwork")
        || has(ua, "darwin")
        || has(ua, "nativehost")
        || has(ua, "genericmobileapp");

    let os = if has(ua, "android") || has(ua, "dalvik") {
        Os::Android
    } else if has(ua, "iphone")
        || has(ua, "ipad")
        || has(ua, "cfnetwork")
        || has(ua, "darwin")
        || has(ua, "like mac os x")
    {
        Os::Ios
    } else if has(ua, "windows phone") || has(ua, "windowsphone") {
        Os::WindowsMobile
    } else {
        Os::Other
    };

    let device = if has(ua, "ipad") || has(ua, "tablet") {
        DeviceType::Tablet
    } else if has(ua, "windows nt") || has(ua, "macintosh") {
        DeviceType::Pc
    } else {
        DeviceType::Smartphone
    };

    UaFingerprint {
        os,
        device,
        interaction: if in_app {
            InteractionType::MobileApp
        } else {
            InteractionType::MobileWeb
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn android_web() {
        let fp = parse_user_agent(
            "Mozilla/5.0 (Linux; Android 5.1; SM-G900 Build/LMY47X) AppleWebKit/537.36 Chrome/43.0 Mobile Safari/537.36",
        );
        assert_eq!(fp.os, Os::Android);
        assert_eq!(fp.interaction, InteractionType::MobileWeb);
        assert_eq!(fp.device, DeviceType::Smartphone);
    }

    #[test]
    fn android_app_via_dalvik() {
        let fp = parse_user_agent("Dalvik/2.1.0 (Linux; U; Android 5.1; SM-G910)");
        assert_eq!(fp.os, Os::Android);
        assert_eq!(fp.interaction, InteractionType::MobileApp);
    }

    #[test]
    fn ios_app_via_darwin() {
        let fp = parse_user_agent("App/3 CFNetwork/711.3 Darwin/14.0.0");
        assert_eq!(fp.os, Os::Ios);
        assert_eq!(fp.interaction, InteractionType::MobileApp);
    }

    #[test]
    fn ipad_is_tablet() {
        let fp = parse_user_agent(
            "Mozilla/5.0 (iPad; CPU iPhone OS 8_2 like Mac OS X) AppleWebKit/600.1 Version/8.0 Mobile Safari/600.1",
        );
        assert_eq!(fp.os, Os::Ios);
        assert_eq!(fp.device, DeviceType::Tablet);
    }

    #[test]
    fn windows_phone() {
        let fp = parse_user_agent(
            "Mozilla/5.0 (Windows Phone 8.1; ARM; Trident/7.0; IEMobile/11.0) like Gecko",
        );
        assert_eq!(fp.os, Os::WindowsMobile);
    }

    #[test]
    fn junk_falls_back() {
        let fp = parse_user_agent("curl/7.4");
        assert_eq!(fp.os, Os::Other);
        assert_eq!(fp.device, DeviceType::Smartphone);
        assert_eq!(fp.interaction, InteractionType::MobileWeb);
    }

    #[test]
    fn panel_agents_round_trip() {
        // Every user-agent the panel can emit must be classified back to
        // the user's configured OS/device/channel.
        let panel = yav_weblog::Panel::build(3, 300);
        for u in panel.users() {
            let web = parse_user_agent(&u.web_user_agent());
            assert_eq!(web.os, u.os, "web UA of {:?}", u.id);
            assert_eq!(web.interaction, InteractionType::MobileWeb);
            let app = parse_user_agent(&u.app_user_agent());
            assert_eq!(app.os, u.os, "app UA of {:?}", u.id);
            assert_eq!(app.interaction, InteractionType::MobileApp);
            if u.os == Os::Ios {
                assert_eq!(web.device, u.device, "iOS web UA leaks device class");
            }
        }
    }
}
