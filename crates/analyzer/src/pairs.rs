//! ADX↔DSP pair tracking and entity-share aggregates (Figures 2 and 3).
//!
//! Figure 2 plots, per month, the portion of distinct (exchange, bidder)
//! pairs whose notifications carry encrypted vs cleartext prices.
//! Figure 3 relates each ad entity's share of all RTB detections to its
//! cumulative share of the *cleartext* prices observed.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use yav_types::{Adx, PriceVisibility, SimTime};

/// Per-month pair and share aggregates.
#[derive(Debug, Clone, Default)]
pub struct PairTracker {
    /// Distinct (adx, dsp-domain, visibility) pairs per month (0-based
    /// month index within 2015; later months clamp). Ordered, so shard
    /// merges and any enumeration are insertion-order independent.
    monthly_pairs: [BTreeSet<(Adx, String, PriceVisibility)>; 12],
    /// RTB detections per exchange.
    adx_detections: BTreeMap<Adx, u64>,
    /// Cleartext price detections per exchange.
    adx_cleartext: BTreeMap<Adx, u64>,
    /// Reusable membership-probe key: after the first detection of a
    /// pair, re-recording it costs a `contains` lookup and no heap
    /// traffic. `None` only before the first probe and right after a
    /// miss donated the key to the set.
    probe: Option<(Adx, String, PriceVisibility)>,
}

/// One month's Figure-2 point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairShare {
    /// 1-based month number.
    pub month: u32,
    /// Distinct pairs seen with encrypted prices.
    pub encrypted_pairs: usize,
    /// Distinct pairs seen with cleartext prices.
    pub cleartext_pairs: usize,
}

impl PairShare {
    /// Fraction of pairs delivering encrypted prices.
    pub fn encrypted_fraction(&self) -> f64 {
        let total = self.encrypted_pairs + self.cleartext_pairs;
        if total == 0 {
            0.0
        } else {
            self.encrypted_pairs as f64 / total as f64
        }
    }
}

/// One exchange's Figure-3 point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityShare {
    /// Entity name.
    pub name: String,
    /// Share of all RTB detections (x-axis).
    pub rtb_share: f64,
    /// Share of all cleartext prices (summed cumulatively on the y-axis).
    pub cleartext_share: f64,
}

impl PairTracker {
    /// Creates an empty tracker.
    pub fn new() -> PairTracker {
        PairTracker::default()
    }

    /// Records one detected notification.
    pub fn record(
        &mut self,
        time: SimTime,
        adx: Adx,
        dsp_domain: Option<&str>,
        visibility: PriceVisibility,
    ) {
        let bucket = if time.year() <= 2015 {
            time.month().index()
        } else {
            11
        };
        if let Some(dsp) = dsp_domain {
            let key = match self.probe.take() {
                Some((_, mut buf, _)) => {
                    buf.clear();
                    buf.push_str(dsp);
                    (adx, buf, visibility)
                }
                None => (adx, dsp.to_owned(), visibility),
            };
            let set = &mut self.monthly_pairs[bucket];
            if set.contains(&key) {
                self.probe = Some(key);
            } else {
                set.insert(key);
            }
        }
        *self.adx_detections.entry(adx).or_insert(0) += 1;
        if visibility == PriceVisibility::Cleartext {
            *self.adx_cleartext.entry(adx).or_insert(0) += 1;
        }
    }

    /// Folds another tracker into this one (the parallel pipeline's shard
    /// merge). All aggregates are unions or sums, so merge order never
    /// affects the result.
    pub fn merge(&mut self, other: PairTracker) {
        for (mine, theirs) in self.monthly_pairs.iter_mut().zip(other.monthly_pairs) {
            mine.extend(theirs);
        }
        for (adx, n) in other.adx_detections {
            *self.adx_detections.entry(adx).or_insert(0) += n;
        }
        for (adx, n) in other.adx_cleartext {
            *self.adx_cleartext.entry(adx).or_insert(0) += n;
        }
    }

    /// The Figure-2 series: per month, encrypted vs cleartext pair counts.
    pub fn figure2(&self) -> Vec<PairShare> {
        (0..12)
            .map(|m| {
                let enc = self.monthly_pairs[m]
                    .iter()
                    .filter(|(_, _, v)| *v == PriceVisibility::Encrypted)
                    .count();
                let clear = self.monthly_pairs[m].len() - enc;
                PairShare {
                    month: m as u32 + 1,
                    encrypted_pairs: enc,
                    cleartext_pairs: clear,
                }
            })
            .collect()
    }

    /// The Figure-3 series: entities sorted by RTB share (descending),
    /// with their cleartext-price shares.
    pub fn figure3(&self) -> Vec<EntityShare> {
        let total_rtb: u64 = self.adx_detections.values().sum();
        let total_clear: u64 = self.adx_cleartext.values().sum();
        let mut out: Vec<EntityShare> = self
            .adx_detections
            .iter()
            .map(|(&adx, &n)| EntityShare {
                name: adx.name().to_owned(),
                rtb_share: if total_rtb > 0 {
                    n as f64 / total_rtb as f64
                } else {
                    0.0
                },
                cleartext_share: if total_clear > 0 {
                    self.adx_cleartext.get(&adx).copied().unwrap_or(0) as f64 / total_clear as f64
                } else {
                    0.0
                },
            })
            .collect();
        out.sort_by(|a, b| b.rtb_share.total_cmp(&a.rtb_share));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(month: u32) -> SimTime {
        SimTime::from_ymd_hm(2015, month, 10, 12, 0)
    }

    #[test]
    fn pairs_deduplicate_within_month() {
        let mut p = PairTracker::new();
        for _ in 0..5 {
            p.record(
                t(1),
                Adx::MoPub,
                Some("mediamath.com"),
                PriceVisibility::Cleartext,
            );
        }
        p.record(
            t(1),
            Adx::MoPub,
            Some("appnexus.com"),
            PriceVisibility::Cleartext,
        );
        p.record(
            t(1),
            Adx::DoubleClick,
            Some("mediamath.com"),
            PriceVisibility::Encrypted,
        );
        let f2 = p.figure2();
        assert_eq!(f2[0].cleartext_pairs, 2);
        assert_eq!(f2[0].encrypted_pairs, 1);
        assert!((f2[0].encrypted_fraction() - 1.0 / 3.0).abs() < 1e-12);
        // Other months untouched.
        assert_eq!(f2[5].cleartext_pairs + f2[5].encrypted_pairs, 0);
    }

    #[test]
    fn figure3_shares_sum_to_one() {
        let mut p = PairTracker::new();
        for _ in 0..70 {
            p.record(t(2), Adx::MoPub, Some("x.com"), PriceVisibility::Cleartext);
        }
        for _ in 0..30 {
            p.record(
                t(2),
                Adx::DoubleClick,
                Some("x.com"),
                PriceVisibility::Encrypted,
            );
        }
        let f3 = p.figure3();
        let rtb_total: f64 = f3.iter().map(|e| e.rtb_share).sum();
        let clear_total: f64 = f3.iter().map(|e| e.cleartext_share).sum();
        assert!((rtb_total - 1.0).abs() < 1e-12);
        assert!((clear_total - 1.0).abs() < 1e-12);
        // MoPub leads and owns all cleartext.
        assert_eq!(f3[0].name, "MoPub");
        assert!((f3[0].cleartext_share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pairs_without_dsp_still_count_shares() {
        let mut p = PairTracker::new();
        p.record(t(3), Adx::Adnxs, None, PriceVisibility::Cleartext);
        assert_eq!(p.figure2()[2].cleartext_pairs, 0);
        assert_eq!(p.figure3().len(), 1);
    }

    #[test]
    fn late_times_clamp_to_december() {
        let mut p = PairTracker::new();
        let t2016 = SimTime::from_ymd_hm(2016, 3, 1, 0, 0);
        p.record(t2016, Adx::MoPub, Some("d"), PriceVisibility::Cleartext);
        assert_eq!(p.figure2()[11].cleartext_pairs, 1);
    }
}
