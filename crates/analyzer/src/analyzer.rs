//! The streaming analyzer: orchestration of classification, detection,
//! enrichment and feature extraction.

use crate::classify::{classify_domain_lower, TrafficClass};
use crate::features::{self, FeatureSchema, NurlTransport};
use crate::geoip::GeoDb;
use crate::pairs::PairTracker;
use crate::summary::DetectionSummary;
use crate::taxonomy;
use crate::ua::parse_user_agent;
use crate::userstate::{GlobalState, UserState};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use yav_nurl::fields::PricePayload;
use yav_nurl::urlref::decoded_len;
use yav_nurl::{template, UrlRef, UrlScratch};
use yav_types::{
    AdSlotSize, Adx, City, Cpm, DeviceType, IabCategory, InteractionType, Os, PriceVisibility,
    SimTime, UserId,
};
use yav_weblog::HttpRequest;

/// One detected winning-price notification, fully enriched — the
/// analyzer's unit of output. All fields are *observations*: anything the
/// notification did not echo is `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectedImpression {
    /// When the notification fired.
    pub time: SimTime,
    /// The panel user who rendered the ad.
    pub user: UserId,
    /// The exchange that emitted the notification.
    pub adx: Adx,
    /// The winning bidder's callback domain, if echoed.
    pub dsp_domain: Option<String>,
    /// Whether the price was readable.
    pub visibility: PriceVisibility,
    /// The cleartext charge price, when readable.
    pub cleartext_cpm: Option<Cpm>,
    /// The encrypted token's wire form, when opaque.
    pub encrypted_token_wire: Option<String>,
    /// Auctioned slot size, when echoed.
    pub slot: Option<AdSlotSize>,
    /// Publisher name, when echoed.
    pub publisher: Option<String>,
    /// Publisher IAB category (from the content taxonomy).
    pub iab: Option<IabCategory>,
    /// User's city (reverse geo-coded).
    pub city: Option<City>,
    /// Device OS (user agent).
    pub os: Os,
    /// Device class (user agent).
    pub device: DeviceType,
    /// App vs mobile web (user agent).
    pub interaction: InteractionType,
    /// Campaign wire-id, when echoed.
    pub campaign_wire: Option<String>,
    /// Auction latency (ms), when echoed.
    pub latency_ms: Option<u32>,
}

/// A detection plus its 288-feature snapshot (state *before* folding the
/// impression itself, i.e. "history up to now").
#[derive(Debug, Clone, PartialEq)]
pub struct ImpressionRecord {
    /// The enriched detection.
    pub meta: DetectedImpression,
    /// The Table-4 feature vector.
    pub features: Vec<f64>,
}

/// What the analyzer retains about individual detections.
///
/// [`Retention::Full`] keeps every enriched [`DetectedImpression`] in the
/// report (the default, and what every figure experiment expects).
/// [`Retention::Bounded`] drops the list and relies on the always-recorded
/// [`DetectionSummary`] — constant memory per analyzer, which is what lets
/// the streaming world builder run million-user populations. Every other
/// aggregate (class counts, pairs, state folds, returned
/// [`ImpressionRecord`]s) is identical in both modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Retention {
    /// Keep the full detection list (default).
    #[default]
    Full,
    /// Keep only constant-size aggregates; `report.detections` stays
    /// empty.
    Bounded,
}

/// Aggregates the analyzer keeps beyond the detection list.
#[derive(Debug, Clone, Default)]
pub struct AnalyzerReport {
    /// Every detection, in ingestion order (empty under
    /// [`Retention::Bounded`]).
    pub detections: Vec<DetectedImpression>,
    /// Constant-size aggregates over all detections (recorded in both
    /// retention modes).
    pub summary: DetectionSummary,
    /// Notifications that matched an exchange endpoint but were malformed.
    pub malformed_nurls: u64,
    /// Requests per traffic class.
    pub class_counts: BTreeMap<TrafficClass, u64>,
    /// ADX↔DSP pair and entity-share aggregates (Figures 2–3).
    pub pairs: PairTracker,
    /// All requests per OS per month (the Figure-9 denominator).
    pub monthly_os_requests: [[u64; 4]; 12],
    /// Total requests ingested.
    pub total_requests: u64,
    /// Distinct users seen.
    pub users_seen: usize,
}

impl AnalyzerReport {
    /// Folds another report into this one (the parallel pipeline's shard
    /// merge). Detections are *appended* in the other report's order;
    /// callers needing the canonical global order re-sort afterwards.
    /// `users_seen` sums, which is exact when shards partition users (the
    /// only way the parallel pipeline shards).
    pub fn merge(&mut self, other: AnalyzerReport) {
        self.detections.extend(other.detections);
        self.summary.merge(&other.summary);
        self.malformed_nurls += other.malformed_nurls;
        for (class, n) in other.class_counts {
            *self.class_counts.entry(class).or_insert(0) += n;
        }
        self.pairs.merge(other.pairs);
        for (mine, theirs) in self
            .monthly_os_requests
            .iter_mut()
            .zip(other.monthly_os_requests)
        {
            for (a, b) in mine.iter_mut().zip(theirs) {
                *a += b;
            }
        }
        self.total_requests += other.total_requests;
        self.users_seen += other.users_seen;
    }
}

/// The streaming Weblog Ads Analyzer.
pub struct WeblogAnalyzer {
    geo: GeoDb,
    // yav-lint: allow(nondet-iteration) — keyed lookups only (entry/get/len), never iterated, so order cannot reach output; O(1) access on the per-request hot path
    users: HashMap<UserId, UserState>,
    global: GlobalState,
    report: AnalyzerReport,
    retention: Retention,
    /// Reusable lowercased-host buffer (classification is
    /// case-insensitive; the borrowed parser keeps the raw case).
    host_lower: String,
    /// Reusable percent-decode scratch for notification parsing.
    url_scratch: UrlScratch,
    /// Reusable DSP-domain render buffer (the quiet path keys bidder
    /// aggregates without materialising a `String` per notification).
    dsp_buf: String,
    /// Reusable campaign-wire render buffer (same role as `dsp_buf`).
    wire_buf: String,
}

impl Default for WeblogAnalyzer {
    fn default() -> Self {
        WeblogAnalyzer::new()
    }
}

impl WeblogAnalyzer {
    /// Creates an analyzer with the built-in blacklist, geo database and
    /// taxonomy.
    pub fn new() -> WeblogAnalyzer {
        WeblogAnalyzer::with_retention(Retention::Full)
    }

    /// Creates an analyzer with an explicit [`Retention`] policy. The
    /// streaming world builder uses [`Retention::Bounded`] so per-shard
    /// analyzer memory stays constant at any population size.
    pub fn with_retention(retention: Retention) -> WeblogAnalyzer {
        WeblogAnalyzer {
            geo: GeoDb::open(),
            // yav-lint: allow(nondet-iteration) — same map as the field above: lookup-only, never iterated
            users: HashMap::new(),
            global: GlobalState::default(),
            report: AnalyzerReport::default(),
            retention,
            host_lower: String::new(),
            url_scratch: UrlScratch::new(),
            dsp_buf: String::new(),
            wire_buf: String::new(),
        }
    }

    /// Ingests one HTTP request. Returns the enriched detection (with its
    /// feature snapshot) when the request was a winning-price
    /// notification.
    pub fn ingest(&mut self, req: &HttpRequest) -> Option<ImpressionRecord> {
        // Borrowed parse: components are subslices of the raw line, no
        // allocation. Validating the query up front keeps the owned
        // parser's accounting — a URL whose query cannot decode is an
        // unparseable line, not ad traffic — and guarantees every later
        // decode of this URL succeeds.
        let url = match UrlRef::parse(&req.url) {
            Ok(url) if url.validate_query().is_ok() => url,
            _ => {
                // Unparseable lines exist in every proxy log; they still
                // count.
                self.report.total_requests += 1;
                return None;
            }
        };

        self.host_lower.clear();
        self.host_lower.push_str(url.host_raw());
        self.host_lower.make_ascii_lowercase();
        let class = classify_domain_lower(&self.host_lower);
        *self.report.class_counts.entry(class).or_insert(0) += 1;
        self.report.total_requests += 1;

        let fp = parse_user_agent(&req.user_agent);
        let city = self.geo.city_of(req.client_ip);
        let month = GlobalState::month_bucket(req.time);
        self.report.monthly_os_requests[month][os_index(fp.os)] += 1;

        let user = self.users.entry(req.user).or_default();
        user.record_request(
            req.time,
            req.bytes,
            req.duration_ms,
            fp.interaction == InteractionType::MobileApp,
            city,
        );

        match class {
            TrafficClass::Rest => {
                // Content request: learn the publisher and the interest.
                let host = normalize_publisher(&self.host_lower);
                if let Some(iab) = taxonomy::categorize(host) {
                    user.record_publisher(host, Some(iab));
                    bump_count(&mut self.global.publisher_views, host);
                } else {
                    user.record_publisher(host, None);
                }
                None
            }
            TrafficClass::Advertising => self.ingest_advertising(req, &url, fp, city),
            _ => None,
        }
    }

    /// Handles an advertising-class request: beacons, cookie syncs, and
    /// the main event — notification URLs.
    fn ingest_advertising(
        &mut self,
        req: &HttpRequest,
        url: &UrlRef<'_>,
        fp: crate::ua::UaFingerprint,
        city: Option<City>,
    ) -> Option<ImpressionRecord> {
        let user = self
            .users
            .get_mut(&req.user)
            .expect("state created in ingest");
        if url.path().ends_with("/b.gif") {
            user.record_beacon();
            return None;
        }
        if url.path().contains("getuid") || url.query_raw("redir").is_some() {
            user.record_cookie_sync();
            return None;
        }

        let fields = match template::parse_borrowed(url, &mut self.url_scratch) {
            Ok(Some(f)) => f,
            Ok(None) => return None, // ad request / other ad traffic
            Err(_) => {
                // Decode errors cannot reach here (`ingest` validated
                // the query), so this is a malformed payload.
                self.report.malformed_nurls += 1;
                yav_trace::trace_instant!("analyzer.malformed_nurl");
                return None;
            }
        };
        yav_trace::trace_instant!("analyzer.detect", fields.adx as u64);

        // Build the enriched detection.
        let visibility = fields.price.visibility();
        let publisher = fields.publisher.clone();
        let iab = publisher.as_deref().and_then(taxonomy::categorize);
        let meta = DetectedImpression {
            time: req.time,
            user: req.user,
            adx: fields.adx,
            dsp_domain: Some(fields.dsp.domain()),
            visibility,
            cleartext_cpm: fields.price.cleartext(),
            encrypted_token_wire: match &fields.price {
                PricePayload::Encrypted(t) => Some(t.to_wire()),
                PricePayload::Cleartext(_) => None,
            },
            slot: fields.slot,
            publisher,
            iab,
            city,
            os: fp.os,
            device: fp.device,
            interaction: fp.interaction,
            campaign_wire: fields.campaign.map(|c| c.wire()),
            latency_ms: fields.latency_ms,
        };

        // Feature snapshot BEFORE folding this impression: history "up to
        // now" (Table 4's phrasing).
        let transport = NurlTransport {
            bytes: req.bytes,
            duration_ms: req.duration_ms,
            param_count: url.query_pairs().count() as u32,
            https: url.is_https(),
            // ASCII lowercasing preserves byte length, so the raw host's
            // length is the normalized host's length.
            host_len: url.host_raw().len() as u32,
            path_depth: url.path().split('/').filter(|s| !s.is_empty()).count() as u32,
            // Decoded lengths without materialising the decoded strings.
            query_len: url
                .query_pairs()
                .map(|(k, v)| decoded_len(k) + decoded_len(v) + 1)
                .sum::<usize>() as u32,
            has_bid_price: fields.bid_price.is_some(),
            has_size: fields.slot.is_some(),
            has_publisher: meta.publisher.is_some(),
            token_len: meta
                .encrypted_token_wire
                .as_ref()
                .map(|t| t.len())
                .unwrap_or(0) as u32,
        };
        let row = features::extract(&meta, &transport, user, &self.global);

        // Fold the impression into every state store.
        user.record_impression(meta.adx, meta.cleartext_cpm.map(|p| p.as_f64()));
        self.report
            .pairs
            .record(req.time, meta.adx, meta.dsp_domain.as_deref(), visibility);
        if let Some(slot) = meta.slot {
            let m = GlobalState::month_bucket(req.time);
            self.global.monthly_slots[m][features::slot_index(slot)] += 1;
        }
        if let Some(c) = &meta.campaign_wire {
            bump_count(&mut self.global.campaigns, c);
        }
        if let Some(p) = &meta.publisher {
            bump_count(&mut self.global.publisher_imps, p);
        }
        if let Some(d) = &meta.dsp_domain {
            fold_dsp_stats(&mut self.global, d, req, visibility);
        }

        self.report
            .summary
            .record(meta.adx, visibility, meta.cleartext_cpm, meta.iab);
        if self.retention == Retention::Full {
            self.report.detections.push(meta.clone());
        }
        Some(ImpressionRecord {
            meta,
            features: row,
        })
    }

    /// Ingests one HTTP request without materialising the per-detection
    /// [`ImpressionRecord`]: every aggregate — class counts, user and
    /// global state, pairs, summary, malformed counts — folds exactly as
    /// [`ingest`] folds it (pinned by `quiet_ingest_folds_identically`),
    /// but the enriched metadata and the 288-feature snapshot are never
    /// built. This is the streaming window loop's path: after warm-up it
    /// touches no heap at all (the detection keys are rendered into
    /// reusable buffers and only first-sight map keys allocate).
    ///
    /// Retention is irrelevant here: a caller that wants
    /// `report.detections` needs the metadata and must use [`ingest`].
    pub fn ingest_quiet(&mut self, req: &HttpRequest) {
        let url = match UrlRef::parse(&req.url) {
            Ok(url) if url.validate_query().is_ok() => url,
            _ => {
                self.report.total_requests += 1;
                return;
            }
        };

        self.host_lower.clear();
        self.host_lower.push_str(url.host_raw());
        self.host_lower.make_ascii_lowercase();
        let class = classify_domain_lower(&self.host_lower);
        *self.report.class_counts.entry(class).or_insert(0) += 1;
        self.report.total_requests += 1;

        let fp = parse_user_agent(&req.user_agent);
        let city = self.geo.city_of(req.client_ip);
        let month = GlobalState::month_bucket(req.time);
        self.report.monthly_os_requests[month][os_index(fp.os)] += 1;

        let user = self.users.entry(req.user).or_default();
        user.record_request(
            req.time,
            req.bytes,
            req.duration_ms,
            fp.interaction == InteractionType::MobileApp,
            city,
        );

        match class {
            TrafficClass::Rest => {
                let host = normalize_publisher(&self.host_lower);
                if let Some(iab) = taxonomy::categorize(host) {
                    user.record_publisher(host, Some(iab));
                    bump_count(&mut self.global.publisher_views, host);
                } else {
                    user.record_publisher(host, None);
                }
            }
            TrafficClass::Advertising => self.ingest_advertising_quiet(req, &url),
            _ => {}
        }
    }

    /// The advertising arm of [`ingest_quiet`]: identical fold order to
    /// [`ingest_advertising`], borrowed payload, no metadata or feature
    /// construction.
    fn ingest_advertising_quiet(&mut self, req: &HttpRequest, url: &UrlRef<'_>) {
        let user = self
            .users
            .get_mut(&req.user)
            .expect("state created in ingest_quiet");
        if url.path().ends_with("/b.gif") {
            user.record_beacon();
            return;
        }
        if url.path().contains("getuid") || url.query_raw("redir").is_some() {
            user.record_cookie_sync();
            return;
        }

        let fields = match template::parse_borrowed_ref(url, &mut self.url_scratch) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(_) => {
                self.report.malformed_nurls += 1;
                yav_trace::trace_instant!("analyzer.malformed_nurl");
                return;
            }
        };
        yav_trace::trace_instant!("analyzer.detect", fields.adx as u64);

        let visibility = fields.price.visibility();
        let cleartext = fields.price.cleartext();
        let iab = fields.publisher.and_then(taxonomy::categorize);
        self.dsp_buf.clear();
        fields.dsp.write_domain(&mut self.dsp_buf);

        // Fold the impression into every state store, in `ingest`'s order.
        user.record_impression(fields.adx, cleartext.map(|p| p.as_f64()));
        self.report
            .pairs
            .record(req.time, fields.adx, Some(&self.dsp_buf), visibility);
        if let Some(slot) = fields.slot {
            let m = GlobalState::month_bucket(req.time);
            self.global.monthly_slots[m][features::slot_index(slot)] += 1;
        }
        if let Some(c) = fields.campaign {
            self.wire_buf.clear();
            c.wire_into(&mut self.wire_buf);
            bump_count(&mut self.global.campaigns, &self.wire_buf);
        }
        if let Some(p) = fields.publisher {
            bump_count(&mut self.global.publisher_imps, p);
        }
        fold_dsp_stats(&mut self.global, &self.dsp_buf, req, visibility);

        self.report
            .summary
            .record(fields.adx, visibility, cleartext, iab);
    }

    /// Finishes the pass and returns the report.
    pub fn finish(self) -> AnalyzerReport {
        self.finish_with_state().0
    }

    /// Finishes the pass, also handing back the global state so shard
    /// analyzers can promote it to a merge step
    /// ([`crate::userstate::GlobalState::merge`]).
    pub fn finish_with_state(mut self) -> (AnalyzerReport, GlobalState) {
        let _trace = yav_trace::trace_span!("analyzer.finish", self.report.total_requests);
        self.report.users_seen = self.users.len();
        (self.report, self.global)
    }

    /// Read access to a user's evolving state (for tests and tools).
    pub fn user_state(&self, user: UserId) -> Option<&UserState> {
        self.users.get(&user)
    }

    /// Read access to the global state.
    pub fn global_state(&self) -> &GlobalState {
        &self.global
    }

    /// The feature schema the analyzer emits.
    pub fn schema(&self) -> &'static FeatureSchema {
        FeatureSchema::get()
    }
}

/// Strips serving prefixes from a content host to get the publisher name
/// as nURLs echo it.
fn normalize_publisher(host: &str) -> &str {
    host.strip_prefix("www.")
        .or_else(|| host.strip_prefix("api."))
        .unwrap_or(host)
}

/// Bumps `map[key]`, materialising the owned key only on first sight —
/// the steady-state fold performs a lookup and no heap traffic.
fn bump_count(map: &mut BTreeMap<String, u64>, key: &str) {
    if let Some(n) = map.get_mut(key) {
        *n += 1;
        return;
    }
    map.insert(key.to_owned(), 1);
}

/// Folds one notification's transport facts into the bidder's aggregate,
/// materialising the owned domain key only on the bidder's first
/// notification.
fn fold_dsp_stats(
    global: &mut GlobalState,
    domain: &str,
    req: &HttpRequest,
    visibility: PriceVisibility,
) {
    if !global.dsps.contains_key(domain) {
        global.dsps.insert(domain.to_owned(), Default::default());
    }
    let stats = global.dsps.get_mut(domain).expect("just ensured");
    stats.requests += 1;
    stats.bytes += req.bytes as u64;
    stats.duration_ms += req.duration_ms as u64;
    stats.users.insert(req.user.0);
    if visibility == PriceVisibility::Encrypted {
        stats.encrypted += 1;
    }
}

/// Dense index for the four OS buckets.
pub fn os_index(os: Os) -> usize {
    match os {
        Os::Android => 0,
        Os::Ios => 1,
        Os::WindowsMobile => 2,
        Os::Other => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yav_auction::{Market, MarketConfig};
    use yav_weblog::{WeblogConfig, WeblogGenerator};

    fn run_tiny() -> (AnalyzerReport, Vec<ImpressionRecord>, yav_weblog::Weblog) {
        let generator = WeblogGenerator::new(WeblogConfig::tiny());
        let mut market = Market::new(MarketConfig::default());
        let log = generator.collect(&mut market);
        let mut analyzer = WeblogAnalyzer::new();
        let mut records = Vec::new();
        for r in &log.requests {
            if let Some(rec) = analyzer.ingest(r) {
                records.push(rec);
            }
        }
        (analyzer.finish(), records, log)
    }

    #[test]
    fn detects_exactly_the_ground_truth_impressions() {
        let (report, records, log) = run_tiny();
        assert_eq!(report.detections.len(), log.truth.len());
        assert_eq!(records.len(), log.truth.len());
        // Detection metadata must agree with ground truth on the
        // *observable* dimensions (time, user, exchange, visibility).
        for (det, truth) in report.detections.iter().zip(&log.truth) {
            assert_eq!(det.time, truth.time);
            assert_eq!(det.user, truth.user);
            assert_eq!(det.adx, truth.adx);
            assert_eq!(det.visibility, truth.visibility);
        }
    }

    #[test]
    fn cleartext_prices_match_ground_truth() {
        let (report, _, log) = run_tiny();
        for (det, truth) in report.detections.iter().zip(&log.truth) {
            match det.visibility {
                PriceVisibility::Cleartext => {
                    assert_eq!(det.cleartext_cpm, Some(truth.charge));
                    assert!(det.encrypted_token_wire.is_none());
                }
                PriceVisibility::Encrypted => {
                    assert!(det.cleartext_cpm.is_none());
                    assert!(det.encrypted_token_wire.is_some());
                }
            }
        }
    }

    #[test]
    fn traffic_classes_all_present() {
        let (report, _, _) = run_tiny();
        for class in TrafficClass::ALL {
            assert!(
                report.class_counts.get(&class).copied().unwrap_or(0) > 0,
                "class {class:?} absent"
            );
        }
        // Rest (content) should dominate raw request counts.
        assert!(
            report.class_counts[&TrafficClass::Rest] > report.class_counts[&TrafficClass::Social]
        );
    }

    #[test]
    fn feature_rows_are_valid() {
        let (_, records, _) = run_tiny();
        for rec in &records {
            assert!(crate::features::validate_row(&rec.features), "bad row");
        }
    }

    #[test]
    fn enrichment_recovers_context() {
        let (report, _, _) = run_tiny();
        // Cities resolve for essentially all detections.
        let with_city = report
            .detections
            .iter()
            .filter(|d| d.city.is_some())
            .count();
        assert_eq!(with_city, report.detections.len());
        // Both channels and at least two OSes appear.
        let apps = report
            .detections
            .iter()
            .filter(|d| d.interaction == InteractionType::MobileApp)
            .count();
        assert!(apps > 0 && apps < report.detections.len());
        let oses: std::collections::HashSet<Os> = report.detections.iter().map(|d| d.os).collect();
        assert!(oses.len() >= 2);
        // Publisher-rich exchanges yield IAB categories.
        assert!(report.detections.iter().any(|d| d.iab.is_some()));
    }

    #[test]
    fn users_and_requests_accounted() {
        let (report, _, log) = run_tiny();
        assert_eq!(report.total_requests, log.requests.len() as u64);
        assert!(report.users_seen > 0);
        assert_eq!(
            report.malformed_nurls, 0,
            "simulator emits well-formed nURLs"
        );
    }

    #[test]
    fn quiet_ingest_folds_identically() {
        // `ingest_quiet` must fold every aggregate exactly as `ingest`
        // does — it only skips building the per-detection record. Drive
        // both over the same log and compare everything observable.
        let generator = WeblogGenerator::new(WeblogConfig::tiny());
        let mut market = Market::new(MarketConfig::default());
        let log = generator.collect(&mut market);
        let mut full = WeblogAnalyzer::with_retention(Retention::Bounded);
        let mut quiet = WeblogAnalyzer::with_retention(Retention::Bounded);
        let mut detections = 0usize;
        for r in &log.requests {
            if full.ingest(r).is_some() {
                detections += 1;
            }
            quiet.ingest_quiet(r);
        }
        assert!(detections > 0, "tiny log must contain notifications");
        let (fr, fg) = full.finish_with_state();
        let (qr, qg) = quiet.finish_with_state();
        assert_eq!(fr.summary, qr.summary);
        assert_eq!(fr.class_counts, qr.class_counts);
        assert_eq!(fr.total_requests, qr.total_requests);
        assert_eq!(fr.users_seen, qr.users_seen);
        assert_eq!(fr.malformed_nurls, qr.malformed_nurls);
        assert_eq!(fr.monthly_os_requests, qr.monthly_os_requests);
        assert_eq!(fr.pairs.figure2(), qr.pairs.figure2());
        assert_eq!(fr.pairs.figure3(), qr.pairs.figure3());
        assert!(qr.detections.is_empty());
        assert_eq!(fg.dsps, qg.dsps);
        assert_eq!(fg.campaigns, qg.campaigns);
        assert_eq!(fg.publisher_views, qg.publisher_views);
        assert_eq!(fg.publisher_imps, qg.publisher_imps);
        assert_eq!(fg.monthly_slots, qg.monthly_slots);
    }

    #[test]
    fn pair_tracker_sees_rising_encryption_on_paper_scale_only() {
        // At tiny scale just assert the tracker populated.
        let (report, _, _) = run_tiny();
        let f2 = report.figure2_nonempty();
        assert!(!f2.is_empty());
    }

    impl AnalyzerReport {
        fn figure2_nonempty(&self) -> Vec<crate::pairs::PairShare> {
            self.pairs
                .figure2()
                .into_iter()
                .filter(|m| m.encrypted_pairs + m.cleartext_pairs > 0)
                .collect()
        }
    }
}
