//! Byte-string codecs: lowercase hex and URL-safe base64.
//!
//! Encrypted price tokens travel inside URL query parameters, so exchanges
//! encode them with the URL-safe base64 alphabet (`-` and `_`, unpadded) —
//! the `rtbwinprice=VLwbi4K2...` shape of Table 1 — or as bare hex
//! (`price=B6A3F3C1...`). Both directions are implemented here with strict
//! validation: a token that fails to decode is *not* an encrypted price.

use std::fmt;

/// Error produced by the decoders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A byte outside the codec alphabet, at the given position.
    InvalidByte(usize),
    /// The input length is impossible for this codec.
    InvalidLength(usize),
    /// The caller's output buffer cannot hold the decoded bytes; carries
    /// the full decoded length the input would produce. Only the `_into`
    /// decoders report this, and only for inputs that are otherwise valid.
    BufferTooSmall(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::InvalidByte(pos) => write!(f, "invalid byte at position {pos}"),
            CodecError::InvalidLength(len) => write!(f, "invalid input length {len}"),
            CodecError::BufferTooSmall(need) => {
                write!(f, "output buffer too small: need {need} bytes")
            }
        }
    }
}

impl std::error::Error for CodecError {}

const HEX: &[u8; 16] = b"0123456789abcdef";

/// Encodes bytes as lowercase hex.
pub fn hex_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    hex_encode_push(data, &mut out);
    out
}

/// Appends the lowercase-hex encoding of `data` to `out` — the
/// allocation-free form used by hot-path renderers.
pub fn hex_encode_push(data: &[u8], out: &mut String) {
    for &b in data {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0x0f) as usize] as char);
    }
}

/// Appends the UPPERCASE-hex encoding of `data` to `out` — the wire
/// shape of hex price tokens (`price=B6A3F3C1…`), without the
/// encode-then-`to_ascii_uppercase` round trip.
pub fn hex_encode_push_upper(data: &[u8], out: &mut String) {
    const HEX_UP: &[u8; 16] = b"0123456789ABCDEF";
    for &b in data {
        out.push(HEX_UP[(b >> 4) as usize] as char);
        out.push(HEX_UP[(b & 0x0f) as usize] as char);
    }
}

fn nibble(b: u8, pos: usize) -> Result<u8, CodecError> {
    match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        b'A'..=b'F' => Ok(b - b'A' + 10),
        _ => Err(CodecError::InvalidByte(pos)),
    }
}

/// Decodes hex (either case) to bytes.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, CodecError> {
    let mut out = vec![0u8; s.len() / 2];
    let n = hex_decode_into(s, &mut out)?;
    debug_assert_eq!(n, out.len());
    Ok(out)
}

/// Decodes hex (either case) into `out` without allocating, returning the
/// decoded length. Validation order and error positions match
/// [`hex_decode`] exactly; an input that is valid but does not fit yields
/// [`CodecError::BufferTooSmall`] with the full decoded length.
pub fn hex_decode_into(s: &str, out: &mut [u8]) -> Result<usize, CodecError> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(CodecError::InvalidLength(bytes.len()));
    }
    let n = bytes.len() / 2;
    for i in 0..n {
        let b = (nibble(bytes[2 * i], 2 * i)? << 4) | nibble(bytes[2 * i + 1], 2 * i + 1)?;
        // Keep validating past the end of `out` so InvalidByte wins over
        // BufferTooSmall at every position, as the allocating decoder would.
        if i < out.len() {
            out[i] = b;
        }
    }
    if n > out.len() {
        return Err(CodecError::BufferTooSmall(n));
    }
    Ok(n)
}

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Encodes bytes with the URL-safe base64 alphabet, unpadded (the form
/// exchanges embed in query strings).
pub fn base64url_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    base64url_encode_push(data, &mut out);
    out
}

/// Appends the unpadded URL-safe base64 encoding of `data` to `out` —
/// the allocation-free form used by hot-path renderers.
pub fn base64url_encode_push(data: &[u8], out: &mut String) {
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        if chunk.len() > 1 {
            out.push(B64[(n >> 6) as usize & 63] as char);
        }
        if chunk.len() > 2 {
            out.push(B64[n as usize & 63] as char);
        }
    }
}

/// Inverse-alphabet table: base64url value per byte, `0xFF` for bytes
/// outside the alphabet. Valid values never set the high bit, so a
/// fixed-width decoder can OR the looked-up values together and test
/// `0x80` once instead of branching per character.
pub(crate) const B64_INV: [u8; 256] = {
    let mut t = [0xFFu8; 256];
    let mut i = 0;
    while i < 64 {
        t[B64[i] as usize] = i as u8;
        i += 1;
    }
    t
};

fn b64_val(b: u8, pos: usize) -> Result<u32, CodecError> {
    match b {
        b'A'..=b'Z' => Ok((b - b'A') as u32),
        b'a'..=b'z' => Ok((b - b'a' + 26) as u32),
        b'0'..=b'9' => Ok((b - b'0' + 52) as u32),
        b'-' => Ok(62),
        b'_' => Ok(63),
        _ => Err(CodecError::InvalidByte(pos)),
    }
}

/// Decodes URL-safe base64 (unpadded; trailing `=` padding is tolerated).
pub fn base64url_decode(s: &str) -> Result<Vec<u8>, CodecError> {
    let trimmed_len = s.trim_end_matches('=').len();
    let cap = trimmed_len / 4 * 3 + [0usize, 0, 1, 2][trimmed_len % 4];
    let mut out = vec![0u8; cap];
    let n = base64url_decode_into(s, &mut out)?;
    debug_assert_eq!(n, cap);
    Ok(out)
}

/// Decodes URL-safe base64 into `out` without allocating, returning the
/// decoded length. Validation order and error positions match
/// [`base64url_decode`] exactly; an input that is valid but does not fit
/// yields [`CodecError::BufferTooSmall`] with the full decoded length.
pub fn base64url_decode_into(s: &str, out: &mut [u8]) -> Result<usize, CodecError> {
    let trimmed = s.trim_end_matches('=');
    let bytes = trimmed.as_bytes();
    if bytes.len() % 4 == 1 {
        return Err(CodecError::InvalidLength(s.len()));
    }
    let mut n = 0usize;
    for (ci, chunk) in bytes.chunks(4).enumerate() {
        let base = ci * 4;
        let mut word = 0u32;
        for (i, &b) in chunk.iter().enumerate() {
            word |= b64_val(b, base + i)? << (18 - 6 * i);
        }
        // A chunk of 2/3/4 characters carries 1/2/3 bytes. Keep
        // validating past the end of `out` so InvalidByte wins over
        // BufferTooSmall at every position, as the allocating decoder
        // would.
        let emit = chunk.len() - 1;
        for k in 0..emit {
            if n + k < out.len() {
                out[n + k] = (word >> (16 - 8 * k)) as u8;
            }
        }
        n += emit;
    }
    if n > out.len() {
        return Err(CodecError::BufferTooSmall(n));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hex_round_trip() {
        assert_eq!(hex_encode(&[0x00, 0xff, 0x5a]), "00ff5a");
        assert_eq!(hex_decode("00ff5a").unwrap(), vec![0x00, 0xff, 0x5a]);
        assert_eq!(hex_decode("00FF5A").unwrap(), vec![0x00, 0xff, 0x5a]);
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn hex_rejects() {
        assert_eq!(hex_decode("abc"), Err(CodecError::InvalidLength(3)));
        assert_eq!(hex_decode("zz"), Err(CodecError::InvalidByte(0)));
        assert_eq!(hex_decode("a!"), Err(CodecError::InvalidByte(1)));
    }

    #[test]
    fn base64url_known_vectors() {
        // RFC 4648 vectors, translated to the URL-safe unpadded form.
        assert_eq!(base64url_encode(b""), "");
        assert_eq!(base64url_encode(b"f"), "Zg");
        assert_eq!(base64url_encode(b"fo"), "Zm8");
        assert_eq!(base64url_encode(b"foo"), "Zm9v");
        assert_eq!(base64url_encode(b"foob"), "Zm9vYg");
        assert_eq!(base64url_encode(b"fooba"), "Zm9vYmE");
        assert_eq!(base64url_encode(b"foobar"), "Zm9vYmFy");
        // The URL-safe alphabet appears where standard base64 would use +/.
        assert_eq!(base64url_encode(&[0xfb, 0xff]), "-_8");
    }

    #[test]
    fn base64url_decode_tolerates_padding() {
        assert_eq!(base64url_decode("Zm9vYg==").unwrap(), b"foob");
        assert_eq!(base64url_decode("Zm9vYg").unwrap(), b"foob");
    }

    #[test]
    fn base64url_rejects() {
        assert!(matches!(
            base64url_decode("Zm9v+"),
            Err(CodecError::InvalidLength(_))
        ));
        assert_eq!(base64url_decode("Zm+v"), Err(CodecError::InvalidByte(2)));
        assert_eq!(base64url_decode("Zm/v"), Err(CodecError::InvalidByte(2)));
    }

    #[test]
    fn decode_into_exact_fit() {
        let mut buf = [0u8; 3];
        assert_eq!(hex_decode_into("00ff5a", &mut buf), Ok(3));
        assert_eq!(buf, [0x00, 0xff, 0x5a]);
        let mut buf = [0u8; 4];
        assert_eq!(base64url_decode_into("Zm9vYg==", &mut buf), Ok(4));
        assert_eq!(&buf, b"foob");
        // Oversized buffers report the true decoded length.
        let mut big = [0u8; 16];
        assert_eq!(base64url_decode_into("Zm9v", &mut big), Ok(3));
        assert_eq!(&big[..3], b"foo");
    }

    #[test]
    fn decode_into_reports_needed_length() {
        let mut buf = [0u8; 2];
        assert_eq!(
            hex_decode_into("00ff5a", &mut buf),
            Err(CodecError::BufferTooSmall(3))
        );
        assert_eq!(
            base64url_decode_into("Zm9vYmFy", &mut buf),
            Err(CodecError::BufferTooSmall(6))
        );
    }

    #[test]
    fn decode_into_invalid_byte_beats_small_buffer() {
        // The invalid byte sits past the buffer's capacity; the position
        // must still be reported, exactly as the allocating decoder does.
        let mut buf = [0u8; 1];
        assert_eq!(
            hex_decode_into("00ffzz", &mut buf),
            Err(CodecError::InvalidByte(4))
        );
        assert_eq!(
            base64url_decode_into("Zm9vY%", &mut buf),
            Err(CodecError::InvalidByte(5))
        );
    }

    proptest! {
        #[test]
        fn prop_hex_round_trip(data: Vec<u8>) {
            prop_assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        }

        #[test]
        fn prop_decode_into_matches_allocating(data: Vec<u8>) {
            let mut buf = vec![0u8; data.len()];
            let hex = hex_encode(&data);
            prop_assert_eq!(hex_decode_into(&hex, &mut buf), Ok(data.len()));
            prop_assert_eq!(&buf, &data);
            let b64 = base64url_encode(&data);
            prop_assert_eq!(base64url_decode_into(&b64, &mut buf), Ok(data.len()));
            prop_assert_eq!(&buf, &data);
        }

        #[test]
        fn prop_base64url_round_trip(data: Vec<u8>) {
            prop_assert_eq!(base64url_decode(&base64url_encode(&data)).unwrap(), data);
        }

        #[test]
        fn prop_base64url_is_url_safe(data: Vec<u8>) {
            let s = base64url_encode(&data);
            prop_assert!(s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_'));
        }
    }
}
