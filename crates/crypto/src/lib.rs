//! Cryptographic substrate: the encrypted winning-price channel.
//!
//! A growing share of 2015-era exchanges delivered their charge prices as
//! opaque 28-byte tokens (§2.3 of the paper cites Google's scheme, which
//! "cannot easily be broken"). The whole premise of the paper is that an
//! on-path observer — the user's own browser — sees these tokens but cannot
//! decrypt them, so prices must be *estimated* from auction metadata.
//!
//! To reproduce that constraint faithfully the simulator needs a real
//! scheme: exchanges hold keys and encrypt; DSPs hold the same keys and
//! decrypt; the analyzer/YourAdValue side holds nothing and can only
//! recognise the token shape. This crate provides:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256, from scratch;
//! * [`hmac`] — RFC 2104 HMAC over SHA-256;
//! * [`price`] — the DoubleClick-style `iv ‖ (plaintext ⊕ pad) ‖ signature`
//!   construction over a 28-byte layout (16-byte IV, 8-byte price,
//!   4-byte integrity tag);
//! * [`codec`] — hex and URL-safe base64, the encodings those tokens wear
//!   inside notification URLs.
//!
//! No third-party crypto crates are used; determinism and auditability
//! matter more here than raw speed. The SHA-256 compression itself comes
//! from the workspace's [`yav_simd`] kernel crate, whose multiway variants
//! back [`hmac::HmacKey::mac_many`] and the batch price APIs — every tier
//! is bit-identical, so swapping kernels never changes a token.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod hmac;
pub mod price;
pub mod sha256;

pub use codec::{
    base64url_decode, base64url_decode_into, base64url_encode, base64url_encode_push, hex_decode,
    hex_decode_into, hex_encode, hex_encode_push, hex_encode_push_upper, CodecError,
};
pub use hmac::{hmac_sha256, HmacKey};
pub use price::{EncryptedPrice, PriceCrypter, PriceKeys, PriceTokenError};
pub use sha256::{sha256, Sha256};
