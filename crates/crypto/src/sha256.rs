//! SHA-256 (FIPS 180-4).
//!
//! Streaming [`Sha256`] hasher plus the one-shot [`sha256`] convenience.
//! Buffering and message padding live here; the 64-round compression
//! itself is [`yav_simd::sha256::compress`], the same scalar kernel that
//! backs the multiway batch paths in [`crate::hmac`] — so streaming and
//! batched hashing are bit-identical by construction. Validated against
//! the NIST test vectors in the unit tests below.

use yav_simd::sha256 as kernel;

/// Streaming SHA-256 hasher.
///
/// ```
/// use yav_crypto::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(yav_crypto::hex_encode(&digest),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (for the length suffix).
    len: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 {
            state: kernel::H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Resumes hashing from a precomputed chaining value: `state` is the
    /// hash state after absorbing `len` bytes, which must be a whole
    /// number of 64-byte blocks. This is how [`crate::hmac::HmacKey`]
    /// reuses its ipad/opad midstates across MACs.
    pub(crate) fn from_midstate(state: [u32; 8], len: u64) -> Sha256 {
        debug_assert!(
            len.is_multiple_of(64),
            "midstate length must be block-aligned"
        );
        Sha256 {
            state,
            len,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // The length bytes must not themselves count toward the length, but
        // `update` already captured the real length before padding began;
        // feed them through `compress` via the buffer directly.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One 64-round compression over a single 512-bit block.
    fn compress(&mut self, block: &[u8; 64]) {
        kernel::compress(&mut self.state, block);
    }
}

/// One-shot SHA-256 of a byte slice.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::hex_encode;

    // NIST / FIPS 180-4 test vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            hex_encode(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex_encode(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex_encode(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex_encode(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk in [1usize, 3, 63, 64, 65, 127, 997] {
            let mut h = Sha256::new();
            for piece in data.chunks(chunk) {
                h.update(piece);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn exact_block_boundary_lengths() {
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xABu8; len];
            let d1 = sha256(&data);
            let mut h = Sha256::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"price=0.95"), sha256(b"price=0.96"));
    }
}
