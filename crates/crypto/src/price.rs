//! The 28-byte encrypted winning-price scheme.
//!
//! Modelled on the DoubleClick construction the paper cites (§2.3): a
//! 28-byte token laid out as
//!
//! ```text
//! +----------------+----------------------+-------------+
//! |  IV (16 bytes) | price ⊕ pad (8 bytes)| sig (4 bytes)|
//! +----------------+----------------------+-------------+
//! ```
//!
//! * `pad = HMAC(encryption_key, iv)[..8]`
//! * `sig = HMAC(integrity_key, price_bytes ‖ iv)[..4]`
//! * the price plaintext is the charge price in **micro-CPM**, big-endian.
//!
//! The IV carries a timestamp + entropy in the real protocol; here it is
//! drawn from the exchange's deterministic RNG so each impression gets a
//! unique pad. Without both keys the token is indistinguishable from
//! random bytes — exactly the property that forces the paper's estimation
//! approach. Tokens are shipped in nURLs as unpadded URL-safe base64
//! (38 characters).

use crate::codec::{base64url_decode_into, base64url_encode, hex_decode_into, CodecError, B64_INV};
use crate::hmac::{ct_eq, hmac_sha256, HmacKey};
use std::fmt;

/// Byte length of the full token.
pub const TOKEN_LEN: usize = 28;

/// Length of the unpadded base64url wire form of a token:
/// `ceil(28 / 3) * 4 - 2` characters.
const WIRE_B64_LEN: usize = 38;

/// Branchless fixed-width base64url decode of the 38-character wire
/// form. Invalid values from [`B64_INV`] carry the high bit, so one OR
/// accumulator replaces per-character error branches; `None` means some
/// byte was outside the alphabet (the caller re-runs the general
/// decoder for the exact error).
fn decode_b64_38(b: &[u8]) -> Option<[u8; TOKEN_LEN]> {
    debug_assert_eq!(b.len(), WIRE_B64_LEN);
    let mut out = [0u8; TOKEN_LEN];
    let mut bad = 0u8;
    for g in 0..9 {
        let (v0, v1, v2, v3) = (
            B64_INV[b[g * 4] as usize],
            B64_INV[b[g * 4 + 1] as usize],
            B64_INV[b[g * 4 + 2] as usize],
            B64_INV[b[g * 4 + 3] as usize],
        );
        bad |= v0 | v1 | v2 | v3;
        let w = ((v0 as u32) << 18) | ((v1 as u32) << 12) | ((v2 as u32) << 6) | v3 as u32;
        out[g * 3] = (w >> 16) as u8;
        out[g * 3 + 1] = (w >> 8) as u8;
        out[g * 3 + 2] = w as u8;
    }
    // Two-character tail: one final byte, low bits discarded exactly as
    // the general decoder discards them.
    let (v0, v1) = (B64_INV[b[36] as usize], B64_INV[b[37] as usize]);
    bad |= v0 | v1;
    out[27] = (v0 << 2) | (v1 >> 4);
    if bad & 0x80 != 0 {
        None
    } else {
        Some(out)
    }
}
/// Byte length of the initialisation vector.
pub const IV_LEN: usize = 16;
/// Byte length of the encrypted price field.
pub const PRICE_LEN: usize = 8;
/// Byte length of the integrity tag.
pub const SIG_LEN: usize = 4;

/// The pair of secrets an exchange shares with each buyer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PriceKeys {
    /// Key deriving the XOR pad.
    pub encryption_key: [u8; 32],
    /// Key deriving the integrity tag.
    pub integrity_key: [u8; 32],
}

impl PriceKeys {
    /// Derives a deterministic key pair from a seed label — the simulator
    /// gives each (exchange, buyer) integration its own label.
    pub fn derive(label: &str) -> PriceKeys {
        PriceKeys {
            encryption_key: hmac_sha256(b"yav/price/enc", label.as_bytes()),
            integrity_key: hmac_sha256(b"yav/price/int", label.as_bytes()),
        }
    }
}

/// Errors surfaced when handling encrypted-price tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PriceTokenError {
    /// The token did not base64url-decode.
    Encoding,
    /// Decoded length was not [`TOKEN_LEN`].
    Length(usize),
    /// The integrity tag did not verify — wrong keys or tampering.
    Integrity,
}

impl fmt::Display for PriceTokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriceTokenError::Encoding => write!(f, "token is not valid base64url"),
            PriceTokenError::Length(n) => write!(f, "token decodes to {n} bytes, expected 28"),
            PriceTokenError::Integrity => write!(f, "integrity check failed"),
        }
    }
}

impl std::error::Error for PriceTokenError {}

/// A decoded (but not necessarily decryptable) 28-byte token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncryptedPrice {
    bytes: [u8; TOKEN_LEN],
}

impl EncryptedPrice {
    /// Parses the wire (base64url) form. This is all an *observer* can do
    /// with a token — shape validation, no decryption. Allocation-free:
    /// decoding lands directly in the token's own 28-byte array.
    pub fn from_wire(s: &str) -> Result<EncryptedPrice, PriceTokenError> {
        // Fixed-width fast path: a well-formed token is exactly 38
        // unpadded base64url characters. Any byte outside the alphabet
        // (including `=` padding) falls through to the general decoder,
        // so error values and padded inputs behave exactly as before.
        if s.len() == WIRE_B64_LEN {
            if let Some(bytes) = decode_b64_38(s.as_bytes()) {
                return Ok(EncryptedPrice { bytes });
            }
        }
        let mut bytes = [0u8; TOKEN_LEN];
        let n = match base64url_decode_into(s, &mut bytes) {
            Ok(n) => n,
            Err(CodecError::BufferTooSmall(n)) => n,
            Err(_) => return Err(PriceTokenError::Encoding),
        };
        if n != TOKEN_LEN {
            return Err(PriceTokenError::Length(n));
        }
        Ok(EncryptedPrice { bytes })
    }

    /// Parses the bare-hex wire form (the `price=B6A3F3C1…` shape:
    /// 56 hex characters), also allocation-free.
    pub fn from_hex_wire(s: &str) -> Result<EncryptedPrice, PriceTokenError> {
        let mut bytes = [0u8; TOKEN_LEN];
        let n = match hex_decode_into(s, &mut bytes) {
            Ok(n) => n,
            Err(CodecError::BufferTooSmall(n)) => n,
            Err(_) => return Err(PriceTokenError::Encoding),
        };
        if n != TOKEN_LEN {
            return Err(PriceTokenError::Length(n));
        }
        Ok(EncryptedPrice { bytes })
    }

    /// Wraps raw token bytes; the fixed-size array is already shape-valid.
    pub fn from_bytes(bytes: [u8; TOKEN_LEN]) -> EncryptedPrice {
        EncryptedPrice { bytes }
    }

    /// Serialises back to the wire form (38 base64url characters).
    pub fn to_wire(self) -> String {
        base64url_encode(&self.bytes)
    }

    /// Appends the wire form to `buf` without allocating — the hot-path
    /// counterpart of [`EncryptedPrice::to_wire`].
    pub fn write_wire(&self, buf: &mut String) {
        crate::codec::base64url_encode_push(&self.bytes, buf);
    }

    /// Appends the 56-character UPPERCASE-hex wire form to `buf` — what
    /// hex-token exchanges embed as `price=B6A3F3C1…`.
    pub fn write_hex_wire_upper(&self, buf: &mut String) {
        crate::codec::hex_encode_push_upper(&self.bytes, buf);
    }

    /// The raw token bytes.
    pub fn as_bytes(&self) -> &[u8; TOKEN_LEN] {
        &self.bytes
    }

    /// The IV portion.
    pub fn iv(&self) -> &[u8] {
        &self.bytes[..IV_LEN]
    }
}

/// Encrypts and decrypts price tokens for one (exchange, buyer) key pair.
///
/// Caches the two keys' [`HmacKey`] midstates, so each encrypt/decrypt
/// costs four SHA-256 compressions instead of eight, and the batch
/// methods drive those compressions through the multiway kernel. The
/// midstates are computed on first use, not at construction: the market
/// builds a crypter per (exchange, buyer) integration on every shard,
/// and most integrations never seal a price — paying four compressions
/// up front per crypter measurably slowed whole-world builds.
#[derive(Debug)]
pub struct PriceCrypter {
    keys: PriceKeys,
    mids: std::sync::OnceLock<(HmacKey, HmacKey)>,
}

impl Clone for PriceCrypter {
    fn clone(&self) -> PriceCrypter {
        PriceCrypter {
            keys: self.keys.clone(),
            // Carry already-computed midstates over; a clone of an unused
            // crypter stays lazy.
            mids: match self.mids.get() {
                Some(m) => std::sync::OnceLock::from(m.clone()),
                None => std::sync::OnceLock::new(),
            },
        }
    }
}

impl PriceCrypter {
    /// Creates a crypter around a key pair. Cheap: the HMAC midstates
    /// are derived lazily on the first operation.
    pub fn new(keys: PriceKeys) -> PriceCrypter {
        PriceCrypter {
            keys,
            mids: std::sync::OnceLock::new(),
        }
    }

    /// The cached `(encryption, integrity)` midstates.
    fn mids(&self) -> &(HmacKey, HmacKey) {
        self.mids.get_or_init(|| {
            (
                HmacKey::new(&self.keys.encryption_key),
                HmacKey::new(&self.keys.integrity_key),
            )
        })
    }

    /// Encrypts a price (micro-CPM) under a caller-supplied IV. The IV must
    /// be unique per impression; the simulator derives it from the
    /// impression id plus exchange entropy.
    pub fn encrypt(&self, micro_cpm: u64, iv: [u8; IV_LEN]) -> EncryptedPrice {
        let price_bytes = micro_cpm.to_be_bytes();
        let pad = self.mids().0.mac(&iv);
        let mut sig_input = [0u8; PRICE_LEN + IV_LEN];
        sig_input[..PRICE_LEN].copy_from_slice(&price_bytes);
        sig_input[PRICE_LEN..].copy_from_slice(&iv);
        let sig = self.mids().1.mac(&sig_input);
        EncryptedPrice {
            bytes: assemble_token(&iv, &price_bytes, &pad, &sig),
        }
    }

    /// Encrypts a batch of `(micro_cpm, iv)` pairs. Identical tokens to
    /// calling [`PriceCrypter::encrypt`] per pair, but the pad and
    /// signature MACs run lane-parallel across the batch.
    pub fn encrypt_batch(&self, items: &[(u64, [u8; IV_LEN])]) -> Vec<EncryptedPrice> {
        let mut sig_inputs = vec![[0u8; PRICE_LEN + IV_LEN]; items.len()];
        for (s, (price, iv)) in sig_inputs.iter_mut().zip(items) {
            s[..PRICE_LEN].copy_from_slice(&price.to_be_bytes());
            s[PRICE_LEN..].copy_from_slice(iv);
        }
        let iv_refs: Vec<&[u8]> = items.iter().map(|(_, iv)| iv.as_slice()).collect();
        let sig_refs: Vec<&[u8]> = sig_inputs.iter().map(|s| s.as_slice()).collect();
        let mut pads = vec![[0u8; 32]; items.len()];
        let mut sigs = vec![[0u8; 32]; items.len()];
        self.mids().0.mac_many(&iv_refs, &mut pads);
        self.mids().1.mac_many(&sig_refs, &mut sigs);
        items
            .iter()
            .zip(pads.iter().zip(&sigs))
            .map(|((price, iv), (pad, sig))| EncryptedPrice {
                bytes: assemble_token(iv, &price.to_be_bytes(), pad, sig),
            })
            .collect()
    }

    /// Decrypts and verifies a token, returning the price in micro-CPM.
    /// This is what the *winning DSP* does with its copy of the keys.
    pub fn decrypt(&self, token: &EncryptedPrice) -> Result<u64, PriceTokenError> {
        let iv = &token.bytes[..IV_LEN];
        let pad = self.mids().0.mac(iv);
        let mut price_bytes = [0u8; PRICE_LEN];
        for i in 0..PRICE_LEN {
            price_bytes[i] = token.bytes[IV_LEN + i] ^ pad[i];
        }
        let mut sig_input = [0u8; PRICE_LEN + IV_LEN];
        sig_input[..PRICE_LEN].copy_from_slice(&price_bytes);
        sig_input[PRICE_LEN..].copy_from_slice(iv);
        let sig = self.mids().1.mac(&sig_input);
        if !ct_eq(&sig[..SIG_LEN], &token.bytes[IV_LEN + PRICE_LEN..]) {
            return Err(PriceTokenError::Integrity);
        }
        Ok(u64::from_be_bytes(price_bytes))
    }

    /// Decrypts and verifies a batch of tokens, with the same per-token
    /// results as [`PriceCrypter::decrypt`].
    pub fn decrypt_batch(&self, tokens: &[EncryptedPrice]) -> Vec<Result<u64, PriceTokenError>> {
        let iv_refs: Vec<&[u8]> = tokens.iter().map(|t| &t.bytes[..IV_LEN]).collect();
        let mut pads = vec![[0u8; 32]; tokens.len()];
        self.mids().0.mac_many(&iv_refs, &mut pads);

        let mut prices = vec![[0u8; PRICE_LEN]; tokens.len()];
        let mut sig_inputs = vec![[0u8; PRICE_LEN + IV_LEN]; tokens.len()];
        for (j, t) in tokens.iter().enumerate() {
            for i in 0..PRICE_LEN {
                prices[j][i] = t.bytes[IV_LEN + i] ^ pads[j][i];
            }
            sig_inputs[j][..PRICE_LEN].copy_from_slice(&prices[j]);
            sig_inputs[j][PRICE_LEN..].copy_from_slice(&t.bytes[..IV_LEN]);
        }
        let sig_refs: Vec<&[u8]> = sig_inputs.iter().map(|s| s.as_slice()).collect();
        let mut sigs = vec![[0u8; 32]; tokens.len()];
        self.mids().1.mac_many(&sig_refs, &mut sigs);

        tokens
            .iter()
            .zip(sigs.iter().zip(&prices))
            .map(|(t, (sig, price))| {
                if ct_eq(&sig[..SIG_LEN], &t.bytes[IV_LEN + PRICE_LEN..]) {
                    Ok(u64::from_be_bytes(*price))
                } else {
                    Err(PriceTokenError::Integrity)
                }
            })
            .collect()
    }
}

/// Lays out `iv ‖ (price ⊕ pad) ‖ sig` into the 28-byte token.
fn assemble_token(
    iv: &[u8; IV_LEN],
    price_bytes: &[u8; PRICE_LEN],
    pad: &[u8; 32],
    sig: &[u8; 32],
) -> [u8; TOKEN_LEN] {
    let mut token = [0u8; TOKEN_LEN];
    token[..IV_LEN].copy_from_slice(iv);
    for i in 0..PRICE_LEN {
        token[IV_LEN + i] = price_bytes[i] ^ pad[i];
    }
    token[IV_LEN + PRICE_LEN..].copy_from_slice(&sig[..SIG_LEN]);
    token
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn crypter(label: &str) -> PriceCrypter {
        PriceCrypter::new(PriceKeys::derive(label))
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let c = crypter("mopub<->mediamath");
        let token = c.encrypt(950_000, [7u8; IV_LEN]);
        assert_eq!(c.decrypt(&token).unwrap(), 950_000);
    }

    #[test]
    fn wire_form_is_38_chars() {
        let c = crypter("x");
        let token = c.encrypt(1, [0u8; IV_LEN]);
        let wire = token.to_wire();
        assert_eq!(wire.len(), 38);
        assert_eq!(EncryptedPrice::from_wire(&wire).unwrap(), token);
    }

    #[test]
    fn wrong_keys_fail_integrity() {
        let a = crypter("exchange-a");
        let b = crypter("exchange-b");
        let token = a.encrypt(2_000_000, [1u8; IV_LEN]);
        assert_eq!(b.decrypt(&token), Err(PriceTokenError::Integrity));
    }

    #[test]
    fn tampering_detected() {
        let c = crypter("k");
        let token = c.encrypt(500_000, [9u8; IV_LEN]);
        let mut bytes = *token.as_bytes();
        bytes[IV_LEN] ^= 0x01; // flip one bit of the price field
        let tampered = EncryptedPrice::from_wire(&base64url_encode(&bytes)).unwrap();
        assert_eq!(c.decrypt(&tampered), Err(PriceTokenError::Integrity));
    }

    #[test]
    fn malformed_wire_rejected() {
        assert_eq!(
            EncryptedPrice::from_wire("!!!"),
            Err(PriceTokenError::Encoding)
        );
        assert_eq!(
            EncryptedPrice::from_wire("Zm9v"), // 3 bytes
            Err(PriceTokenError::Length(3))
        );
    }

    #[test]
    fn same_price_different_iv_different_token() {
        let c = crypter("k");
        let t1 = c.encrypt(750_000, [1u8; IV_LEN]);
        let t2 = c.encrypt(750_000, [2u8; IV_LEN]);
        assert_ne!(t1, t2);
        assert_eq!(c.decrypt(&t1).unwrap(), c.decrypt(&t2).unwrap());
    }

    #[test]
    fn ciphertext_leaks_nothing_obvious() {
        // The XOR pad must differ per IV: identical prices should share no
        // price-field bytes across random IVs more than chance allows.
        let c = crypter("k");
        let mut matches = 0usize;
        for i in 0..100u8 {
            let mut iv = [0u8; IV_LEN];
            iv[0] = i;
            let t = c.encrypt(123_456, iv);
            let u = c.encrypt(123_456, {
                let mut v = iv;
                v[1] = 1;
                v
            });
            matches += t.as_bytes()[IV_LEN..IV_LEN + PRICE_LEN]
                .iter()
                .zip(&u.as_bytes()[IV_LEN..IV_LEN + PRICE_LEN])
                .filter(|(a, b)| a == b)
                .count();
        }
        // 800 byte comparisons, expected ~3 matches by chance; allow slack.
        assert!(matches < 30, "pads look correlated: {matches} byte matches");
    }

    #[test]
    fn batch_matches_serial() {
        let c = crypter("batch");
        let items: Vec<(u64, [u8; IV_LEN])> = (0..37u64)
            .map(|i| (250_000 + i * 13_337, [(i as u8).wrapping_mul(7); IV_LEN]))
            .collect();
        let tokens = c.encrypt_batch(&items);
        assert_eq!(tokens.len(), items.len());
        for ((price, iv), token) in items.iter().zip(&tokens) {
            assert_eq!(*token, c.encrypt(*price, *iv), "price {price}");
        }
        let decrypted = c.decrypt_batch(&tokens);
        for ((price, _), got) in items.iter().zip(&decrypted) {
            assert_eq!(got.as_ref(), Ok(price));
        }
    }

    #[test]
    fn batch_flags_tampered_tokens_individually() {
        let c = crypter("batch-tamper");
        let mut tokens = c.encrypt_batch(&[(100, [1; IV_LEN]), (200, [2; IV_LEN])]);
        let mut bytes = *tokens[1].as_bytes();
        bytes[IV_LEN] ^= 0x01;
        tokens[1] = EncryptedPrice::from_bytes(bytes);
        let got = c.decrypt_batch(&tokens);
        assert_eq!(got[0], Ok(100));
        assert_eq!(got[1], Err(PriceTokenError::Integrity));
    }

    #[test]
    fn hex_wire_round_trip() {
        let c = crypter("hex");
        let token = c.encrypt(640_000, [3u8; IV_LEN]);
        let hex = crate::codec::hex_encode(token.as_bytes());
        assert_eq!(hex.len(), 56);
        assert_eq!(EncryptedPrice::from_hex_wire(&hex).unwrap(), token);
        assert_eq!(
            EncryptedPrice::from_hex_wire("zz"),
            Err(PriceTokenError::Encoding)
        );
        assert_eq!(
            EncryptedPrice::from_hex_wire("00ff"),
            Err(PriceTokenError::Length(2))
        );
        // 30 bytes of valid hex: too long, reported as a length error just
        // like the base64 form.
        assert_eq!(
            EncryptedPrice::from_hex_wire(&"ab".repeat(30)),
            Err(PriceTokenError::Length(30))
        );
    }

    #[test]
    fn overlong_base64_wire_is_length_error() {
        // 30 decoded bytes — more than the token's 28. The non-allocating
        // parser must still report the true decoded length.
        let wire = base64url_encode(&[0x11u8; 30]);
        assert_eq!(
            EncryptedPrice::from_wire(&wire),
            Err(PriceTokenError::Length(30))
        );
    }

    proptest! {
        #[test]
        fn prop_round_trip(price in 0u64..10_000_000_000, iv: [u8; 16]) {
            let c = crypter("prop");
            let token = c.encrypt(price, iv);
            prop_assert_eq!(c.decrypt(&token).unwrap(), price);
            let wire = token.to_wire();
            let back = EncryptedPrice::from_wire(&wire).unwrap();
            prop_assert_eq!(c.decrypt(&back).unwrap(), price);
        }

        #[test]
        fn prop_signature_covers_price(price in 0u64..1_000_000_000, iv: [u8; 16], flip in 0usize..8) {
            let c = crypter("prop2");
            let token = c.encrypt(price, iv);
            let mut bytes = *token.as_bytes();
            bytes[IV_LEN + flip] ^= 0x80;
            let tampered = EncryptedPrice::from_wire(&base64url_encode(&bytes)).unwrap();
            prop_assert_eq!(c.decrypt(&tampered), Err(PriceTokenError::Integrity));
        }
    }
}
