//! The 28-byte encrypted winning-price scheme.
//!
//! Modelled on the DoubleClick construction the paper cites (§2.3): a
//! 28-byte token laid out as
//!
//! ```text
//! +----------------+----------------------+-------------+
//! |  IV (16 bytes) | price ⊕ pad (8 bytes)| sig (4 bytes)|
//! +----------------+----------------------+-------------+
//! ```
//!
//! * `pad = HMAC(encryption_key, iv)[..8]`
//! * `sig = HMAC(integrity_key, price_bytes ‖ iv)[..4]`
//! * the price plaintext is the charge price in **micro-CPM**, big-endian.
//!
//! The IV carries a timestamp + entropy in the real protocol; here it is
//! drawn from the exchange's deterministic RNG so each impression gets a
//! unique pad. Without both keys the token is indistinguishable from
//! random bytes — exactly the property that forces the paper's estimation
//! approach. Tokens are shipped in nURLs as unpadded URL-safe base64
//! (38 characters).

use crate::codec::{base64url_decode, base64url_encode};
use crate::hmac::{ct_eq, hmac_sha256};
use std::fmt;

/// Byte length of the full token.
pub const TOKEN_LEN: usize = 28;
/// Byte length of the initialisation vector.
pub const IV_LEN: usize = 16;
/// Byte length of the encrypted price field.
pub const PRICE_LEN: usize = 8;
/// Byte length of the integrity tag.
pub const SIG_LEN: usize = 4;

/// The pair of secrets an exchange shares with each buyer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PriceKeys {
    /// Key deriving the XOR pad.
    pub encryption_key: [u8; 32],
    /// Key deriving the integrity tag.
    pub integrity_key: [u8; 32],
}

impl PriceKeys {
    /// Derives a deterministic key pair from a seed label — the simulator
    /// gives each (exchange, buyer) integration its own label.
    pub fn derive(label: &str) -> PriceKeys {
        PriceKeys {
            encryption_key: hmac_sha256(b"yav/price/enc", label.as_bytes()),
            integrity_key: hmac_sha256(b"yav/price/int", label.as_bytes()),
        }
    }
}

/// Errors surfaced when handling encrypted-price tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PriceTokenError {
    /// The token did not base64url-decode.
    Encoding,
    /// Decoded length was not [`TOKEN_LEN`].
    Length(usize),
    /// The integrity tag did not verify — wrong keys or tampering.
    Integrity,
}

impl fmt::Display for PriceTokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriceTokenError::Encoding => write!(f, "token is not valid base64url"),
            PriceTokenError::Length(n) => write!(f, "token decodes to {n} bytes, expected 28"),
            PriceTokenError::Integrity => write!(f, "integrity check failed"),
        }
    }
}

impl std::error::Error for PriceTokenError {}

/// A decoded (but not necessarily decryptable) 28-byte token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncryptedPrice {
    bytes: [u8; TOKEN_LEN],
}

impl EncryptedPrice {
    /// Parses the wire (base64url) form. This is all an *observer* can do
    /// with a token — shape validation, no decryption.
    pub fn from_wire(s: &str) -> Result<EncryptedPrice, PriceTokenError> {
        let raw = base64url_decode(s).map_err(|_| PriceTokenError::Encoding)?;
        if raw.len() != TOKEN_LEN {
            return Err(PriceTokenError::Length(raw.len()));
        }
        let mut bytes = [0u8; TOKEN_LEN];
        bytes.copy_from_slice(&raw);
        Ok(EncryptedPrice { bytes })
    }

    /// Serialises back to the wire form (38 base64url characters).
    pub fn to_wire(self) -> String {
        base64url_encode(&self.bytes)
    }

    /// The raw token bytes.
    pub fn as_bytes(&self) -> &[u8; TOKEN_LEN] {
        &self.bytes
    }

    /// The IV portion.
    pub fn iv(&self) -> &[u8] {
        &self.bytes[..IV_LEN]
    }
}

/// Encrypts and decrypts price tokens for one (exchange, buyer) key pair.
#[derive(Debug, Clone)]
pub struct PriceCrypter {
    keys: PriceKeys,
}

impl PriceCrypter {
    /// Creates a crypter around a key pair.
    pub fn new(keys: PriceKeys) -> PriceCrypter {
        PriceCrypter { keys }
    }

    /// Encrypts a price (micro-CPM) under a caller-supplied IV. The IV must
    /// be unique per impression; the simulator derives it from the
    /// impression id plus exchange entropy.
    pub fn encrypt(&self, micro_cpm: u64, iv: [u8; IV_LEN]) -> EncryptedPrice {
        let price_bytes = micro_cpm.to_be_bytes();
        let pad = hmac_sha256(&self.keys.encryption_key, &iv);
        let mut token = [0u8; TOKEN_LEN];
        token[..IV_LEN].copy_from_slice(&iv);
        for i in 0..PRICE_LEN {
            token[IV_LEN + i] = price_bytes[i] ^ pad[i];
        }
        let mut sig_input = [0u8; PRICE_LEN + IV_LEN];
        sig_input[..PRICE_LEN].copy_from_slice(&price_bytes);
        sig_input[PRICE_LEN..].copy_from_slice(&iv);
        let sig = hmac_sha256(&self.keys.integrity_key, &sig_input);
        token[IV_LEN + PRICE_LEN..].copy_from_slice(&sig[..SIG_LEN]);
        EncryptedPrice { bytes: token }
    }

    /// Decrypts and verifies a token, returning the price in micro-CPM.
    /// This is what the *winning DSP* does with its copy of the keys.
    pub fn decrypt(&self, token: &EncryptedPrice) -> Result<u64, PriceTokenError> {
        let iv = &token.bytes[..IV_LEN];
        let pad = hmac_sha256(&self.keys.encryption_key, iv);
        let mut price_bytes = [0u8; PRICE_LEN];
        for i in 0..PRICE_LEN {
            price_bytes[i] = token.bytes[IV_LEN + i] ^ pad[i];
        }
        let mut sig_input = [0u8; PRICE_LEN + IV_LEN];
        sig_input[..PRICE_LEN].copy_from_slice(&price_bytes);
        sig_input[PRICE_LEN..].copy_from_slice(iv);
        let sig = hmac_sha256(&self.keys.integrity_key, &sig_input);
        if !ct_eq(&sig[..SIG_LEN], &token.bytes[IV_LEN + PRICE_LEN..]) {
            return Err(PriceTokenError::Integrity);
        }
        Ok(u64::from_be_bytes(price_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn crypter(label: &str) -> PriceCrypter {
        PriceCrypter::new(PriceKeys::derive(label))
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let c = crypter("mopub<->mediamath");
        let token = c.encrypt(950_000, [7u8; IV_LEN]);
        assert_eq!(c.decrypt(&token).unwrap(), 950_000);
    }

    #[test]
    fn wire_form_is_38_chars() {
        let c = crypter("x");
        let token = c.encrypt(1, [0u8; IV_LEN]);
        let wire = token.to_wire();
        assert_eq!(wire.len(), 38);
        assert_eq!(EncryptedPrice::from_wire(&wire).unwrap(), token);
    }

    #[test]
    fn wrong_keys_fail_integrity() {
        let a = crypter("exchange-a");
        let b = crypter("exchange-b");
        let token = a.encrypt(2_000_000, [1u8; IV_LEN]);
        assert_eq!(b.decrypt(&token), Err(PriceTokenError::Integrity));
    }

    #[test]
    fn tampering_detected() {
        let c = crypter("k");
        let token = c.encrypt(500_000, [9u8; IV_LEN]);
        let mut bytes = *token.as_bytes();
        bytes[IV_LEN] ^= 0x01; // flip one bit of the price field
        let tampered = EncryptedPrice::from_wire(&base64url_encode(&bytes)).unwrap();
        assert_eq!(c.decrypt(&tampered), Err(PriceTokenError::Integrity));
    }

    #[test]
    fn malformed_wire_rejected() {
        assert_eq!(
            EncryptedPrice::from_wire("!!!"),
            Err(PriceTokenError::Encoding)
        );
        assert_eq!(
            EncryptedPrice::from_wire("Zm9v"), // 3 bytes
            Err(PriceTokenError::Length(3))
        );
    }

    #[test]
    fn same_price_different_iv_different_token() {
        let c = crypter("k");
        let t1 = c.encrypt(750_000, [1u8; IV_LEN]);
        let t2 = c.encrypt(750_000, [2u8; IV_LEN]);
        assert_ne!(t1, t2);
        assert_eq!(c.decrypt(&t1).unwrap(), c.decrypt(&t2).unwrap());
    }

    #[test]
    fn ciphertext_leaks_nothing_obvious() {
        // The XOR pad must differ per IV: identical prices should share no
        // price-field bytes across random IVs more than chance allows.
        let c = crypter("k");
        let mut matches = 0usize;
        for i in 0..100u8 {
            let mut iv = [0u8; IV_LEN];
            iv[0] = i;
            let t = c.encrypt(123_456, iv);
            let u = c.encrypt(123_456, {
                let mut v = iv;
                v[1] = 1;
                v
            });
            matches += t.as_bytes()[IV_LEN..IV_LEN + PRICE_LEN]
                .iter()
                .zip(&u.as_bytes()[IV_LEN..IV_LEN + PRICE_LEN])
                .filter(|(a, b)| a == b)
                .count();
        }
        // 800 byte comparisons, expected ~3 matches by chance; allow slack.
        assert!(matches < 30, "pads look correlated: {matches} byte matches");
    }

    proptest! {
        #[test]
        fn prop_round_trip(price in 0u64..10_000_000_000, iv: [u8; 16]) {
            let c = crypter("prop");
            let token = c.encrypt(price, iv);
            prop_assert_eq!(c.decrypt(&token).unwrap(), price);
            let wire = token.to_wire();
            let back = EncryptedPrice::from_wire(&wire).unwrap();
            prop_assert_eq!(c.decrypt(&back).unwrap(), price);
        }

        #[test]
        fn prop_signature_covers_price(price in 0u64..1_000_000_000, iv: [u8; 16], flip in 0usize..8) {
            let c = crypter("prop2");
            let token = c.encrypt(price, iv);
            let mut bytes = *token.as_bytes();
            bytes[IV_LEN + flip] ^= 0x80;
            let tampered = EncryptedPrice::from_wire(&base64url_encode(&bytes)).unwrap();
            prop_assert_eq!(c.decrypt(&tampered), Err(PriceTokenError::Integrity));
        }
    }
}
