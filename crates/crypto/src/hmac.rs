//! HMAC-SHA256 (RFC 2104).

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block are hashed first; shorter keys are
/// zero-padded, per the RFC.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time equality for MAC tags. Not strictly needed inside a
/// simulator, but integrity checks should never be written any other way.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::hex_encode;

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex_encode(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex_encode(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex_encode(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex_encode(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"key1", b"msg"), hmac_sha256(b"key2", b"msg"));
        assert_ne!(hmac_sha256(b"key", b"msg1"), hmac_sha256(b"key", b"msg2"));
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"sane"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }
}
