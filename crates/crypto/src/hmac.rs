//! HMAC-SHA256 (RFC 2104), with reusable keyed midstates.
//!
//! [`HmacKey`] absorbs the ipad/opad blocks once at construction, so every
//! subsequent MAC over a short message costs two compressions instead of
//! four. [`HmacKey::mac_many`] goes further: runs of single-block messages
//! (≤ 55 bytes — every price-token pad and signature input qualifies) are
//! fed lane-parallel through [`yav_simd::sha256::compress_many`], which
//! dispatches to the widest compression kernel the CPU offers. All paths
//! produce bit-identical RFC 2104 output.

use crate::sha256::{sha256, Sha256};
use yav_simd::sha256::{compress, compress_many, H0};

const BLOCK: usize = 64;
/// Longest message that still finishes in a single compression after the
/// ipad block (64 - 1 pad byte - 8 length bytes); only such messages can
/// share a batched round, because every lane runs the same block count.
const SINGLE_BLOCK_MAX: usize = 55;
/// Lane budget per batched round: two full AVX2 passes, a few KiB of
/// stack for the staging blocks.
const LANES: usize = 16;

/// A reusable HMAC-SHA256 key: the ipad/opad chaining values, precomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HmacKey {
    inner: [u32; 8],
    outer: [u32; 8],
}

impl HmacKey {
    /// Derives the midstates from a key. Keys longer than the 64-byte
    /// block are hashed first; shorter keys are zero-padded, per the RFC.
    pub fn new(key: &[u8]) -> HmacKey {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            k[..32].copy_from_slice(&sha256(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0x36u8; BLOCK];
        let mut opad = [0x5cu8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }

        let mut inner = H0;
        let mut outer = H0;
        compress(&mut inner, &ipad);
        compress(&mut outer, &opad);
        HmacKey { inner, outer }
    }

    /// MACs one message: two compressions on top of the stored midstates.
    pub fn mac(&self, message: &[u8]) -> [u8; 32] {
        let mut inner = Sha256::from_midstate(self.inner, BLOCK as u64);
        inner.update(message);
        let inner_digest = inner.finalize();

        let mut outer = Sha256::from_midstate(self.outer, BLOCK as u64);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// MACs `messages[i]` into `out[i]`, batching runs of single-block
    /// messages through the multiway compression kernel. Output is
    /// identical to calling [`HmacKey::mac`] per message; longer messages
    /// fall back to exactly that.
    ///
    /// # Panics
    ///
    /// If `messages` and `out` have different lengths.
    pub fn mac_many(&self, messages: &[&[u8]], out: &mut [[u8; 32]]) {
        assert_eq!(
            messages.len(),
            out.len(),
            "mac_many: messages/out length mismatch"
        );
        let mut i = 0usize;
        while i < messages.len() {
            if messages[i].len() > SINGLE_BLOCK_MAX {
                out[i] = self.mac(messages[i]);
                i += 1;
                continue;
            }
            let run = messages[i..]
                .iter()
                .take(LANES)
                .take_while(|m| m.len() <= SINGLE_BLOCK_MAX)
                .count();

            // Inner hashes: one padded message block per lane on top of
            // the ipad midstate. Length suffix counts the ipad block too.
            let mut blocks = [[0u8; 64]; LANES];
            let mut states = [[0u32; 8]; LANES];
            for (j, m) in messages[i..i + run].iter().enumerate() {
                blocks[j][..m.len()].copy_from_slice(m);
                blocks[j][m.len()] = 0x80;
                let bits = ((BLOCK + m.len()) as u64) * 8;
                blocks[j][56..].copy_from_slice(&bits.to_be_bytes());
                states[j] = self.inner;
            }
            compress_many(&mut states[..run], &blocks[..run]);

            // Outer hashes: the 32-byte inner digest is again exactly one
            // padded block on top of the opad midstate.
            let mut oblocks = [[0u8; 64]; LANES];
            let mut ostates = [[0u32; 8]; LANES];
            for j in 0..run {
                for (w, word) in states[j].iter().enumerate() {
                    oblocks[j][w * 4..w * 4 + 4].copy_from_slice(&word.to_be_bytes());
                }
                oblocks[j][32] = 0x80;
                let bits = ((BLOCK + 32) as u64) * 8;
                oblocks[j][56..].copy_from_slice(&bits.to_be_bytes());
                ostates[j] = self.outer;
            }
            compress_many(&mut ostates[..run], &oblocks[..run]);

            for j in 0..run {
                for (w, word) in ostates[j].iter().enumerate() {
                    out[i + j][w * 4..w * 4 + 4].copy_from_slice(&word.to_be_bytes());
                }
            }
            i += run;
        }
    }
}

/// Computes `HMAC-SHA256(key, message)` in one shot.
///
/// Keys longer than the 64-byte block are hashed first; shorter keys are
/// zero-padded, per the RFC. Callers MACing repeatedly under one key
/// should hold an [`HmacKey`] instead and skip the key schedule.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    HmacKey::new(key).mac(message)
}

/// Constant-time equality for MAC tags. Not strictly needed inside a
/// simulator, but integrity checks should never be written any other way.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::hex_encode;

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex_encode(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex_encode(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex_encode(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex_encode(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"key1", b"msg"), hmac_sha256(b"key2", b"msg"));
        assert_ne!(hmac_sha256(b"key", b"msg1"), hmac_sha256(b"key", b"msg2"));
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"sane"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }

    /// Deterministic filler so the parity tests exercise varied bytes.
    fn pattern(len: usize, salt: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
            .collect()
    }

    #[test]
    fn hmac_key_reuse_matches_one_shot() {
        // Key lengths straddle the block size (zero-pad vs hash-first);
        // message lengths straddle the single-block padding boundary.
        for key_len in [0usize, 1, 20, 63, 64, 65, 131] {
            let key = pattern(key_len, 0xA5);
            let hk = HmacKey::new(&key);
            for msg_len in [0usize, 1, 16, 24, 55, 56, 57, 100, 200] {
                let msg = pattern(msg_len, 0x3C);
                assert_eq!(
                    hk.mac(&msg),
                    hmac_sha256(&key, &msg),
                    "key {key_len} msg {msg_len}"
                );
            }
        }
    }

    #[test]
    fn mac_many_matches_mac() {
        let hk = HmacKey::new(b"batch-key");
        // Mixed lengths: single-block lanes, fallback (> 55 bytes)
        // interleaved to split runs, and more messages than one lane
        // round to cover the run loop.
        let msgs: Vec<Vec<u8>> = (0..40usize)
            .map(|i| pattern(if i % 7 == 3 { 60 + i } else { i % 56 }, i as u8))
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let mut out = vec![[0u8; 32]; refs.len()];
        hk.mac_many(&refs, &mut out);
        for (i, m) in refs.iter().enumerate() {
            assert_eq!(out[i], hk.mac(m), "message {i} (len {})", m.len());
        }
    }

    #[test]
    fn mac_many_empty_and_single() {
        let hk = HmacKey::new(b"k");
        hk.mac_many(&[], &mut []);
        let mut out = [[0u8; 32]; 1];
        hk.mac_many(&[b"one".as_slice()], &mut out);
        assert_eq!(out[0], hk.mac(b"one"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mac_many_length_mismatch_panics() {
        let hk = HmacKey::new(b"k");
        let mut out = [[0u8; 32]; 2];
        hk.mac_many(&[b"one".as_slice()], &mut out);
    }
}
