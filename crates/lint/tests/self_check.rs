//! The linter must hold on the codebase that ships it: a full workspace
//! walk with zero findings, and a `docs/METRICS.md` that matches what
//! the walk harvests.

use std::path::Path;
use yav_lint::{check_metrics_doc, lint_workspace};

#[test]
fn workspace_is_lint_clean_and_metrics_doc_is_fresh() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut outcome = lint_workspace(&root).expect("workspace walk");
    check_metrics_doc(&root, &mut outcome);
    assert!(
        outcome.diagnostics.is_empty(),
        "workspace must lint clean:\n{}",
        outcome
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.files_scanned > 100,
        "walk looks truncated: {} files",
        outcome.files_scanned
    );
    assert!(
        outcome.metrics.len() >= 20,
        "metric harvest looks truncated: {} metrics",
        outcome.metrics.len()
    );
}
