//! The linter must hold on the codebase that ships it: a full workspace
//! walk with zero findings, fresh generated docs (`docs/METRICS.md`,
//! `docs/LINTS.md`), and a workspace graph of credible size.

use std::path::Path;
use yav_lint::{check_lints_doc, check_metrics_doc, lint_workspace};

#[test]
fn workspace_is_lint_clean_and_generated_docs_are_fresh() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut outcome = lint_workspace(&root).expect("workspace walk");
    check_metrics_doc(&root, &mut outcome);
    check_lints_doc(&root, &mut outcome);
    assert!(
        outcome.diagnostics.is_empty(),
        "workspace must lint clean:\n{}",
        outcome
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.files_scanned > 100,
        "walk looks truncated: {} files",
        outcome.files_scanned
    );
    assert!(
        outcome.metrics.len() >= 20,
        "metric harvest looks truncated: {} metrics",
        outcome.metrics.len()
    );
}

#[test]
fn workspace_graph_has_credible_shape() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = lint_workspace(&root).expect("workspace walk");
    let g = outcome.graph;
    assert!(
        g.crates >= 15,
        "crate DAG looks truncated: {} crates",
        g.crates
    );
    assert!(g.fns >= 500, "fn index looks truncated: {} fns", g.fns);
    assert!(
        g.call_edges >= 1000,
        "call resolution looks broken: {} edges",
        g.call_edges
    );
    // The monitor, the ledger, the nURL pipeline: a large slice of the
    // workspace legitimately touches tainted types. If this drops to
    // zero the taint pass has silently stopped seeing sources.
    assert!(
        g.tainted_fns >= 50,
        "taint marking looks broken: {} tainted fns",
        g.tainted_fns
    );
    // Every live suppression made it into the inventory.
    assert!(
        !outcome.suppressions.is_empty(),
        "the workspace carries reasoned suppressions; the inventory must see them"
    );
}
