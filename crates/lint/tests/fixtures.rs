//! Every rule is proven live against a positive fixture and quiet
//! against its negative twin. Fixtures are plain text to the linter
//! (the `fixtures/` directory is excluded from the workspace walk), so
//! they can demonstrate violations without compiling them into the
//! tree.

use std::path::Path;
use yav_lint::{lint_source, Diagnostic, FileKind};

struct Case {
    rule: &'static str,
    positive: &'static str,
    negative: &'static str,
    /// Crate label the fixture is linted under (rule scoping).
    crate_name: &'static str,
    /// Workspace-relative path the fixture impersonates.
    rel: &'static str,
    /// Minimum distinct findings the positive fixture must yield.
    min_findings: usize,
}

const CASES: &[Case] = &[
    Case {
        rule: "nondet-iteration",
        positive: "nondet_pos.rs",
        negative: "nondet_neg.rs",
        crate_name: "analyzer",
        rel: "crates/analyzer/src/fixture.rs",
        min_findings: 2,
    },
    Case {
        rule: "wall-clock-in-sim",
        positive: "wall_clock_pos.rs",
        negative: "wall_clock_neg.rs",
        crate_name: "auction",
        rel: "crates/auction/src/fixture.rs",
        min_findings: 2,
    },
    Case {
        rule: "panic-policy",
        positive: "panic_pos.rs",
        negative: "panic_neg.rs",
        crate_name: "nurl",
        rel: "crates/nurl/src/fixture.rs",
        min_findings: 4,
    },
    Case {
        rule: "forbid-unsafe-coverage",
        positive: "unsafe_pos.rs",
        negative: "unsafe_neg.rs",
        crate_name: "demo",
        rel: "crates/demo/src/lib.rs",
        min_findings: 1,
    },
    Case {
        rule: "forbid-unsafe-coverage",
        positive: "unsafe_cover_pos.rs",
        negative: "unsafe_cover_neg.rs",
        crate_name: "simd",
        rel: "crates/simd/src/lib.rs",
        min_findings: 4,
    },
    Case {
        rule: "metric-name-hygiene",
        positive: "metric_pos.rs",
        negative: "metric_neg.rs",
        crate_name: "analyzer",
        rel: "crates/analyzer/src/fixture.rs",
        min_findings: 4,
    },
    Case {
        rule: "money-cast",
        positive: "money_pos.rs",
        negative: "money_neg.rs",
        crate_name: "analyzer",
        rel: "crates/analyzer/src/fixture.rs",
        min_findings: 3,
    },
    Case {
        rule: "alloc-in-reject-path",
        positive: "alloc_pos.rs",
        negative: "alloc_neg.rs",
        crate_name: "nurl",
        rel: "crates/nurl/src/urlref.rs",
        min_findings: 6,
    },
    Case {
        rule: "alloc-in-gen-path",
        positive: "alloc_gen_pos.rs",
        negative: "alloc_gen_neg.rs",
        crate_name: "weblog",
        rel: "crates/weblog/src/generator.rs",
        min_findings: 7,
    },
    Case {
        rule: "span-hygiene",
        positive: "span_pos.rs",
        negative: "span_neg.rs",
        crate_name: "core",
        rel: "crates/core/src/fixture.rs",
        min_findings: 5,
    },
    Case {
        rule: "stream-materialize",
        positive: "stream_pos.rs",
        negative: "stream_neg.rs",
        crate_name: "bench",
        rel: "crates/bench/src/stream.rs",
        min_findings: 5,
    },
];

fn lint_fixture(case: &Case, name: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    lint_source(case.rel, case.crate_name, FileKind::Source, &src)
}

#[test]
fn every_positive_fixture_fires_its_rule() {
    for case in CASES {
        let found = lint_fixture(case, case.positive);
        assert!(
            found.len() >= case.min_findings,
            "{}: expected >= {} findings, got {found:#?}",
            case.positive,
            case.min_findings
        );
        for d in &found {
            assert_eq!(
                d.rule, case.rule,
                "{}: unexpected rule in {d}",
                case.positive
            );
            assert!(d.line > 0 && d.col > 0, "diagnostics carry positions: {d}");
        }
    }
}

#[test]
fn every_negative_fixture_is_clean() {
    for case in CASES {
        let found = lint_fixture(case, case.negative);
        assert!(
            found.is_empty(),
            "{}: expected clean, got {found:#?}",
            case.negative
        );
    }
}

#[test]
fn diagnostics_render_as_path_line_col() {
    let found = lint_fixture(&CASES[0], CASES[0].positive);
    let rendered = found[0].to_string();
    assert!(
        rendered.starts_with("crates/analyzer/src/fixture.rs:"),
        "got {rendered}"
    );
    assert!(rendered.contains("[nondet-iteration]"), "got {rendered}");
}

#[test]
fn suppression_without_reason_is_itself_a_finding() {
    let src = "// yav-lint: allow(panic-policy)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let found = lint_source("crates/nurl/src/fixture.rs", "nurl", FileKind::Source, src);
    assert!(
        found.iter().any(|d| d.rule == "bad-suppression"),
        "reasonless allow must be rejected: {found:#?}"
    );
}
