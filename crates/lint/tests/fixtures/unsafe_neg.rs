//! Negative fixture: a crate root carrying the workspace-mandatory
//! forbid (linted as `crates/demo/src/lib.rs`).

#![forbid(unsafe_code)]

pub fn answer() -> u32 {
    42
}
