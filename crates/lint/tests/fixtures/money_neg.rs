//! Negative fixture: money moves through the blessed yav-types
//! conversions only (linted as crate `analyzer`).

pub fn total(prices: &[yav_types::Cpm]) -> f64 {
    prices.iter().map(|p| p.as_f64()).sum()
}

pub fn rebuild(raw: f64) -> yav_types::Cpm {
    yav_types::Cpm::from_f64(raw)
}

pub fn micro_sum(prices: &[yav_types::Cpm]) -> i64 {
    prices.iter().map(|p| p.micros()).sum()
}
