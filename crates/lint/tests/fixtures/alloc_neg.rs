//! Negative fixture for `alloc-in-reject-path`: borrowing and slicing
//! only in non-test code — the shape `urlref.rs` must keep. Test code
//! may allocate freely (`to_owned` names in doc comments are fine too).

/// Splits a raw URL at its query delimiter without copying either half.
pub fn split_query(raw: &str) -> (&str, &str) {
    match raw.split_once('?') {
        Some((path, query)) => (path, query),
        None => (raw, ""),
    }
}

/// Borrow-only iterator over `&`-separated segments.
pub fn segments(query: &str) -> impl Iterator<Item = &str> {
    query.split('&').filter(|s| !s.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_without_copying_the_input() {
        let owned = "p?a=1&b=2".to_owned();
        let rendered = format!("{}", split_query(&owned).1);
        let parts: Vec<&str> = segments(&rendered).collect();
        assert_eq!(parts.len(), 2);
    }
}
