//! Positive fixture: a crate root missing `#![forbid(unsafe_code)]`
//! (linted as `crates/demo/src/lib.rs`).

pub fn answer() -> u32 {
    42
}
