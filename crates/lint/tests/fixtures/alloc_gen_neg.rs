//! Negative fixture for `alloc-in-gen-path`: per-event work splices
//! spans and integers into caller-owned scratch, and per-shard setup
//! allocates only behind an explicit allow. Test code may allocate
//! freely (`format!` names in doc comments are fine too).

/// Splices a pre-rendered host and a counter into a reused buffer —
/// the shape of the interned-corpus hot path.
pub fn splice_url(buf: &mut String, host: &str, path_id: u32) {
    buf.clear();
    buf.push_str("http://");
    buf.push_str(host);
    buf.push_str("/ad/");
    let mut digits = [0u8; 10];
    let mut n = path_id;
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    for &d in &digits[i..] {
        buf.push(d as char);
    }
}

/// Per-shard setup: the one place allocation is allowed, explicitly.
pub fn shard_scratch() -> String {
    // yav-lint: allow(alloc-in-gen-path) — per-shard setup, not per-event work
    String::with_capacity(256)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splices_without_heap_traffic() {
        let mut buf = shard_scratch();
        splice_url(&mut buf, "pub001.example.com", 42);
        let rendered = format!("{buf}");
        assert_eq!(rendered, "http://pub001.example.com/ad/42");
    }
}
