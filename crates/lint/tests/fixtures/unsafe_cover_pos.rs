//! Positive fixture: a would-be designated unsafe crate root with no
//! forbid, no opt-out, and three uncovered `unsafe` tokens (linted as
//! `crates/simd/src/lib.rs`).

// SAFETY: callers pass a valid pointer — but there is no
// `#[target_feature]` gate, so the signature itself is flagged.
pub unsafe fn no_gate(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn uncommented(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn stale_comment(p: *const u32) -> u32 {
    // SAFETY: this proof sits too far above the block to count.
    //
    //
    //
    //
    unsafe { *p }
}
