//! Positive fixture: raw numeric casts adjacent to Price arithmetic
//! outside yav-types (linted as crate `analyzer`). Each cast must fire.

pub fn lossy_total(prices: &[yav_types::Cpm]) -> f64 {
    let mut total = 0.0;
    for p in prices {
        total += p.micros() as f64 / 1e6;
    }
    total
}

pub fn truncate(p: yav_types::Cpm) -> i64 {
    p.as_f64() as i64
}

pub fn rebuild(raw: f64) -> yav_types::Cpm {
    yav_types::Cpm::from_micros(raw as i64)
}
