//! Positive span-hygiene fixture: every trace call here is wrong.

pub fn observe(reqs: &[u64]) -> usize {
    // Unbound guard: the span closes on this same line.
    yav_trace::trace_span!("ingest.observe");
    // Bound to `_`, which also drops immediately.
    let _ = yav_trace::trace_span!("ingest.sift", reqs.len());
    // Name ignores the dotted `area.op` convention.
    let _g = trace_span!("IngestObserve");
    // Unknown area.
    let _h = yav_trace::trace_span!("mystery.op");
    // Instants share the name convention.
    yav_trace::trace_instant!("ingest");
    reqs.len()
}
