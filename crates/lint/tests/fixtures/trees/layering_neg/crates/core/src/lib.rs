//! Core (fixture): depends downward on the exporter — allowed.
#![forbid(unsafe_code)]

use yav_telemetry::counter;

/// Emits a counter through the exporter.
pub fn tick() {
    counter();
}
