//! The monitor boundary (fixture): only sanitized aggregates leave.

/// Per-user cost ledger.
pub struct Ledger {
    entries: u64,
}

/// A clean aggregate.
pub struct Summary {
    /// Event count only — no raw state.
    pub events: u64,
}

/// The monitor.
pub struct Monitor {
    ledger: Ledger,
}

impl Monitor {
    /// Sanitized view: counts, not contents.
    pub fn summary(&self) -> Summary {
        Summary {
            events: self.ledger.entries,
        }
    }
}
