//! Raw per-user browsing records (fixture).
#![forbid(unsafe_code)]

/// One raw browsing record.
pub struct Weblog {
    /// The raw URL.
    pub url: String,
}

/// Produces the most recent raw record.
pub fn latest_weblog() -> Weblog {
    Weblog { url: String::new() }
}
