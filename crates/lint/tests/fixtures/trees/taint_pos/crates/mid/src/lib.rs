//! Mid-layer plumbing (fixture): forwards raw state without reducing it.
#![forbid(unsafe_code)]

use yav_data::latest_weblog;

/// Counts bytes in the newest record without summarising it.
pub fn relay() -> usize {
    let w = latest_weblog();
    w.url.len()
}
