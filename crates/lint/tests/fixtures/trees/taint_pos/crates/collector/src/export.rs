//! The aggregation collector's export surface (fixture).

use yav_mid::relay;

/// Publishes a per-user byte count — the leak the lint must catch.
pub fn export_counts() -> usize {
    relay()
}
