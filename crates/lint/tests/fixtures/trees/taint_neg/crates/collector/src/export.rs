//! The aggregation collector's export surface (fixture).

use yav_mid::summary;

/// Publishes only the sanitized aggregate.
pub fn export_counts() -> usize {
    summary()
}
