//! Mid-layer aggregation (fixture): the declared sanitizer reduces the
//! raw record to a clean count before anything downstream sees it.
#![forbid(unsafe_code)]

use yav_data::latest_weblog;

/// Reduces the newest record to a clean aggregate.
pub fn summary() -> usize {
    let w = latest_weblog();
    w.url.len()
}
