//! The monitor boundary (fixture): leaks raw per-user state.

/// Per-user cost ledger.
pub struct Ledger {
    entries: u64,
}

/// Raw state exposed wholesale through a pub field.
pub struct Snapshot {
    /// Leaks the whole ledger.
    pub ledger: Ledger,
}

/// The monitor.
pub struct Monitor {
    ledger: Ledger,
}

impl Monitor {
    /// Leaks the raw ledger across the boundary.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }
}
