//! Exporter (fixture): reaches up into core — a layering violation.
#![forbid(unsafe_code)]

use yav_core::monitor::Monitor;

/// Renders state the exporter should never see.
pub fn render(_m: &Monitor) -> String {
    String::new()
}
