//! Negative span-hygiene fixture: idiomatic tracing, nothing to flag.

pub fn observe(reqs: &[u64]) -> usize {
    let _trace = yav_trace::trace_span!("ingest.observe");
    let _phase = trace_span!("ingest.sift", reqs.len());
    let mut guard = yav_trace::trace_span!("pme.train", 10);
    let _keep = &mut guard;
    yav_trace::trace_instant!("ingest.drop", 1);
    reqs.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_out_of_scope() {
        yav_trace::trace_span!("anything goes in tests");
    }
}
