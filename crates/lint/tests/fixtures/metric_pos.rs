//! Positive fixture: telemetry registrations violating the
//! `area.name[.unit]` convention (linted as crate `analyzer`).

pub fn record() {
    // Not kebab/snake lowercase, single segment.
    yav_telemetry::counter("BadName").inc();
    // First segment is not a workspace area.
    yav_telemetry::counter("zebra.requests").inc();
    // Too many segments.
    yav_telemetry::counter("analyzer.a.b.c.d").inc();
    // Same name registered as two different kinds: a collision.
    yav_telemetry::counter("analyzer.requests").inc();
    yav_telemetry::gauge("analyzer.requests").set(1.0);
}
