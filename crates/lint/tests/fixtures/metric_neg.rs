//! Negative fixture: well-formed `area.name[.unit]` registrations with
//! consistent kinds (linted as crate `analyzer`).

pub fn record(n: u64) {
    yav_telemetry::counter("analyzer.requests").add(n);
    yav_telemetry::counter("analyzer.requests").inc();
    yav_telemetry::gauge("analyzer.queue_depth").set(n as f64);
    yav_telemetry::histogram("analyzer.parse.us").observe(1.0);
}
