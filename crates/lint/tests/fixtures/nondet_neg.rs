//! Negative fixture: ordered containers, hash containers confined to
//! test code, and one reasoned suppression (linted as crate `analyzer`).

use std::collections::{BTreeMap, BTreeSet};

pub struct Aggregates {
    pub per_publisher: BTreeMap<String, u64>,
    pub seen: BTreeSet<u32>,
    // yav-lint: allow(nondet-iteration) — lookup-only cache, never iterated
    pub cache: std::collections::HashMap<u64, u64>,
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_maps_are_fine_in_tests() {
        let mut m = std::collections::HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.len(), 1);
    }
}
