//! Negative fixture: simulation code on SimTime, timing via the
//! telemetry histogram timer, wall clock only in test code (linted as
//! crate `auction`).

pub fn run_auction(now_minutes: i64, latency: &yav_telemetry::Histogram) -> i64 {
    let _timer = latency.time_us();
    now_minutes + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn benches_may_read_the_clock() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_nanos() < u128::MAX);
    }
}
