//! Negative fixture: hostile-input code that degrades instead of
//! panicking (linted as crate `nurl`). Test-code unwraps and one
//! reasoned suppression are permitted.

pub fn parse_price(raw: &str) -> Option<f64> {
    let v: f64 = raw.parse().ok()?;
    if v < 0.0 {
        return None;
    }
    Some(v)
}

pub fn decode_token(raw: &str) -> Vec<u8> {
    raw.bytes().map(|b| b.saturating_sub(1)).collect()
}

pub fn alphabet_index(nibble: u8) -> u8 {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    // yav-lint: allow(panic-policy) — nibble is masked to 0..16 by the caller
    *HEX.get((nibble & 0xf) as usize).expect("masked index")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert_eq!(parse_price("1.5").unwrap(), 1.5);
    }
}
