//! Positive fixture: wall-clock reads in simulation code (linted as
//! crate `auction`). Both clock sources must fire.

pub fn timestamp() -> u128 {
    let t0 = std::time::Instant::now();
    let wall = std::time::SystemTime::now();
    let _ = wall;
    t0.elapsed().as_micros()
}
