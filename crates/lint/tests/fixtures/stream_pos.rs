//! Positive fixture for `stream-materialize`: a "streaming" module that
//! quietly holds the whole population in memory. Linted under the
//! identity `crates/bench/src/stream.rs`.

/// Every request of the run, retained — the exact bug the streaming
/// builder exists to remove.
struct LeakyStream {
    all_requests: Vec<HttpRequest>,
    truth: VecDeque<GroundTruth>,
    by_user: BTreeMap<u32, Vec<DetectedImpression>>,
}

fn build_leaky(generator: &WeblogGenerator, market: &MarketConfig) -> LeakyStream {
    // Materialises the full weblog before "streaming" it.
    let log = generator.collect_parallel(market);
    let panel: Vec<PanelUser> = generator.panel().users().to_vec();
    let mut analyzer = WeblogAnalyzer::with_retention(Retention::Full);
    for req in &log.requests {
        analyzer.ingest(req);
    }
    let _ = panel;
    LeakyStream {
        all_requests: log.requests,
        truth: VecDeque::new(),
        by_user: BTreeMap::new(),
    }
}
