//! Positive fixture: hash collections in a determinism-scoped crate
//! (linted as crate `analyzer`). Both container kinds must fire.

pub struct Aggregates {
    pub per_publisher: std::collections::HashMap<String, u64>,
    pub seen: std::collections::HashSet<u32>,
}
