//! Positive fixture for `alloc-in-gen-path`: linted as
//! `crates/weblog/src/generator.rs`, where every heap allocation in
//! non-test code is a finding. Each statement below trips one pattern
//! class.

pub fn emit_request(host: &str, path_id: u32) -> usize {
    let url = format!("http://{host}/ad/{path_id}");
    let ua = url.to_string();
    let lowered = host.to_ascii_lowercase();
    let owned = lowered.to_owned();
    let parts: Vec<&str> = owned.split('.').collect();
    let label = String::from("pubstatic");
    let mut buf = Vec::new();
    buf.push(parts.len());
    let batch = vec![label, ua];
    batch.len() + buf.len()
}
