//! Negative fixture for `stream-materialize`: bounded state only —
//! commutative aggregates, fixed-size buffers with a justified
//! suppression, scalar folds. Linted under the identity
//! `crates/bench/src/stream.rs`.

/// Commutative aggregates: scalars and fixed-size histograms, never
/// per-event records.
struct BoundedStream {
    events: u64,
    charge_micros: i64,
    cost_hist: [u64; 64],
    rows: Vec<f64>,
    staged: Vec<(u32, Cpm)>,
    // yav-lint: allow(stream-materialize) — bounded: flushed at BATCH requests, never grows with the population
    buf: Vec<HttpRequest>,
}

fn build_bounded(generator: &WeblogGenerator, market: &MarketConfig) -> BoundedStream {
    let mut out = BoundedStream::default();
    let mut analyzer = WeblogAnalyzer::with_retention(Retention::Bounded);
    generator.run_shard(
        0,
        &mut Market::new_shard(market.clone(), 0),
        |req| {
            out.events += 1;
            analyzer.ingest(&req);
        },
        |t| out.charge_micros += t.charge.micros(),
    );
    out
}
