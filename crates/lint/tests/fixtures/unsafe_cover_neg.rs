//! Negative fixture: a designated unsafe crate root — no forbid, but a
//! reasoned opt-out, and every `unsafe` token carries its proof
//! (linted as `crates/simd/src/lib.rs`).

// yav-lint: allow(forbid-unsafe-coverage) — designated unsafe crate:
// every unsafe token below carries its own SAFETY comment.

// SAFETY: callers must prove avx2 support first, e.g. via
// `is_x86_feature_detected!("avx2")`.
#[target_feature(enable = "avx2")]
pub unsafe fn widened(p: *const u32) -> u32 {
    // SAFETY: the public dispatcher bounds-checked `p`.
    unsafe { *p }
}

pub fn dispatched(p: *const u32) -> u32 {
    // SAFETY: `p` comes from a live slice in the caller; the index was
    // checked against its length on the line above the call.
    unsafe { *p }
}

pub fn allowed(p: *const u32) -> u32 {
    // yav-lint: allow(forbid-unsafe-coverage) — equivalent safe read is miri-checked in CI.
    unsafe { *p }
}
