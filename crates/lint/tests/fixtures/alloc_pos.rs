//! Positive fixture for `alloc-in-reject-path`: linted as
//! `crates/nurl/src/urlref.rs`, where every heap allocation is a
//! finding. Each statement below trips one pattern class.

pub fn screen_host(host: &str) -> usize {
    let lowered = host.to_ascii_lowercase();
    let copy = lowered.to_owned();
    let rendered = format!("{copy}!");
    let parts: Vec<&str> = rendered.split('.').collect();
    let label = String::from("exchange");
    let mut scratch = Vec::new();
    scratch.push(parts.len());
    let boxed = vec![label];
    boxed.len() + scratch.len()
}
