//! Positive fixture: panic paths in hostile-input code (linted as crate
//! `nurl`). Every construct here must fire.

pub fn parse_price(raw: &str) -> f64 {
    let v: f64 = raw.parse().unwrap();
    if v < 0.0 {
        panic!("negative price");
    }
    v
}

pub fn decode_token(raw: &str) -> Vec<u8> {
    if raw.is_empty() {
        unimplemented!()
    }
    raw.bytes().map(|b| b.checked_sub(1).expect("underflow")).collect()
}
