//! Multi-file fixture trees for the graph passes. Each tree under
//! `tests/fixtures/trees/` is a miniature workspace — `crates/*/src`
//! sources, optional `Cargo.toml`s, and a tree-local `lint.toml` — and
//! is linted through the same entry point as the real workspace
//! (`lint_workspace`), so the whole stack is exercised: config loading,
//! file discovery, manifest parsing, symbol extraction, call-graph
//! assembly, taint propagation and the three graph rules.

use std::path::PathBuf;
use yav_lint::{lint_workspace, Diagnostic};

fn tree(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/trees")
        .join(name)
}

fn run(name: &str) -> Vec<Diagnostic> {
    lint_workspace(&tree(name))
        .unwrap_or_else(|e| panic!("linting fixture tree `{name}`: {e}"))
        .diagnostics
}

fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn taint_pos_reports_the_two_hop_leak_with_both_ends() {
    let diags = run("taint_pos");
    assert_eq!(
        diags.len(),
        1,
        "expected exactly one finding:\n{}",
        render(&diags)
    );
    let d = &diags[0];
    assert_eq!(d.rule, "privacy-taint");
    assert_eq!(d.rel, "crates/collector/src/export.rs");
    assert!(
        d.message.contains("fn `export_counts`"),
        "sink fn named: {}",
        d.message
    );
    assert!(
        d.message.contains("tainted type `Weblog`"),
        "taint source type named: {}",
        d.message
    );
    // The witness names the source's exact file:line:col (the `Weblog`
    // return type of `latest_weblog`) …
    assert!(
        d.message.contains("source at crates/data/src/lib.rs:11:27"),
        "source location: {}",
        d.message
    );
    // … and the full two-hop call chain from sink to source.
    assert!(
        d.message
            .contains("via export_counts → relay → latest_weblog"),
        "witness path: {}",
        d.message
    );
}

#[test]
fn taint_neg_sanitizer_route_is_clean() {
    let diags = run("taint_neg");
    assert!(
        diags.is_empty(),
        "expected a clean tree:\n{}",
        render(&diags)
    );
}

#[test]
fn boundary_pos_reports_fn_return_and_pub_field() {
    let diags = run("boundary_pos");
    assert_eq!(diags.len(), 2, "expected two findings:\n{}", render(&diags));
    assert!(diags.iter().all(|d| d.rule == "boundary-escape"));
    assert!(diags.iter().all(|d| d.rel == "crates/core/src/monitor.rs"));
    assert!(
        diags.iter().any(|d| d
            .message
            .contains("pub field `Snapshot.ledger` exposes `Ledger`")),
        "pub-field arm:\n{}",
        render(&diags)
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("pub fn `ledger` returns `Ledger`")),
        "return-type arm:\n{}",
        render(&diags)
    );
}

#[test]
fn boundary_neg_sanitized_surface_is_clean() {
    let diags = run("boundary_neg");
    assert!(
        diags.is_empty(),
        "expected a clean tree:\n{}",
        render(&diags)
    );
}

#[test]
fn layering_pos_reports_every_violation_surface() {
    let diags = run("layering_pos");
    assert_eq!(
        diags.len(),
        4,
        "expected four findings:\n{}",
        render(&diags)
    );
    assert!(diags.iter().all(|d| d.rule == "layering"));
    // Manifest back-edge, at the offending dependency line.
    assert!(
        diags.iter().any(|d| d.rel == "crates/telemetry/Cargo.toml"
            && d.line == 6
            && d.message.contains("`telemetry` must not depend on `core`")),
        "manifest back-edge:\n{}",
        render(&diags)
    );
    // Dev-dependency on a terminal crate.
    assert!(
        diags.iter().any(|d| d.rel == "crates/telemetry/Cargo.toml"
            && d.line == 9
            && d.message.contains("dev-depends on terminal crate `bench`")),
        "terminal dev-dep:\n{}",
        render(&diags)
    );
    // Source-level `yav_core` reference from the exporter.
    assert!(
        diags.iter().any(|d| d.rel == "crates/telemetry/src/lib.rs"
            && d.line == 4
            && d.message.contains("references `yav_core`")),
        "source back-edge:\n{}",
        render(&diags)
    );
    // A crate missing from the [layering] table.
    assert!(
        diags.iter().any(|d| d.rel == "crates/rogue/Cargo.toml"
            && d.message
                .contains("not classified in `lint.toml [layering]`")),
        "unclassified crate:\n{}",
        render(&diags)
    );
}

#[test]
fn layering_neg_allowed_dag_is_clean() {
    let diags = run("layering_neg");
    assert!(
        diags.is_empty(),
        "expected a clean tree:\n{}",
        render(&diags)
    );
}
