//! End-to-end seeded-violation test: builds a throwaway workspace in a
//! temp directory shaped like the real repo (core owns the ledger, exec
//! forwards, telemetry exports), seeds a two-hop privacy leak into the
//! exporter, and asserts the **exact** diagnostic — rule, sink
//! `file:line:col`, source `file:line:col` and the witness call chain.
//! Then it applies the remediation the diagnostic asks for (route
//! through a declared sanitizer) and asserts the tree lints clean.

use std::fs;
use std::path::Path;
use yav_lint::lint_workspace;

fn write(root: &Path, rel: &str, content: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, content).unwrap();
}

fn seed(root: &Path) {
    write(
        root,
        "lint.toml",
        "[taint]\n\
         types = [\"Ledger\"]\n\
         \n\
         [sinks]\n\
         modules = [\"crates/telemetry/src/export.rs\"]\n\
         \n\
         [sanitizers]\n\
         fns = [\"summary\"]\n\
         \n\
         [layering]\n\
         core = []\n\
         exec = [\"core\"]\n\
         telemetry = [\"exec\", \"core\"]\n\
         \n\
         [manifests]\n\
         exec = [\"core\"]\n\
         telemetry = [\"exec\", \"core\"]\n",
    );
    write(
        root,
        "crates/core/src/ledger.rs",
        "//! Per-user ledger (seeded fixture).\n\
         \n\
         /// The per-user price ledger.\n\
         pub struct Ledger {\n\
         \x20   /// Total micros.\n\
         \x20   pub total: u64,\n\
         }\n\
         \n\
         /// The user's raw ledger.\n\
         pub fn raw_ledger() -> Ledger {\n\
         \x20   Ledger { total: 0 }\n\
         }\n",
    );
    write(
        root,
        "crates/exec/src/relay.rs",
        "//! Mid-layer (seeded fixture).\n\
         \n\
         use yav_core::raw_ledger;\n\
         \n\
         /// Forwards the raw total without sanitising.\n\
         pub fn relay_total() -> u64 {\n\
         \x20   raw_ledger().total\n\
         }\n\
         \n\
         /// The declared sanitizer: reduces the ledger to a clean count.\n\
         pub fn summary() -> u64 {\n\
         \x20   raw_ledger().total\n\
         }\n",
    );
    // The seeded leak: the exporter reaches the raw ledger through
    // relay_total — two call hops from the source.
    write(
        root,
        "crates/telemetry/src/export.rs",
        "//! Exporter (seeded fixture).\n\
         \n\
         use yav_exec::relay_total;\n\
         \n\
         /// Publishes the per-user total — the seeded leak.\n\
         pub fn render_totals() -> u64 {\n\
         \x20   relay_total()\n\
         }\n",
    );
}

#[test]
fn seeded_two_hop_leak_yields_the_exact_diagnostic_and_the_fix_clears_it() {
    let root = std::env::temp_dir().join(format!("yav-lint-seeded-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    seed(&root);

    let outcome = lint_workspace(&root).expect("linting the seeded tree");
    let rendered: Vec<String> = outcome.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(
        rendered,
        [
            "crates/telemetry/src/export.rs:6:5: [privacy-taint] fn `render_totals` is in a \
          sink module but reaches tainted type `Ledger` (source at \
          crates/core/src/ledger.rs:10:24) via render_totals → relay_total → raw_ledger: \
          sinks may only consume sanitized aggregates — route through a `lint.toml \
          [sanitizers]` fn or strip the sensitive data before it gets here"
                .to_owned()
        ],
        "the seeded leak must yield exactly this diagnostic"
    );

    // Apply the remediation the message asks for: consume the declared
    // sanitizer instead of the raw relay.
    write(
        &root,
        "crates/telemetry/src/export.rs",
        "//! Exporter (seeded fixture): fixed.\n\
         \n\
         use yav_exec::summary;\n\
         \n\
         /// Publishes only the sanitized aggregate.\n\
         pub fn render_totals() -> u64 {\n\
         \x20   summary()\n\
         }\n",
    );
    let fixed = lint_workspace(&root).expect("linting the fixed tree");
    assert!(
        fixed.diagnostics.is_empty(),
        "routing through the sanitizer must clear the finding:\n{}",
        fixed
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );

    fs::remove_dir_all(&root).unwrap();
}
