//! Pins the machine-readable output shapes. The SARIF 2.1.0 and JSON
//! renderings of the `taint_pos` fixture tree are compared byte-for-byte
//! against checked-in golden files, so any change to the output schema
//! is a deliberate, reviewed diff. Regenerate with
//! `YAV_LINT_UPDATE_SNAPSHOT=1 cargo test -p yav-lint --test sarif_snapshot`.

use std::fs;
use std::path::PathBuf;
use yav_lint::{lint_workspace, output};

fn fixture(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel)
}

fn check_snapshot(golden_rel: &str, actual: &str) {
    let golden_path = fixture(golden_rel);
    if std::env::var_os("YAV_LINT_UPDATE_SNAPSHOT").is_some() {
        fs::write(&golden_path, actual).unwrap();
        return;
    }
    let golden = fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("{}: {e} (run with YAV_LINT_UPDATE_SNAPSHOT=1)", golden_rel));
    assert_eq!(
        actual, golden,
        "{golden_rel} is stale: rerun with YAV_LINT_UPDATE_SNAPSHOT=1 and review the diff"
    );
}

#[test]
fn sarif_output_matches_the_golden_snapshot() {
    let outcome = lint_workspace(&fixture("trees/taint_pos")).expect("lint taint_pos");
    let sarif = output::sarif(&outcome);
    // Sanity before pinning: the document carries the schema pointer,
    // a descriptor for the one rule that fired, and one result.
    assert!(sarif.contains("sarif-schema-2.1.0.json"));
    assert!(sarif.contains("\"id\": \"privacy-taint\""));
    assert!(sarif.contains("\"ruleId\": \"privacy-taint\""));
    assert!(sarif.contains("\"startLine\": 6"));
    check_snapshot("sarif_snapshot.golden.json", &sarif);
}

#[test]
fn json_output_matches_the_golden_snapshot() {
    let outcome = lint_workspace(&fixture("trees/taint_pos")).expect("lint taint_pos");
    let json = output::json(&outcome);
    assert!(json.contains("\"tool\": \"yav-lint\""));
    assert!(json.contains("\"graph\":"));
    check_snapshot("json_snapshot.golden.json", &json);
}
