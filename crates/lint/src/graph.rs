//! The workspace graph: crate manifests, the crate dependency DAG, and
//! the approximate cross-file call graph the taint pass walks.
//!
//! Call resolution is name-based: a call `foo(…)` inside crate `a`
//! resolves to every workspace fn named `foo` defined in `a` or in a
//! crate of `a`'s dependency closure. That over-approximates real
//! dispatch (no receiver types), which errs the safe way for a privacy
//! pass; the dependency-closure filter keeps it tight in practice,
//! because exporter crates sit at the bottom of the DAG and cannot even
//! name the tainted types.

use crate::config::LintConfig;
use crate::source::{FileKind, SourceFile};
use crate::symbols::{extract, FileSymbols, FnSym};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

/// One crate's parsed `Cargo.toml` (the slice the linter needs).
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Crate label: directory name under `crates/`, or `root`.
    pub krate: String,
    /// Workspace-relative manifest path.
    pub rel: String,
    /// Workspace-internal `[dependencies]` entries (`yav-foo` → `foo`),
    /// with the 1-based line of each.
    pub deps: Vec<(String, u32)>,
    /// Workspace-internal `[dev-dependencies]` entries.
    pub dev_deps: Vec<(String, u32)>,
}

/// Parses the `yav-*` entries of one manifest.
pub fn parse_manifest(krate: &str, rel: &str, text: &str) -> Manifest {
    let mut m = Manifest {
        krate: krate.to_owned(),
        rel: rel.to_owned(),
        deps: Vec::new(),
        dev_deps: Vec::new(),
    };
    #[derive(PartialEq)]
    enum Section {
        Deps,
        DevDeps,
        Other,
    }
    let mut section = Section::Other;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = match line {
                "[dependencies]" => Section::Deps,
                "[dev-dependencies]" => Section::DevDeps,
                _ => Section::Other,
            };
            continue;
        }
        if section == Section::Other {
            continue;
        }
        let Some((key, _)) = line.split_once('=') else {
            continue;
        };
        let Some(dep) = key.trim().strip_prefix("yav-") else {
            continue;
        };
        let entry = (dep.replace('-', "_"), idx as u32 + 1);
        match section {
            Section::Deps => m.deps.push(entry),
            Section::DevDeps => m.dev_deps.push(entry),
            Section::Other => unreachable!(),
        }
    }
    m
}

/// Loads every workspace manifest: `crates/*/Cargo.toml` plus the root
/// package manifest (crate label `root`).
pub fn load_manifests(root: &Path) -> io::Result<Vec<Manifest>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let path = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&path) {
            out.push(parse_manifest(
                &name,
                &format!("crates/{name}/Cargo.toml"),
                &text,
            ));
        }
    }
    if let Ok(text) = std::fs::read_to_string(root.join("Cargo.toml")) {
        out.push(parse_manifest("root", "Cargo.toml", &text));
    }
    Ok(out)
}

/// One fn node in the workspace call graph.
#[derive(Debug)]
pub struct FnNode {
    /// Owning crate label.
    pub krate: String,
    /// Workspace-relative file path.
    pub rel: String,
    /// The extracted symbol.
    pub sym: FnSym,
}

/// The assembled workspace graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All production fns, in file order.
    pub fns: Vec<FnNode>,
    /// Fn ids by name (for call resolution).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Resolved call edges: `callees[caller]` is sorted and deduped.
    pub callees: Vec<Vec<usize>>,
    /// Direct crate deps: manifests merged with `[manifests]` config.
    pub crate_deps: BTreeMap<String, BTreeSet<String>>,
    /// Per-file symbol tables, keyed by workspace-relative path.
    pub files: BTreeMap<String, FileSymbols>,
    /// Total resolved call edges (for the stats line).
    pub call_edges: usize,
}

impl Graph {
    /// Builds the graph over production sources. Test/bench/example
    /// files contribute no fn nodes: the passes police the shipped
    /// dataflow, and a test calling a tainted helper is the test suite
    /// doing its job.
    pub fn build(files: &[SourceFile], manifests: &[Manifest], config: &LintConfig) -> Graph {
        let mut g = Graph::default();
        for m in manifests {
            let entry = g.crate_deps.entry(m.krate.clone()).or_default();
            entry.extend(m.deps.iter().map(|(d, _)| d.clone()));
        }
        for (krate, deps) in &config.manifests {
            let entry = g.crate_deps.entry(krate.clone()).or_default();
            entry.extend(deps.iter().cloned());
        }

        for file in files {
            let syms = extract(file);
            if file.kind == FileKind::Source {
                for f in &syms.fns {
                    g.fns.push(FnNode {
                        krate: file.crate_name.clone(),
                        rel: file.rel.clone(),
                        sym: f.clone(),
                    });
                }
            }
            g.files.insert(file.rel.clone(), syms);
        }
        for (id, node) in g.fns.iter().enumerate() {
            g.by_name.entry(node.sym.name.clone()).or_default().push(id);
        }

        // Dependency closures (crate itself included).
        let mut closures: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        let crate_names: BTreeSet<&str> = g
            .fns
            .iter()
            .map(|n| n.krate.as_str())
            .chain(g.crate_deps.keys().map(|k| k.as_str()))
            .collect();
        for &krate in &crate_names {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut stack = vec![krate];
            while let Some(c) = stack.pop() {
                if !seen.insert(c) {
                    continue;
                }
                if let Some(deps) = g.crate_deps.get(c) {
                    stack.extend(deps.iter().map(|d| d.as_str()));
                }
            }
            closures.insert(krate, seen);
        }

        // Resolve call edges within each caller's dependency closure.
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); g.fns.len()];
        for (id, node) in g.fns.iter().enumerate() {
            let reach = closures.get(node.krate.as_str());
            for call in &node.sym.calls {
                let Some(cands) = g.by_name.get(&call.name) else {
                    continue;
                };
                for &cand in cands {
                    if cand == id {
                        continue;
                    }
                    let callee_crate = g.fns[cand].krate.as_str();
                    let visible = callee_crate == node.krate
                        || reach.is_some_and(|r| r.contains(callee_crate));
                    if visible {
                        callees[id].push(cand);
                    }
                }
            }
            callees[id].sort_unstable();
            callees[id].dedup();
            g.call_edges += callees[id].len();
        }
        g.callees = callees;
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, krate: &str, src: &str) -> SourceFile {
        SourceFile::new(rel.into(), krate.into(), FileKind::Source, src)
    }

    #[test]
    fn manifest_parsing_splits_dep_kinds() {
        let m = parse_manifest(
            "core",
            "crates/core/Cargo.toml",
            "[package]\nname = \"yav-core\"\n[dependencies]\nyav-pme = { workspace = true }\n\
             rand = { workspace = true }\n[dev-dependencies]\nyav-campaign = { workspace = true }\n",
        );
        assert_eq!(m.deps.len(), 1);
        assert_eq!(m.deps[0].0, "pme");
        assert_eq!(m.dev_deps.len(), 1);
        assert_eq!(m.dev_deps[0].0, "campaign");
    }

    #[test]
    fn calls_resolve_only_within_the_dependency_closure() {
        let files = [
            file("crates/a/src/lib.rs", "a", "pub fn top() { leak(); }"),
            file("crates/b/src/lib.rs", "b", "pub fn leak() {}"),
            file("crates/c/src/lib.rs", "c", "pub fn leak() {}"),
        ];
        let mut config = LintConfig::default();
        // a depends on b only; the call in `top` must not reach c::leak.
        config.manifests.insert("a".into(), vec!["b".into()]);
        let g = Graph::build(&files, &[], &config);
        let top = g.fns.iter().position(|f| f.sym.name == "top").unwrap();
        let resolved: Vec<&str> = g.callees[top]
            .iter()
            .map(|&c| g.fns[c].krate.as_str())
            .collect();
        assert_eq!(resolved, ["b"]);
    }

    #[test]
    fn transitive_deps_are_visible() {
        let files = [
            file("crates/a/src/lib.rs", "a", "pub fn top() { deep(); }"),
            file("crates/c/src/lib.rs", "c", "pub fn deep() {}"),
        ];
        let mut config = LintConfig::default();
        config.manifests.insert("a".into(), vec!["b".into()]);
        config.manifests.insert("b".into(), vec!["c".into()]);
        let g = Graph::build(&files, &[], &config);
        let top = g.fns.iter().position(|f| f.sym.name == "top").unwrap();
        assert_eq!(g.callees[top].len(), 1);
    }

    #[test]
    fn test_files_contribute_no_fn_nodes() {
        let files = [SourceFile::new(
            "crates/a/tests/t.rs".into(),
            "a".into(),
            FileKind::Test,
            "fn helper() {}",
        )];
        let g = Graph::build(&files, &[], &LintConfig::default());
        assert!(g.fns.is_empty());
    }
}
