//! A lexed source file with workspace context: which crate it belongs
//! to, whether it is production or test code, which lines sit inside
//! `#[cfg(test)]` blocks, and the inline `yav-lint` suppressions it
//! carries.

use crate::lexer::{lex, Comment, Token};

/// Which target tree a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` of a crate — production code; all rules apply.
    Source,
    /// `tests/` — integration tests; rules that exempt test code skip it.
    Test,
    /// `benches/` — benchmarks; treated like test code.
    Bench,
    /// `examples/` — treated like test code.
    Example,
}

/// One parsed `// yav-lint: allow(<rule>[, <rule>]) — <reason>` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule names inside `allow(...)`.
    pub rules: Vec<String>,
    /// 1-based line of the comment. The suppression covers this line and
    /// the next, so it works both as a trailing comment and on its own
    /// line above the offending code.
    pub line: u32,
    /// The written justification after the dash.
    pub reason: String,
}

/// A fully prepared file, ready for rules.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (diagnostic display).
    pub rel: String,
    /// Crate label: the directory name under `crates/`, or `root` for the
    /// top-level facade package.
    pub crate_name: String,
    /// Which target tree the file belongs to.
    pub kind: FileKind,
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// Well-formed suppressions.
    pub suppressions: Vec<Suppression>,
    /// Lines of `yav-lint:` comments that failed to parse, with the
    /// problem description (reported as `bad-suppression`).
    pub malformed_suppressions: Vec<(u32, String)>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items.
    test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes and annotates one file.
    pub fn new(rel: String, crate_name: String, kind: FileKind, src: &str) -> SourceFile {
        let lexed = lex(src);
        let test_ranges = find_test_ranges(&lexed.tokens);
        let mut suppressions = Vec::new();
        let mut malformed = Vec::new();
        for c in &lexed.comments {
            match parse_suppression(&c.text) {
                SuppressionParse::NotOne => {}
                SuppressionParse::Ok(rules, reason) => suppressions.push(Suppression {
                    rules,
                    line: c.line,
                    reason,
                }),
                SuppressionParse::Malformed(why) => malformed.push((c.line, why)),
            }
        }
        SourceFile {
            rel,
            crate_name,
            kind,
            tokens: lexed.tokens,
            comments: lexed.comments,
            suppressions,
            malformed_suppressions: malformed,
            test_ranges,
        }
    }

    /// True when `line` is test/bench/example code: rules that only
    /// police production behaviour skip such lines.
    pub fn in_test_code(&self, line: u32) -> bool {
        self.kind != FileKind::Source
            || self
                .test_ranges
                .iter()
                .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// True when a suppression for `rule` covers `line` (the comment's
    /// own line or the line directly below it).
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| (s.line == line || s.line + 1 == line) && s.rules.iter().any(|r| r == rule))
    }
}

/// Scans for `#[cfg(test)]` attributes and returns the line span of each
/// annotated item's brace block.
fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 4 < tokens.len() {
        let hit = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens.get(i + 5).is_some_and(|t| t.is_punct(')'));
        if !hit {
            i += 1;
            continue;
        }
        // Skip to the attribute's closing `]`, then past any further
        // attributes, to the annotated item.
        let mut j = i + 6;
        while j < tokens.len() && !tokens[j].is_punct(']') {
            j += 1;
        }
        j += 1;
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            while j < tokens.len() && !tokens[j].is_punct(']') {
                j += 1;
            }
            j += 1;
        }
        // Find the item's block: the first `{` before any `;` (a
        // `#[cfg(test)] use ...;` has no block).
        let mut k = j;
        let mut open = None;
        while k < tokens.len() {
            if tokens[k].is_punct(';') {
                break;
            }
            if tokens[k].is_punct('{') {
                open = Some(k);
                break;
            }
            k += 1;
        }
        if let Some(open) = open {
            let mut depth = 0usize;
            let mut close = open;
            for (idx, t) in tokens.iter().enumerate().skip(open) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        close = idx;
                        break;
                    }
                }
            }
            out.push((tokens[i].line, tokens[close].line));
            i = close + 1;
        } else {
            i = k + 1;
        }
    }
    out
}

enum SuppressionParse {
    /// Not a yav-lint comment at all.
    NotOne,
    Ok(Vec<String>, String),
    Malformed(String),
}

/// Parses one comment body. Accepted form (the comment must *start*
/// with the marker, so prose that merely mentions the syntax is left
/// alone): `yav-lint: allow(rule-a, rule-b) — reason`, where a plain
/// `-` or `:` also separates the reason. The reason is mandatory: an
/// unexplained suppression is itself a finding.
fn parse_suppression(comment: &str) -> SuppressionParse {
    let text = comment.trim_start_matches(['/', '!']).trim();
    let Some(rest) = text.strip_prefix("yav-lint:") else {
        return SuppressionParse::NotOne;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return SuppressionParse::Malformed(
            "expected `yav-lint: allow(<rule>) — <reason>`".to_owned(),
        );
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return SuppressionParse::Malformed("missing `(` after `allow`".to_owned());
    };
    let Some(close) = rest.find(')') else {
        return SuppressionParse::Malformed("missing `)` in allow list".to_owned());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return SuppressionParse::Malformed("empty allow list".to_owned());
    }
    let known = crate::rules::RULE_NAMES;
    if let Some(bad) = rules.iter().find(|r| !known.contains(&r.as_str())) {
        return SuppressionParse::Malformed(format!(
            "unknown rule `{bad}` (known: {})",
            known.join(", ")
        ));
    }
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '-', ':', '–'])
        .trim();
    if reason.is_empty() {
        return SuppressionParse::Malformed(
            "suppression carries no reason; write `— <why this is sound>`".to_owned(),
        );
    }
    SuppressionParse::Ok(rules, reason.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("x.rs".into(), "demo".into(), FileKind::Source, src)
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let f = file("fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}");
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(3));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn cfg_test_use_has_no_block() {
        let f = file("#[cfg(test)]\nuse foo::Bar;\nfn c() {}");
        assert!(!f.in_test_code(3));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_block() {
        let f = file("#[cfg(not(test))]\nmod real { fn a() {} }");
        assert!(!f.in_test_code(2));
    }

    #[test]
    fn suppression_with_reason_parses_and_covers_next_line() {
        let f = file("// yav-lint: allow(nondet-iteration) — keyed lookups only\nlet x = 1;");
        assert_eq!(f.suppressions.len(), 1);
        assert!(f.suppressed("nondet-iteration", 1));
        assert!(f.suppressed("nondet-iteration", 2));
        assert!(!f.suppressed("nondet-iteration", 3));
        assert!(!f.suppressed("panic-policy", 2));
    }

    #[test]
    fn reasonless_or_unknown_suppressions_are_malformed() {
        let f = file("// yav-lint: allow(panic-policy)\nlet x = 1;");
        assert_eq!(f.malformed_suppressions.len(), 1);
        let f = file("// yav-lint: allow(no-such-rule) — because\nlet x = 1;");
        assert_eq!(f.malformed_suppressions.len(), 1);
    }

    #[test]
    fn tests_dir_files_are_all_test_code() {
        let f = SourceFile::new("t.rs".into(), "demo".into(), FileKind::Test, "fn a() {}");
        assert!(f.in_test_code(1));
    }
}
