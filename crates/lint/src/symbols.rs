//! Per-file symbol tables for the graph passes.
//!
//! The second pass over the lexer output: fn definitions with their
//! signature/return type names, approximate call references (free calls,
//! method calls, path calls), type mentions and field reads inside fn
//! bodies, `pub` struct fields, and references to workspace crates
//! (`yav_*` path roots). Everything is name-based and approximate by
//! design — there is no type checker here — but the approximation is
//! *over*-inclusive, which is the right direction for a privacy pass:
//! taint can only be over-reported, never silently missed because a
//! value took an alias.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// One referenced name with its source position.
#[derive(Debug, Clone)]
pub struct NameRef {
    /// The identifier text.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One `fn` definition.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// The fn's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Declared with any `pub` visibility.
    pub is_pub: bool,
    /// Type-position identifiers anywhere in the signature (params,
    /// generics, where clause, return).
    pub sig_types: Vec<NameRef>,
    /// Type-position identifiers in the return type only.
    pub return_types: Vec<NameRef>,
    /// Call references in the body: `name(…)`, `.name(…)`, `Path::name(…)`.
    pub calls: Vec<NameRef>,
    /// Capitalised identifiers in the body — struct literals, enum
    /// paths, type ascriptions, turbofish arguments.
    pub type_mentions: Vec<NameRef>,
    /// `.field` reads (no following call parens).
    pub field_reads: Vec<NameRef>,
}

/// One `pub` field of a `pub` struct, with its type names.
#[derive(Debug, Clone)]
pub struct PubField {
    /// The struct's name.
    pub strukt: String,
    /// The field's name.
    pub field: String,
    /// Type identifiers in the field's type.
    pub types: Vec<NameRef>,
    /// 1-based line of the field name.
    pub line: u32,
    /// 1-based column of the field name.
    pub col: u32,
}

/// Everything the graph passes need from one file.
#[derive(Debug, Default)]
pub struct FileSymbols {
    /// Fn definitions outside `#[cfg(test)]` code.
    pub fns: Vec<FnSym>,
    /// Pub fields of pub structs outside `#[cfg(test)]` code.
    pub pub_fields: Vec<PubField>,
    /// Workspace crate references: each `yav_foo` path root becomes a
    /// `foo` entry.
    pub crate_refs: Vec<NameRef>,
}

/// Rust keywords that can precede `(` without being calls, or sit in
/// type position without naming a type.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "in", "as", "move", "let", "else", "fn",
    "unsafe", "async", "await", "where", "impl", "dyn", "pub", "use", "mod", "crate", "super",
    "self", "Self", "mut", "ref", "const", "static", "break", "continue", "yield", "struct",
    "enum", "trait", "type",
];

fn is_keyword(name: &str) -> bool {
    NON_CALL_KEYWORDS.contains(&name)
}

fn name_ref(t: &Token) -> NameRef {
    NameRef {
        name: t.text.clone(),
        line: t.line,
        col: t.col,
    }
}

/// True when the identifier looks like a type name (capitalised first
/// letter) and is not a keyword.
fn is_type_like(t: &Token) -> bool {
    t.kind == TokenKind::Ident
        && t.text
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase())
        && !is_keyword(&t.text)
}

/// Extracts the symbol table of one file. Test code (whole test files,
/// `#[cfg(test)]` blocks) is skipped: the graph passes police the
/// production dataflow.
pub fn extract(file: &SourceFile) -> FileSymbols {
    let mut out = FileSymbols::default();
    let toks = &file.tokens;

    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident || file.in_test_code(tok.line) {
            continue;
        }
        // Workspace crate references: `yav_foo::…` or `use yav_foo…`.
        if let Some(rest) = tok.text.strip_prefix("yav_") {
            if !rest.is_empty() {
                out.crate_refs.push(NameRef {
                    name: rest.to_owned(),
                    line: tok.line,
                    col: tok.col,
                });
            }
        }
        if tok.is_ident("fn") {
            if let Some(f) = extract_fn(toks, i, file) {
                out.fns.push(f);
            }
        }
        if tok.is_ident("struct") {
            extract_pub_struct(toks, i, &mut out.pub_fields);
        }
    }
    out
}

/// True when the item whose keyword sits at `kw` carries `pub` — scans
/// back over visibility modifiers and other prefix keywords up to the
/// previous item terminator.
fn has_pub_prefix(toks: &[Token], kw: usize) -> bool {
    let mut j = kw;
    let mut steps = 0;
    while j > 0 && steps < 12 {
        j -= 1;
        steps += 1;
        let t = &toks[j];
        if t.is_ident("pub") {
            return true;
        }
        // Tokens that may legitimately sit between `pub` and the item
        // keyword: `pub(crate)`, `pub(in path)`, `const`, `unsafe`,
        // `async`, `extern "C"`.
        let bridges = t.is_punct('(')
            || t.is_punct(')')
            || t.is_ident("crate")
            || t.is_ident("super")
            || t.is_ident("in")
            || t.is_ident("self")
            || t.is_ident("const")
            || t.is_ident("unsafe")
            || t.is_ident("async")
            || t.is_ident("extern")
            || t.kind == TokenKind::Str;
        if !bridges {
            return false;
        }
    }
    false
}

/// Parses the fn whose `fn` keyword sits at index `i`.
fn extract_fn(toks: &[Token], i: usize, file: &SourceFile) -> Option<FnSym> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokenKind::Ident || is_keyword(&name_tok.text) {
        return None; // `fn` in a type position (`fn()` pointer type).
    }
    let mut f = FnSym {
        name: name_tok.text.clone(),
        line: toks[i].line,
        col: toks[i].col,
        is_pub: has_pub_prefix(toks, i),
        sig_types: Vec::new(),
        return_types: Vec::new(),
        calls: Vec::new(),
        type_mentions: Vec::new(),
        field_reads: Vec::new(),
    };

    // Signature: everything from after the name to the body `{` or a
    // terminating `;` (trait method without body), tracking whether we
    // are past `->`.
    let mut j = i + 2;
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut in_return = false;
    let mut body_open = None;
    while let Some(t) = toks.get(j) {
        match t.kind {
            TokenKind::Punct => {
                let c = t.text.as_bytes()[0];
                match c {
                    b'(' | b'[' => paren += 1,
                    b')' | b']' => paren -= 1,
                    b'<' => angle += 1,
                    b'>' => {
                        // `->`: the previous token is `-`.
                        if j > 0 && toks[j - 1].is_punct('-') {
                            in_return = true;
                        } else {
                            angle -= 1;
                        }
                    }
                    b'{' if paren == 0 && angle <= 0 => {
                        body_open = Some(j);
                        break;
                    }
                    b';' if paren == 0 => break,
                    _ => {}
                }
            }
            TokenKind::Ident => {
                if t.is_ident("where") {
                    in_return = false;
                }
                if is_type_like(t) {
                    f.sig_types.push(name_ref(t));
                    if in_return {
                        f.return_types.push(name_ref(t));
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }

    // Body: balanced braces from `body_open`.
    let Some(open) = body_open else {
        return Some(f); // bodyless (trait decl) — signature only.
    };
    let mut depth = 0i32;
    let mut k = open;
    while let Some(t) = toks.get(k) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokenKind::Ident && !file.in_test_code(t.line) {
            let prev = &toks[k - 1];
            let next = toks.get(k + 1);
            let next_is_call = next.is_some_and(|n| n.is_punct('('));
            let next_is_macro = next.is_some_and(|n| n.is_punct('!'));
            if next_is_call && !is_keyword(&t.text) && !next_is_macro {
                f.calls.push(name_ref(t));
            } else if prev.is_punct('.') && !next_is_call && !is_keyword(&t.text) {
                f.field_reads.push(name_ref(t));
            }
            if is_type_like(t) {
                f.type_mentions.push(name_ref(t));
            }
        }
        k += 1;
    }
    Some(f)
}

/// Parses `pub struct Name { pub field: Type, … }` at the `struct`
/// keyword index, appending pub fields of pub structs.
fn extract_pub_struct(toks: &[Token], i: usize, out: &mut Vec<PubField>) {
    if !has_pub_prefix(toks, i) {
        return;
    }
    let Some(name_tok) = toks.get(i + 1) else {
        return;
    };
    if name_tok.kind != TokenKind::Ident {
        return;
    }
    // Find the `{` opening the field block (skip generics; a `;` first
    // means a unit/tuple struct — tuple fields are positional and the
    // boundary rule tracks named stores, so they are skipped here).
    let mut j = i + 2;
    let mut angle = 0i32;
    let open = loop {
        match toks.get(j) {
            Some(t) if t.is_punct('<') => angle += 1,
            Some(t) if t.is_punct('>') => angle -= 1,
            Some(t) if t.is_punct('{') && angle <= 0 => break j,
            Some(t) if t.is_punct(';') || t.is_punct('(') => return,
            Some(_) => {}
            None => return,
        }
        j += 1;
    };
    // Fields: at brace depth 1, `pub name : <type tokens> ,`.
    let mut depth = 0i32;
    let mut k = open;
    while let Some(t) = toks.get(k) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 && t.is_ident("pub") {
            // Field name: next ident (skip `pub(crate)` forms).
            let mut m = k + 1;
            while toks.get(m).is_some_and(|t| {
                t.is_punct('(')
                    || t.is_punct(')')
                    || t.is_ident("crate")
                    || t.is_ident("super")
                    || t.is_ident("in")
            }) {
                m += 1;
            }
            let Some(field_tok) = toks.get(m) else { break };
            if field_tok.kind != TokenKind::Ident
                || !toks.get(m + 1).is_some_and(|t| t.is_punct(':'))
            {
                k += 1;
                continue;
            }
            // Type tokens until the field-separating `,` at depth 1
            // (or the closing `}`), respecting nested angles/parens.
            let mut types = Vec::new();
            let mut n = m + 2;
            let mut nest = 0i32;
            while let Some(tt) = toks.get(n) {
                if tt.is_punct('<') || tt.is_punct('(') || tt.is_punct('[') {
                    nest += 1;
                } else if tt.is_punct('>') || tt.is_punct(')') || tt.is_punct(']') {
                    nest -= 1;
                } else if (tt.is_punct(',') && nest <= 0) || tt.is_punct('}') {
                    break;
                } else if is_type_like(tt) {
                    types.push(name_ref(tt));
                }
                n += 1;
            }
            out.push(PubField {
                strukt: name_tok.text.clone(),
                field: field_tok.text.clone(),
                types,
                line: field_tok.line,
                col: field_tok.col,
            });
            k = n;
            continue;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn symbols(src: &str) -> FileSymbols {
        let f = SourceFile::new("x.rs".into(), "demo".into(), FileKind::Source, src);
        extract(&f)
    }

    #[test]
    fn fn_signature_and_return_types() {
        let s = symbols("pub fn f(a: &HttpRequest, n: u32) -> Option<Ledger> { n }");
        assert_eq!(s.fns.len(), 1);
        let f = &s.fns[0];
        assert!(f.is_pub);
        assert_eq!(f.name, "f");
        let sig: Vec<&str> = f.sig_types.iter().map(|r| r.name.as_str()).collect();
        assert!(sig.contains(&"HttpRequest") && sig.contains(&"Ledger"));
        let ret: Vec<&str> = f.return_types.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(ret, ["Option", "Ledger"]);
    }

    #[test]
    fn body_calls_mentions_and_field_reads() {
        let s = symbols(
            "fn g(x: u8) { let u = Url::parse(\"a\"); helper(u); let c = ev.cleartext_cpm; \
             let t = TenantState { id: 0 }; t.summary(); }",
        );
        let f = &s.fns[0];
        assert!(!f.is_pub);
        let calls: Vec<&str> = f.calls.iter().map(|r| r.name.as_str()).collect();
        assert!(
            calls.contains(&"parse") && calls.contains(&"helper") && calls.contains(&"summary")
        );
        let mentions: Vec<&str> = f.type_mentions.iter().map(|r| r.name.as_str()).collect();
        assert!(mentions.contains(&"Url") && mentions.contains(&"TenantState"));
        let fields: Vec<&str> = f.field_reads.iter().map(|r| r.name.as_str()).collect();
        assert!(fields.contains(&"cleartext_cpm"));
        // `summary` is a call, not a field read.
        assert!(!fields.contains(&"summary"));
    }

    #[test]
    fn generic_fns_do_not_mistake_comparisons_for_generics() {
        let s = symbols("fn h<T: Visit<Url>>(x: T) -> bool { 1 < 2 }");
        let sig: Vec<&str> = s.fns[0].sig_types.iter().map(|r| r.name.as_str()).collect();
        assert!(sig.contains(&"Url"));
    }

    #[test]
    fn cfg_test_fns_are_skipped() {
        let s = symbols("fn live() {}\n#[cfg(test)]\nmod t { fn dead() { Url::parse(\"\"); } }");
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "live");
    }

    #[test]
    fn pub_struct_pub_fields() {
        let s = symbols(
            "pub struct Report { pub events: Vec<PriceEvent>, total: u64, pub n: u32 }\n\
             struct Private { pub x: Url }",
        );
        assert_eq!(s.pub_fields.len(), 2);
        assert_eq!(s.pub_fields[0].field, "events");
        let t: Vec<&str> = s.pub_fields[0]
            .types
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(t, ["Vec", "PriceEvent"]);
        assert_eq!(s.pub_fields[1].field, "n");
    }

    #[test]
    fn crate_refs_are_harvested() {
        let s = symbols("use yav_core::YourAdValue;\nfn f() { yav_telemetry::counter(\"a.b\"); }");
        let refs: Vec<&str> = s.crate_refs.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(refs, ["core", "telemetry"]);
    }

    #[test]
    fn macros_are_not_calls() {
        let s = symbols("fn f() { format!(\"{}\", x); real(); }");
        let calls: Vec<&str> = s.fns[0].calls.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(calls, ["real"]);
    }
}
