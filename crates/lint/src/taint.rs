//! The taint pass: which fns can observe sensitive data, and how.
//!
//! A fn is *directly* tainted when its signature names a tainted type,
//! its body mentions one (construction, path expression, turbofish), or
//! its body reads a tainted field. Taint then propagates **from callee
//! to caller** over the call graph: if `a` calls `b` and `b` handles
//! tainted data, `a` is assumed to receive or forward it. Declared
//! sanitizer fns cut propagation — they are the trusted constructors
//! that reduce raw state to anonymised aggregates — so a caller that
//! only touches taint through a sanitizer stays clean.
//!
//! Every tainted fn carries a *witness*: the shortest call path to a
//! concrete source mention, with its `file:line:col`. Diagnostics can
//! therefore name both ends of a leak, which is what makes a finding
//! actionable rather than a vibe.

use crate::config::LintConfig;
use crate::graph::Graph;
use std::collections::{BTreeSet, VecDeque};

/// Why a fn is tainted, with the evidence chain.
#[derive(Debug, Clone)]
pub struct TaintInfo {
    /// The tainted type or field name observed at the source.
    pub source_name: String,
    /// `type` or `field` — how the source was matched.
    pub source_kind: &'static str,
    /// Workspace-relative file of the source mention.
    pub source_rel: String,
    /// 1-based line of the source mention.
    pub source_line: u32,
    /// 1-based column of the source mention.
    pub source_col: u32,
    /// Call chain from the described fn down to the fn containing the
    /// source mention (inclusive), as fn names.
    pub path: Vec<String>,
}

impl TaintInfo {
    /// Renders the call chain as `a → b → c`.
    pub fn path_display(&self) -> String {
        self.path.join(" → ")
    }
}

/// Per-fn taint verdicts, indexed like `graph.fns`.
pub struct TaintMap {
    /// `Some(info)` when the fn can observe tainted data.
    pub verdicts: Vec<Option<TaintInfo>>,
}

impl TaintMap {
    /// Number of tainted fns.
    pub fn tainted_count(&self) -> usize {
        self.verdicts.iter().filter(|v| v.is_some()).count()
    }
}

/// Runs direct marking plus fixpoint propagation.
pub fn analyze(graph: &Graph, config: &LintConfig) -> TaintMap {
    let types: BTreeSet<&str> = config.taint_types.iter().map(|s| s.as_str()).collect();
    let fields: BTreeSet<&str> = config.taint_fields.iter().map(|s| s.as_str()).collect();
    let sanitizers: BTreeSet<&str> = config.sanitizer_fns.iter().map(|s| s.as_str()).collect();

    let mut verdicts: Vec<Option<TaintInfo>> = vec![None; graph.fns.len()];

    // Direct marking, in file order so witnesses are deterministic.
    for (id, node) in graph.fns.iter().enumerate() {
        if sanitizers.contains(node.sym.name.as_str()) {
            continue; // trusted: handles taint, emits clean aggregates.
        }
        let direct = node
            .sym
            .sig_types
            .iter()
            .chain(node.sym.type_mentions.iter())
            .find(|r| types.contains(r.name.as_str()))
            .map(|r| (r, "type"))
            .or_else(|| {
                node.sym
                    .field_reads
                    .iter()
                    .find(|r| fields.contains(r.name.as_str()))
                    .map(|r| (r, "field"))
            });
        if let Some((mention, kind)) = direct {
            verdicts[id] = Some(TaintInfo {
                source_name: mention.name.clone(),
                source_kind: kind,
                source_rel: node.rel.clone(),
                source_line: mention.line,
                source_col: mention.col,
                path: vec![node.sym.name.clone()],
            });
        }
    }

    // Reverse-BFS from directly tainted fns: callers inherit the
    // shortest witness. Sanitizer callees never propagate (already
    // unmarked above); sanitizer callers never absorb.
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); graph.fns.len()];
    for (caller, callees) in graph.callees.iter().enumerate() {
        for &callee in callees {
            reverse[callee].push(caller);
        }
    }
    let mut queue: VecDeque<usize> = (0..graph.fns.len())
        .filter(|&id| verdicts[id].is_some())
        .collect();
    while let Some(id) = queue.pop_front() {
        let info = verdicts[id].clone().expect("queued fns are tainted");
        for &caller in &reverse[id] {
            if verdicts[caller].is_some() {
                continue;
            }
            if sanitizers.contains(graph.fns[caller].sym.name.as_str()) {
                continue;
            }
            let mut inherited = info.clone();
            inherited.path.insert(0, graph.fns[caller].sym.name.clone());
            verdicts[caller] = Some(inherited);
            queue.push_back(caller);
        }
    }

    TaintMap { verdicts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn run(sources: &[(&str, &str, &str)], sanitizers: &[&str]) -> (Graph, TaintMap) {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(rel, krate, src)| {
                SourceFile::new(rel.to_string(), krate.to_string(), FileKind::Source, src)
            })
            .collect();
        let config = LintConfig {
            taint_types: vec!["HttpRequest".into(), "Ledger".into()],
            taint_fields: vec!["url".into()],
            sanitizer_fns: sanitizers.iter().map(|s| s.to_string()).collect(),
            ..LintConfig::default()
        };
        // Single-crate fixtures: everything visible.
        let graph = Graph::build(&files, &[], &config);
        let taints = analyze(&graph, &config);
        (graph, taints)
    }

    fn verdict<'a>(g: &Graph, t: &'a TaintMap, name: &str) -> &'a Option<TaintInfo> {
        let id = g.fns.iter().position(|f| f.sym.name == name).unwrap();
        &t.verdicts[id]
    }

    #[test]
    fn taint_propagates_transitively_with_witness_path() {
        let (g, t) = run(
            &[(
                "crates/a/src/lib.rs",
                "a",
                "fn source(r: &HttpRequest) -> u32 { 1 }\n\
                 fn mid() -> u32 { source(x) }\n\
                 fn top() -> u32 { mid() }\n\
                 fn clean() -> u32 { 2 }",
            )],
            &[],
        );
        let top = verdict(&g, &t, "top").as_ref().expect("top is tainted");
        assert_eq!(top.path, ["top", "mid", "source"]);
        assert_eq!(top.source_name, "HttpRequest");
        assert_eq!(top.source_kind, "type");
        assert_eq!(top.source_rel, "crates/a/src/lib.rs");
        assert!(verdict(&g, &t, "clean").is_none());
    }

    #[test]
    fn sanitizers_cut_propagation() {
        let (g, t) = run(
            &[(
                "crates/a/src/lib.rs",
                "a",
                "fn raw(l: &Ledger) -> u64 { 1 }\n\
                 fn summary(l: u64) -> u64 { raw(l) }\n\
                 fn export() -> u64 { summary(0) }",
            )],
            &["summary"],
        );
        assert!(verdict(&g, &t, "raw").is_some());
        assert!(verdict(&g, &t, "summary").is_none(), "sanitizer is trusted");
        assert!(
            verdict(&g, &t, "export").is_none(),
            "taint stops at sanitizer"
        );
    }

    #[test]
    fn field_reads_taint() {
        let (g, t) = run(
            &[(
                "crates/a/src/lib.rs",
                "a",
                "fn peek(e: &Event) -> &str { &e.url }",
            )],
            &[],
        );
        let v = verdict(&g, &t, "peek").as_ref().unwrap();
        assert_eq!(v.source_kind, "field");
        assert_eq!(v.source_name, "url");
    }

    #[test]
    fn witness_is_shortest_path() {
        let (g, t) = run(
            &[(
                "crates/a/src/lib.rs",
                "a",
                "fn source(r: &HttpRequest) {}\n\
                 fn long_a() { source(x) }\n\
                 fn long_b() { long_a() }\n\
                 fn top() { long_b(); source(y) }",
            )],
            &[],
        );
        let top = verdict(&g, &t, "top").as_ref().unwrap();
        assert_eq!(top.path, ["top", "source"], "BFS finds the 1-hop witness");
    }
}
