//! `layering`: the crate DAG is config, and back-edges are findings.
//!
//! `lint.toml [layering]` records the intended dependency structure —
//! leaf kernels (`types`, `stats`, `simd`, `telemetry`) depend on
//! nothing workspace-internal, exporters (`telemetry`, `trace`) never
//! import `core`, and nothing depends on `bench` or `lint`. The rule
//! checks two surfaces: each crate's `Cargo.toml` `[dependencies]`
//! (the edge as the build sees it) and `yav_*` path roots in production
//! sources (the edge as the code spells it). A dep absent from the
//! crate's allowlist is a back-edge; a crate absent from the config is
//! unclassified and reported so the DAG stays complete.

use crate::config::LintConfig;
use crate::engine::Diagnostic;
use crate::graph::{Graph, Manifest};
use crate::source::{FileKind, SourceFile};

/// Crates no one may depend on, in any dependency section.
const TERMINAL_CRATES: &[&str] = &["bench", "lint"];

/// Checks manifests and source-level crate references.
pub fn check(
    files: &[SourceFile],
    manifests: &[Manifest],
    graph: &Graph,
    config: &LintConfig,
    out: &mut Vec<Diagnostic>,
) {
    for m in manifests {
        let Some(allowed) = config.layering.get(&m.krate) else {
            out.push(Diagnostic {
                rule: "layering",
                rel: m.rel.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{}` is not classified in `lint.toml [layering]`: \
                     add it with its allowed workspace-internal deps so the \
                     DAG stays explicit",
                    m.krate
                ),
            });
            continue;
        };
        for (dep, line) in &m.deps {
            if !allowed.iter().any(|a| a == dep) {
                out.push(Diagnostic {
                    rule: "layering",
                    rel: m.rel.clone(),
                    line: *line,
                    col: 1,
                    message: format!(
                        "layering back-edge: `{}` must not depend on `{}` \
                         (allowed: [{}]) — restructure the flow or amend \
                         `lint.toml [layering]` with a design review",
                        m.krate,
                        dep,
                        allowed.join(", "),
                    ),
                });
            }
        }
        for (dep, line) in &m.dev_deps {
            if TERMINAL_CRATES.contains(&dep.as_str()) {
                out.push(Diagnostic {
                    rule: "layering",
                    rel: m.rel.clone(),
                    line: *line,
                    col: 1,
                    message: format!(
                        "`{}` dev-depends on terminal crate `{dep}`: nothing \
                         may depend on the bench harness or the linter",
                        m.krate,
                    ),
                });
            }
        }
    }

    // Source-level references: `yav_foo` path roots in production code.
    // Config-declared fixture manifests have no Cargo.toml, so this is
    // also what makes layering testable on fixture trees.
    let known = |name: &str| {
        config.layering.contains_key(name)
            || graph.crate_deps.contains_key(name)
            || TERMINAL_CRATES.contains(&name)
    };
    for file in files {
        if file.kind != FileKind::Source {
            continue;
        }
        let Some(syms) = graph.files.get(&file.rel) else {
            continue;
        };
        let allowed = config.layering.get(&file.crate_name);
        for r in &syms.crate_refs {
            if r.name == file.crate_name || !known(&r.name) {
                continue;
            }
            let ok = allowed.is_some_and(|a| a.iter().any(|d| d == &r.name));
            if !ok {
                out.push(Diagnostic {
                    rule: "layering",
                    rel: file.rel.clone(),
                    line: r.line,
                    col: r.col,
                    message: format!(
                        "layering back-edge: crate `{}` references `yav_{}` \
                         but `lint.toml [layering]` does not allow that \
                         dependency",
                        file.crate_name, r.name,
                    ),
                });
            }
        }
    }
}
