//! `privacy-taint`: tainted types may not reach exporter/collector
//! sinks, except through declared sanitizers.
//!
//! The YourAdValue monitor holds the most sensitive data in the system:
//! raw URLs, per-user browsing streams, per-user ad-cost ledgers and
//! decrypted prices. The paper's follow-up work (YourAdvalue, 2019)
//! makes the design constraint explicit — that data never crosses the
//! aggregation boundary. This pass enforces it statically: any fn
//! defined in a configured sink module (`lint.toml [sinks]`) that can
//! observe a tainted type — in its own signature or body, or
//! transitively through the call graph — is a finding, unless the flow
//! passes through a declared sanitizer fn. The diagnostic names both
//! ends: the sink fn and the `file:line:col` of the taint source, with
//! the call chain between them.

use crate::config::LintConfig;
use crate::engine::Diagnostic;
use crate::graph::Graph;
use crate::taint::TaintMap;

/// True when `rel` falls under one of the configured sink prefixes.
pub fn in_sink(rel: &str, config: &LintConfig) -> bool {
    config
        .sink_modules
        .iter()
        .any(|m| rel == m || (m.ends_with('/') && rel.starts_with(m.as_str())))
}

/// Reports every tainted fn defined in a sink module.
pub fn check(graph: &Graph, taints: &TaintMap, config: &LintConfig, out: &mut Vec<Diagnostic>) {
    for (id, node) in graph.fns.iter().enumerate() {
        if !in_sink(&node.rel, config) {
            continue;
        }
        let Some(info) = &taints.verdicts[id] else {
            continue;
        };
        out.push(Diagnostic {
            rule: "privacy-taint",
            rel: node.rel.clone(),
            line: node.sym.line,
            col: node.sym.col,
            message: format!(
                "fn `{}` is in a sink module but reaches tainted {} `{}` \
                 (source at {}:{}:{}) via {}: sinks may only consume sanitized \
                 aggregates — route through a `lint.toml [sanitizers]` fn or \
                 strip the sensitive data before it gets here",
                node.sym.name,
                info.source_kind,
                info.source_name,
                info.source_rel,
                info.source_line,
                info.source_col,
                info.path_display(),
            ),
        });
    }
}
