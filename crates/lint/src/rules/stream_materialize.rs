//! `stream-materialize`: no full-population collections in streaming
//! modules.
//!
//! The constant-memory pipeline (DESIGN.md §15) exists so a million-user
//! run never holds the population in RAM: the streaming world builder
//! and the multi-tenant monitor store retain only commutative aggregates
//! and fixed-size buffers. The cheapest way to break that contract is
//! one innocent-looking `Vec<HttpRequest>` that grows with the panel.
//! This rule polices the streaming modules token by token:
//!
//! * collections parameterised over per-event/per-user record types
//!   (`Vec<HttpRequest>`, `VecDeque<GroundTruth>`, …);
//! * `collect_parallel(` — the materialise-the-whole-weblog entry point;
//! * `Retention::Full` — unbounded detection retention.
//!
//! Bounded uses (a 32-user shard block, a batch buffer flushed at a
//! fixed size) are legitimate; suppress with
//! `// yav-lint: allow(stream-materialize) — <why it is bounded>`.

use crate::engine::{Diagnostic, Rule};
use crate::source::SourceFile;

/// Record types whose count grows with the simulated population: one
/// per user, request or impression.
const POPULATION_TYPES: &[&str] = &[
    "HttpRequest",
    "GroundTruth",
    "DetectedImpression",
    "Weblog",
    "PanelUser",
];

/// Growable collections the rule polices.
const COLLECTIONS: &[&str] = &[
    "Vec", "VecDeque", "BTreeMap", "HashMap", "BTreeSet", "HashSet",
];

/// Streaming modules: code whose contract is bounded memory.
const SCOPE: &[&str] = &["crates/bench/src/stream.rs", "crates/core/src/tenant.rs"];

/// The rule object.
pub struct StreamMaterialize;

fn in_scope(file: &SourceFile) -> bool {
    SCOPE.iter().any(|s| file.rel.ends_with(s))
}

impl Rule for StreamMaterialize {
    fn name(&self) -> &'static str {
        "stream-materialize"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !in_scope(file) {
            return;
        }
        let report = |tok: &crate::lexer::Token, what: String, out: &mut Vec<Diagnostic>| {
            out.push(Diagnostic {
                rule: "stream-materialize",
                rel: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "{what} materialises population-sized state in a streaming module: \
                     keep only commutative aggregates or fixed-size buffers here, or \
                     justify the bound with an allow comment (DESIGN.md §15)"
                ),
            });
        };
        let toks = &file.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if file.in_test_code(tok.line) {
                continue;
            }
            // `Vec<HttpRequest>` and friends: a collection generic whose
            // parameter list names a population-sized record. The scan
            // walks the balanced `<…>` so qualified paths and nested
            // generics (`Vec<(SimTime, HttpRequest)>`) still match.
            if COLLECTIONS.contains(&tok.text.as_str())
                && toks.get(i + 1).is_some_and(|t| t.is_punct('<'))
            {
                let mut depth = 0i32;
                for t in &toks[i + 1..] {
                    if t.is_punct('<') {
                        depth += 1;
                    } else if t.is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if depth >= 1 && POPULATION_TYPES.contains(&t.text.as_str()) {
                        report(tok, format!("`{}<… {} …>`", tok.text, t.text), out);
                        break;
                    }
                }
            }
            // `collect_parallel(`: collects the full weblog into memory.
            if tok.is_ident("collect_parallel") && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                report(tok, "`collect_parallel(`".to_owned(), out);
            }
            // `Retention::Full`: unbounded detection retention.
            if tok.is_ident("Retention")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("Full"))
            {
                report(tok, "`Retention::Full`".to_owned(), out);
            }
        }
    }
}
