//! `panic-policy`: no `unwrap`/`expect`/`panic!`-family macros in the
//! client hot path.
//!
//! The paper's §6 requirement is that YourAdValue keeps counting money
//! on malformed nURLs — so everything between the raw URL and the ledger
//! (`nurl`, `pme::engine`, `core::monitor`) must return `None`/`Err`
//! instead of panicking. Suppressions here, as everywhere, must carry a
//! written reason.

use crate::engine::{Diagnostic, Rule};
use crate::source::SourceFile;

/// Macros whose expansion panics.
const PANIC_MACROS: &[&str] = &["panic", "unimplemented", "todo", "unreachable", "assert"];

/// The rule object.
pub struct PanicPolicy;

fn in_scope(file: &SourceFile) -> bool {
    file.crate_name == "nurl"
        || file.rel.ends_with("pme/src/engine.rs")
        || file.rel.ends_with("core/src/monitor.rs")
}

impl Rule for PanicPolicy {
    fn name(&self) -> &'static str {
        "panic-policy"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !in_scope(file) {
            return;
        }
        let report = |tok: &crate::lexer::Token, what: String, out: &mut Vec<Diagnostic>| {
            out.push(Diagnostic {
                rule: "panic-policy",
                rel: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "{what} on the client hot path: malformed input must flow to `None`/`Err`, \
                     not a panic (IMC §6: the client keeps counting)"
                ),
            });
        };
        for w in file.tokens.windows(3) {
            if file.in_test_code(w[0].line) {
                continue;
            }
            // `.unwrap(` / `.expect(` — method calls only, so idents like
            // `unwrap_or` and locals named `expect` don't match.
            if w[0].is_punct('.')
                && (w[1].is_ident("unwrap") || w[1].is_ident("expect"))
                && w[2].is_punct('(')
            {
                report(&w[1], format!(".{}()", w[1].text), out);
            }
            // `panic!(` and friends. `debug_assert!` stays legal: it
            // vanishes in release builds.
            if PANIC_MACROS.iter().any(|m| w[0].is_ident(m))
                && w[1].is_punct('!')
                && w[2].is_punct('(')
            {
                report(&w[0], format!("{}!", w[0].text), out);
            }
        }
    }
}
