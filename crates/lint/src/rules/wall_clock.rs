//! `wall-clock-in-sim`: no `Instant::now`/`SystemTime::now` outside
//! `telemetry` and `bench`.
//!
//! Simulation and training code must be a pure function of its inputs —
//! wall-clock reads smuggle in nondeterminism and break replay. Timing
//! belongs to yav-telemetry (span and histogram timers) and to the bench
//! harness.

use crate::engine::{Diagnostic, Rule};
use crate::source::SourceFile;

/// Crates that legitimately read the clock: the telemetry timers, the
/// bench harness, and the linter itself (it wall-clock-gates its own
/// CI runtime budget — there is no simulation in this crate).
const EXEMPT_CRATES: &[&str] = &["telemetry", "bench", "lint"];

/// The rule object.
pub struct WallClockInSim;

impl Rule for WallClockInSim {
    fn name(&self) -> &'static str {
        "wall-clock-in-sim"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        for w in file.tokens.windows(4) {
            let clock_type = w[0].is_ident("Instant") || w[0].is_ident("SystemTime");
            if clock_type
                && w[1].is_punct(':')
                && w[2].is_punct(':')
                && w[3].is_ident("now")
                && !file.in_test_code(w[0].line)
            {
                out.push(Diagnostic {
                    rule: self.name(),
                    rel: file.rel.clone(),
                    line: w[0].line,
                    col: w[0].col,
                    message: format!(
                        "{}::now() in crate `{}`: sim/train code must not read the wall clock — \
                         use a yav-telemetry span or histogram timer",
                        w[0].text, file.crate_name
                    ),
                });
            }
        }
    }
}
