//! The rule registry. Token rules are [`crate::engine::Rule`]s over the
//! token stream; graph rules ([`privacy_taint`], [`boundary_escape`],
//! [`layering`]) run over the assembled workspace graph and are driven
//! by [`crate::engine::analyze`]. Adding a token rule means writing its
//! module, listing its name here, and adding it to [`all`]; a graph
//! rule additionally plugs into the engine's graph stage.

pub mod alloc_gen;
pub mod alloc_reject;
pub mod boundary_escape;
pub mod forbid_unsafe;
pub mod layering;
pub mod metric_name;
pub mod money_cast;
pub mod nondet_iteration;
pub mod panic_policy;
pub mod privacy_taint;
pub mod span_hygiene;
pub mod stream_materialize;
pub mod wall_clock;

/// Every valid rule name (for `allow(...)` validation). The pseudo-rules
/// `bad-suppression` (malformed suppressions) and `stale-allow`
/// (suppressions that silence nothing) cannot themselves be suppressed.
pub const RULE_NAMES: &[&str] = &[
    "nondet-iteration",
    "wall-clock-in-sim",
    "panic-policy",
    "forbid-unsafe-coverage",
    "metric-name-hygiene",
    "money-cast",
    "alloc-in-reject-path",
    "alloc-in-gen-path",
    "span-hygiene",
    "stream-materialize",
    "privacy-taint",
    "boundary-escape",
    "layering",
    "stale-allow",
    "bad-suppression",
];

/// One rule's documentation entry: drives `docs/LINTS.md` and the SARIF
/// rule descriptors.
#[derive(Debug, Clone, Copy)]
pub struct RuleDoc {
    /// Kebab-case rule name.
    pub name: &'static str,
    /// `token` (per-file token stream), `graph` (workspace graph pass)
    /// or `audit` (engine-level bookkeeping).
    pub kind: &'static str,
    /// The invariant the rule enforces, one sentence.
    pub invariant: &'static str,
    /// A representative finding message (illustrative, not harvested).
    pub example: &'static str,
}

/// Documentation for every rule, in `RULE_NAMES` order.
pub const RULE_DOCS: &[RuleDoc] = &[
    RuleDoc {
        name: "nondet-iteration",
        kind: "token",
        invariant: "No `HashMap`/`HashSet` in the crates on the parallel merge/report \
                    paths (`analyzer`, `campaign`, `weblog`, `pme`, `core`): hash \
                    iteration order would break thread-count-invariant output.",
        example: "HashMap iteration order is nondeterministic; crate `analyzer` is on \
                  the parallel merge/report path — use BTreeMap",
    },
    RuleDoc {
        name: "wall-clock-in-sim",
        kind: "token",
        invariant: "`Instant::now`/`SystemTime::now` only in `telemetry`, `bench` and \
                    the linter itself: simulation and training are pure functions of \
                    their inputs.",
        example: "Instant::now() in crate `auction`: sim/train code must not read the \
                  wall clock — use a yav-telemetry span or histogram timer",
    },
    RuleDoc {
        name: "panic-policy",
        kind: "token",
        invariant: "No `unwrap`/`expect`/`panic!`/indexing idioms on the hostile-input \
                    surfaces (`nurl`, `pme::engine`, `core::monitor`): the client keeps \
                    counting on malformed nURLs (paper §6).",
        example: "`unwrap()` in `nurl`: hostile-input surface must fail closed, not \
                  panic",
    },
    RuleDoc {
        name: "forbid-unsafe-coverage",
        kind: "token",
        invariant: "Every crate root carries `#![forbid(unsafe_code)]`; inside the one \
                    designated unsafe crate (`yav-simd`), each block needs a \
                    `// SAFETY:` comment and `#[target_feature]` fns need a dispatch \
                    guard.",
        example: "crate root missing `#![forbid(unsafe_code)]`",
    },
    RuleDoc {
        name: "metric-name-hygiene",
        kind: "token",
        invariant: "Telemetry metric literals follow `area.name[.unit]` with a known \
                    area and no kind collisions; the harvest generates \
                    `docs/METRICS.md` and CI fails when it is stale.",
        example: "metric `pme_predict` does not match `area.name[.unit]`",
    },
    RuleDoc {
        name: "money-cast",
        kind: "token",
        invariant: "No raw numeric casts around the `Cpm` fixed-point money type \
                    outside `yav-types`: conversions go through the checked \
                    constructors.",
        example: "raw cast touching Cpm micros: use Cpm::from_f64/as_f64",
    },
    RuleDoc {
        name: "alloc-in-reject-path",
        kind: "token",
        invariant: "No allocating constructs in the borrowed URL parser's reject path \
                    (`nurl/src/urlref.rs`): the 95 %-non-nURL stream must sift with \
                    zero allocations (DESIGN.md §13).",
        example: "`to_owned()` on the reject path of the borrowed parser",
    },
    RuleDoc {
        name: "alloc-in-gen-path",
        kind: "token",
        invariant: "No allocating constructs in the per-event generate/market hot path \
                    (`weblog/src/generator.rs`, `auction/src/market.rs`): steady-state \
                    events splice interned corpus spans into per-shard scratch with \
                    zero heap traffic (DESIGN.md §18); per-shard setup allocates only \
                    behind an explicit allow.",
        example: "`format!` allocates in the generate/market hot path",
    },
    RuleDoc {
        name: "span-hygiene",
        kind: "token",
        invariant: "`trace_span!` names follow the dotted `area.op` convention and \
                    span guards are `let`-bound, never dropped on the spot \
                    (DESIGN.md §14).",
        example: "span guard bound to `_` is dropped immediately: bind to a named \
                  guard",
    },
    RuleDoc {
        name: "stream-materialize",
        kind: "token",
        invariant: "No population-sized collections, `collect_parallel` or \
                    `Retention::Full` in the streaming modules: the constant-memory \
                    contract of DESIGN.md §15.",
        example: "`Vec<… HttpRequest …>` materialises population-sized state in a \
                  streaming module",
    },
    RuleDoc {
        name: "privacy-taint",
        kind: "graph",
        invariant: "Tainted types and fields (`lint.toml [taint]`: raw URLs, request \
                    streams, per-user ledgers, decrypted prices) may not reach the \
                    exporter/collector sink modules, directly or through the call \
                    graph, except via declared sanitizer fns.",
        example: "fn `render` is in a sink module but reaches tainted type \
                  `HttpRequest` (source at crates/core/src/monitor.rs:309:5) via \
                  render → rows → observe",
    },
    RuleDoc {
        name: "boundary-escape",
        kind: "graph",
        invariant: "Pub items of the monitor boundary modules (`core::monitor`, \
                    `core::tenant`) may not return raw request/URL types or whole \
                    per-user stores across the crate boundary; sensitive state leaves \
                    only as sanitized aggregates.",
        example: "pub fn `ledger` returns `Ledger` across the monitor boundary",
    },
    RuleDoc {
        name: "layering",
        kind: "graph",
        invariant: "The crate DAG is pinned in `lint.toml [layering]`: a dependency \
                    (manifest or `yav_*` source reference) absent from the crate's \
                    allowlist is a back-edge; nothing depends on `bench` or `lint`.",
        example: "layering back-edge: `telemetry` must not depend on `core`",
    },
    RuleDoc {
        name: "stale-allow",
        kind: "audit",
        invariant: "Every `// yav-lint: allow(rule) — reason` must still silence a \
                    live finding; a suppression that suppresses nothing is reported \
                    so the inventory in docs/LINTS.md stays honest.",
        example: "suppression `allow(panic-policy)` no longer silences any finding: \
                  delete the comment",
    },
    RuleDoc {
        name: "bad-suppression",
        kind: "audit",
        invariant: "Suppressions are parsed strictly: a reasonless, malformed or \
                    unknown-rule `allow(...)` is itself a finding.",
        example: "suppression carries no reason; write `— <why this is sound>`",
    },
];

/// The stateless token rules, boxed. `metric-name-hygiene` accumulates
/// across files and is driven separately by the engine, as are the
/// graph rules.
pub fn all() -> Vec<Box<dyn crate::engine::Rule>> {
    vec![
        Box::new(nondet_iteration::NondetIteration),
        Box::new(wall_clock::WallClockInSim),
        Box::new(panic_policy::PanicPolicy),
        Box::new(forbid_unsafe::ForbidUnsafeCoverage),
        Box::new(money_cast::MoneyCast),
        Box::new(alloc_reject::AllocInRejectPath),
        Box::new(alloc_gen::AllocInGenPath),
        Box::new(span_hygiene::SpanHygiene),
        Box::new(stream_materialize::StreamMaterialize),
    ]
}
