//! The rule registry. Each rule is a [`crate::engine::Rule`] over the
//! token stream; adding one means writing its module, listing its name
//! here, and adding it to [`all`].

pub mod alloc_reject;
pub mod forbid_unsafe;
pub mod metric_name;
pub mod money_cast;
pub mod nondet_iteration;
pub mod panic_policy;
pub mod span_hygiene;
pub mod stream_materialize;
pub mod wall_clock;

/// Every valid rule name (for `allow(...)` validation). The pseudo-rule
/// `bad-suppression` reports malformed suppressions and cannot itself be
/// suppressed.
pub const RULE_NAMES: &[&str] = &[
    "nondet-iteration",
    "wall-clock-in-sim",
    "panic-policy",
    "forbid-unsafe-coverage",
    "metric-name-hygiene",
    "money-cast",
    "alloc-in-reject-path",
    "span-hygiene",
    "stream-materialize",
    "bad-suppression",
];

/// The stateless rules, boxed. `metric-name-hygiene` accumulates across
/// files and is driven separately by the engine.
pub fn all() -> Vec<Box<dyn crate::engine::Rule>> {
    vec![
        Box::new(nondet_iteration::NondetIteration),
        Box::new(wall_clock::WallClockInSim),
        Box::new(panic_policy::PanicPolicy),
        Box::new(forbid_unsafe::ForbidUnsafeCoverage),
        Box::new(money_cast::MoneyCast),
        Box::new(alloc_reject::AllocInRejectPath),
        Box::new(span_hygiene::SpanHygiene),
        Box::new(stream_materialize::StreamMaterialize),
    ]
}
