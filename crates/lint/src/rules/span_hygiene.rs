//! `span-hygiene`: trace span names follow `area.op`, and every
//! `trace_span!` guard is bound to a named variable.
//!
//! Trace spans share the metric registry's dotted-name convention
//! ([`super::metric_name`]), so exporters group by the same areas the
//! telemetry surface uses. The guard check exists because
//! `trace_span!` returns an RAII [`SpanGuard`]: written bare as a
//! statement, or bound to `_`, the guard drops on the same line and the
//! span closes at open — silently tracing nothing. Binding to a named
//! variable (idiomatically `_trace` or `_span`) keeps the span open to
//! the end of the scope on **every** exit path, early returns and `?`
//! included, which is what makes the monitor/pme/nurl spans trustworthy.
//!
//! [`SpanGuard`]: ../../../trace/struct.SpanGuard.html

use crate::engine::{Diagnostic, Rule};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// The trace crate defines the macros (its tokens mention them without
/// invoking them); the lint crate's sources talk *about* spans.
const EXEMPT_CRATES: &[&str] = &["trace", "lint"];

/// The rule object.
pub struct SpanHygiene;

impl Rule for SpanHygiene {
    fn name(&self) -> &'static str {
        "span-hygiene"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            let is_span = toks[i].is_ident("trace_span");
            let is_instant = toks[i].is_ident("trace_instant");
            if !(is_span || is_instant) || file.in_test_code(toks[i].line) {
                continue;
            }
            if !(toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('(')))
            {
                continue;
            }
            let mut diag = |line: u32, col: u32, message: String| {
                out.push(Diagnostic {
                    rule: "span-hygiene",
                    rel: file.rel.clone(),
                    line,
                    col,
                    message,
                });
            };

            // The span name: first token inside the parens, a literal by
            // macro contract, following the metric `area.op` convention.
            match toks.get(i + 3) {
                Some(t) if t.kind == TokenKind::Str => {
                    if let Some(why) = super::metric_name::bad_name(&t.text) {
                        diag(t.line, t.col, format!("span name `{}` {why}", t.text));
                    }
                }
                Some(t) => diag(
                    t.line,
                    t.col,
                    "span name must be a string literal (`trace_span!(\"area.op\")`)".to_owned(),
                ),
                None => {}
            }

            // The guard binding, `trace_span!` only (`trace_instant!`
            // returns no guard). Walk back over an optional module path
            // (`yav_trace::`), then require `let <name> =` with a name
            // that is not the discarding `_`.
            if !is_span {
                continue;
            }
            let mut j = i;
            while j >= 3
                && toks[j - 1].is_punct(':')
                && toks[j - 2].is_punct(':')
                && toks[j - 3].kind == TokenKind::Ident
            {
                j -= 3;
            }
            let binder = (j >= 3 && toks[j - 1].is_punct('='))
                .then(|| &toks[j - 2])
                .filter(|t| t.kind == TokenKind::Ident)
                .filter(|_| {
                    toks[j - 3].is_ident("let")
                        || (j >= 4 && toks[j - 3].is_ident("mut") && toks[j - 4].is_ident("let"))
                });
            match binder {
                None => diag(
                    toks[i].line,
                    toks[i].col,
                    "trace_span! guard is not bound: the span closes immediately — \
                     bind it (`let _trace = trace_span!(…);`) so it spans the scope"
                        .to_owned(),
                ),
                Some(b) if b.text == "_" => diag(
                    b.line,
                    b.col,
                    "trace_span! guard bound to `_` drops at once — name it \
                     (`let _trace = …`) so the span survives to end of scope"
                        .to_owned(),
                ),
                Some(_) => {}
            }
        }
    }
}
