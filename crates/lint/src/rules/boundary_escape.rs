//! `boundary-escape`: pub items of the monitor boundary modules may not
//! expose raw sensitive types outside the crate.
//!
//! `core::monitor` and `core::tenant` own the per-user state — the
//! browsing stream enters, the ledger accumulates. Their public surface
//! is what every other crate (and the future aggregation service) can
//! touch, so it must speak in sanitized aggregates: summaries, drop
//! counters, quantiles, anonymised contribution batches. A `pub fn`
//! returning a raw request/URL type or a whole per-user store, or a
//! `pub` struct field typed so, widens the privacy boundary for every
//! downstream crate at once. Deliberate in-process introspection APIs
//! carry a reasoned `// yav-lint: allow(boundary-escape) — why`.

use crate::config::LintConfig;
use crate::engine::Diagnostic;
use crate::graph::Graph;

/// True when `rel` falls under one of the configured boundary prefixes.
pub fn in_boundary(rel: &str, config: &LintConfig) -> bool {
    config
        .boundary_modules
        .iter()
        .any(|m| rel == m || (m.ends_with('/') && rel.starts_with(m.as_str())))
}

/// Reports pub fns returning boundary types and pub fields holding them.
pub fn check(graph: &Graph, config: &LintConfig, out: &mut Vec<Diagnostic>) {
    for node in &graph.fns {
        if !in_boundary(&node.rel, config) || !node.sym.is_pub {
            continue;
        }
        let escaped = node
            .sym
            .return_types
            .iter()
            .find(|r| config.boundary_types.iter().any(|t| t == &r.name));
        if let Some(t) = escaped {
            out.push(Diagnostic {
                rule: "boundary-escape",
                rel: node.rel.clone(),
                line: node.sym.line,
                col: node.sym.col,
                message: format!(
                    "pub fn `{}` returns `{}` across the monitor boundary: \
                     per-user raw state must leave only as sanitized aggregates \
                     (summary/drop-stats/contributions) — return one of those, \
                     or justify the in-process API with an allow comment",
                    node.sym.name, t.name,
                ),
            });
        }
    }
    for (rel, syms) in &graph.files {
        if !in_boundary(rel, config) {
            continue;
        }
        for field in &syms.pub_fields {
            let escaped = field
                .types
                .iter()
                .find(|r| config.boundary_types.iter().any(|t| t == &r.name));
            if let Some(t) = escaped {
                out.push(Diagnostic {
                    rule: "boundary-escape",
                    rel: rel.clone(),
                    line: field.line,
                    col: field.col,
                    message: format!(
                        "pub field `{}.{}` exposes `{}` across the monitor \
                         boundary: make the field private behind a sanitized \
                         accessor, or justify it with an allow comment",
                        field.strukt, field.field, t.name,
                    ),
                });
            }
        }
    }
}
