//! `money-cast`: no raw numeric casts adjacent to `Cpm`/price arithmetic
//! outside `yav-types`.
//!
//! `Cpm` is fixed-point micro-CPM; the blessed conversions are
//! `Cpm::as_f64`/`Cpm::from_f64` (which scale by 10^6) and the integral
//! `micros()/from_micros()` pair. Casting around them — `x.micros() as
//! f64`, `Cpm::from_micros(y as i64)`, `p.as_f64() as i64` — silently
//! changes units or drops precision, which is exactly how money bugs are
//! born. `yav-types` itself hosts the blessed implementations and is
//! exempt.

use crate::engine::{Diagnostic, Rule};
use crate::source::SourceFile;

/// The rule object.
pub struct MoneyCast;

impl Rule for MoneyCast {
    fn name(&self) -> &'static str {
        "money-cast"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if file.crate_name == "types" {
            return;
        }
        let toks = &file.tokens;
        let mut report = |line: u32, col: u32, message: String| {
            out.push(Diagnostic {
                rule: "money-cast",
                rel: file.rel.clone(),
                line,
                col,
                message,
            });
        };
        for (i, w) in toks.windows(5).enumerate() {
            if file.in_test_code(w[0].line) {
                continue;
            }
            // `.micros() as <ty>` — integral micro-CPM reinterpreted raw.
            if w[0].is_punct('.')
                && w[1].is_ident("micros")
                && w[2].is_punct('(')
                && w[3].is_punct(')')
                && w[4].is_ident("as")
            {
                report(
                    w[1].line,
                    w[1].col,
                    "`.micros() as _` casts fixed-point micro-CPM raw; use `Cpm::as_f64()` \
                     (scaled) or keep the integral micros"
                        .to_owned(),
                );
            }
            // `.as_f64() as <int>` — truncating money round-trip.
            if w[0].is_punct('.')
                && w[1].is_ident("as_f64")
                && w[2].is_punct('(')
                && w[3].is_punct(')')
                && w[4].is_ident("as")
            {
                report(
                    w[1].line,
                    w[1].col,
                    "`.as_f64() as _` truncates a price round-trip; stay in Cpm or use \
                     `Cpm::from_f64` for the way back"
                        .to_owned(),
                );
            }
            // `from_micros(... as <ty> ...)` — a cast inside the
            // constructor's argument list smuggles unscaled units in.
            if w[0].is_ident("from_micros") && w[1].is_punct('(') {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct('(') {
                        depth += 1;
                    } else if toks[j].is_punct(')') {
                        depth -= 1;
                    } else if toks[j].is_ident("as")
                        && toks.get(j + 1).is_some_and(|t| {
                            t.is_ident("i64")
                                || t.is_ident("u64")
                                || t.is_ident("f64")
                                || t.is_ident("i32")
                        })
                    {
                        report(
                            toks[j].line,
                            toks[j].col,
                            "raw cast inside `Cpm::from_micros(...)`: convert through \
                             `Cpm::from_f64` so the 10^6 scaling is explicit"
                                .to_owned(),
                        );
                    }
                    j += 1;
                }
            }
        }
    }
}
