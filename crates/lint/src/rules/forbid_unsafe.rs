//! `forbid-unsafe-coverage`: every crate root must carry
//! `#![forbid(unsafe_code)]`, and any crate that opts out must justify
//! every single `unsafe` token it contains.
//!
//! The workspace's crates are safe Rust; `forbid` (unlike `deny`)
//! cannot be overridden further down the tree, so the attribute on the
//! crate root is a structural guarantee. Shims are exempt by not being
//! walked at all — they stand in for external crates.
//!
//! One crate is deliberately different: `yav-simd` holds the
//! workspace's vector kernels, and intrinsics require `unsafe`. A crate
//! root may therefore opt out of the forbid by carrying a reasoned
//! `// yav-lint: allow(forbid-unsafe-coverage) — <reason>` comment.
//! Opting out does not relax the rule — it *refocuses* it from the
//! attribute to the tokens:
//!
//! * every `unsafe` occurrence (block, impl, trait) in production code
//!   must have a `// SAFETY:` comment within the four lines above it
//!   (or on its own line), or a reasoned allow;
//! * an `unsafe fn` must additionally sit under a `#[target_feature]`
//!   attribute — the one sanctioned reason for an unsafe *signature* in
//!   this workspace is a CPU-feature precondition the caller must prove.

use crate::engine::{Diagnostic, Rule};
use crate::source::SourceFile;

/// How many lines above an `unsafe` token a `SAFETY` comment may start
/// and still count as covering it.
const SAFETY_WINDOW: u32 = 4;

/// How many lines above an `unsafe fn` a `#[target_feature]` attribute
/// may sit (room for `#[cfg]` attributes between them).
const TARGET_FEATURE_WINDOW: u32 = 3;

/// The rule object.
pub struct ForbidUnsafeCoverage;

fn is_crate_root(file: &SourceFile) -> bool {
    file.rel == "src/lib.rs"
        || (file.rel.starts_with("crates/") && file.rel.ends_with("/src/lib.rs"))
}

fn has_forbid_attr(file: &SourceFile) -> bool {
    file.tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

/// The line of the crate root's reasoned file-level opt-out, if any.
/// The attribute belongs at the top of the file where no comment can
/// sit above it (the file opens with module docs), so the opt-out is
/// accepted anywhere in the root file: the missing-forbid finding is
/// reported *at* the opt-out's line so the engine's normal suppression
/// machinery (and the stale-allow audit) see the site as live.
fn designated_unsafe_optout_line(file: &SourceFile) -> Option<u32> {
    file.suppressions
        .iter()
        .find(|s| s.rules.iter().any(|r| r == "forbid-unsafe-coverage"))
        .map(|s| s.line)
}

/// True when a `SAFETY` comment covers `line`: a comment starting with
/// the marker on the line itself or within [`SAFETY_WINDOW`] lines
/// above it.
fn has_safety_comment(file: &SourceFile, line: u32) -> bool {
    let lo = line.saturating_sub(SAFETY_WINDOW);
    file.comments.iter().any(|c| {
        (lo..=line).contains(&c.line)
            && c.text
                .trim_start_matches(['/', '!'])
                .trim_start()
                .starts_with("SAFETY")
    })
}

/// True when a `#[target_feature]` attribute sits within
/// [`TARGET_FEATURE_WINDOW`] lines above `line` (or on it).
fn has_target_feature_attr(file: &SourceFile, line: u32) -> bool {
    let lo = line.saturating_sub(TARGET_FEATURE_WINDOW);
    file.tokens.windows(3).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('[')
            && w[2].is_ident("target_feature")
            && (lo..=line).contains(&w[2].line)
    })
}

impl Rule for ForbidUnsafeCoverage {
    fn name(&self) -> &'static str {
        "forbid-unsafe-coverage"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if is_crate_root(file) && !has_forbid_attr(file) {
            // Report at the opt-out suppression's line when one exists so
            // the engine's ordinary line-adjacency suppression absorbs it
            // and the stale-allow audit sees the site as live; otherwise
            // at line 1 where the attribute belongs.
            let line = designated_unsafe_optout_line(file).unwrap_or(1);
            out.push(Diagnostic {
                rule: self.name(),
                rel: file.rel.clone(),
                line,
                col: 1,
                message: format!(
                    "crate root of `{}` is missing `#![forbid(unsafe_code)]` (a designated \
                     unsafe crate may opt out with a reasoned \
                     `// yav-lint: allow(forbid-unsafe-coverage) — <reason>`)",
                    file.crate_name
                ),
            });
        }
        // Token-level coverage: in a forbid crate no `unsafe` compiles,
        // so this only bites where the opt-out above is in play — but
        // enforcing it unconditionally keeps the rule stateless across
        // files.
        for (i, tok) in file.tokens.iter().enumerate() {
            if !tok.is_ident("unsafe") || file.in_test_code(tok.line) {
                continue;
            }
            let is_fn = file.tokens.get(i + 1).is_some_and(|t| t.is_ident("fn"));
            if is_fn && !has_target_feature_attr(file, tok.line) {
                out.push(Diagnostic {
                    rule: self.name(),
                    rel: file.rel.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: "`unsafe fn` without a `#[target_feature]` gate; safe \
                              `#[target_feature]` functions are the only sanctioned unsafe \
                              signatures (or add a reasoned `// yav-lint: allow`)"
                        .to_owned(),
                });
            }
            if !has_safety_comment(file, tok.line) {
                out.push(Diagnostic {
                    rule: self.name(),
                    rel: file.rel.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: "`unsafe` without a `// SAFETY:` comment in the four lines above; \
                              state the proof obligation being discharged (or add a reasoned \
                              `// yav-lint: allow`)"
                        .to_owned(),
                });
            }
        }
    }
}
