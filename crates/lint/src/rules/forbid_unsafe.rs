//! `forbid-unsafe-coverage`: every crate root must carry
//! `#![forbid(unsafe_code)]`.
//!
//! The workspace's own crates are all safe Rust; `forbid` (unlike `deny`)
//! cannot be overridden further down the tree, so the attribute on the
//! crate root is a structural guarantee. Shims are exempt by not being
//! walked at all — they stand in for external crates.

use crate::engine::{Diagnostic, Rule};
use crate::source::SourceFile;

/// The rule object.
pub struct ForbidUnsafeCoverage;

fn is_crate_root(file: &SourceFile) -> bool {
    file.rel == "src/lib.rs"
        || (file.rel.starts_with("crates/") && file.rel.ends_with("/src/lib.rs"))
}

impl Rule for ForbidUnsafeCoverage {
    fn name(&self) -> &'static str {
        "forbid-unsafe-coverage"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !is_crate_root(file) {
            return;
        }
        let found = file.tokens.windows(8).any(|w| {
            w[0].is_punct('#')
                && w[1].is_punct('!')
                && w[2].is_punct('[')
                && w[3].is_ident("forbid")
                && w[4].is_punct('(')
                && w[5].is_ident("unsafe_code")
                && w[6].is_punct(')')
                && w[7].is_punct(']')
        });
        if !found {
            out.push(Diagnostic {
                rule: self.name(),
                rel: file.rel.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "crate root of `{}` is missing `#![forbid(unsafe_code)]`",
                    file.crate_name
                ),
            });
        }
    }
}
