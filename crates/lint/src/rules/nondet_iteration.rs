//! `nondet-iteration`: no `HashMap`/`HashSet` in crates on the parallel
//! merge/report paths.
//!
//! PR 2's guarantee — thread count never changes output — holds only
//! when nothing on a merge or report path iterates a randomised-order
//! container. The scoped crates must use `BTreeMap`/`BTreeSet` (ordered
//! by construction) or carry a reasoned suppression for keyed-lookup-only
//! maps that are provably never iterated.

use crate::engine::{Diagnostic, Rule};
use crate::source::SourceFile;

/// Crates whose shard-merge or report output could be reordered by hash
/// iteration.
const SCOPED_CRATES: &[&str] = &["analyzer", "campaign", "weblog", "pme", "core"];

const BANNED: &[(&str, &str)] = &[("HashMap", "BTreeMap"), ("HashSet", "BTreeSet")];

/// The rule object.
pub struct NondetIteration;

impl Rule for NondetIteration {
    fn name(&self) -> &'static str {
        "nondet-iteration"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !SCOPED_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        let mut in_use = false;
        for tok in &file.tokens {
            // `use` imports are not occurrences; declarations and
            // constructions are what order reaches output through.
            if tok.is_ident("use") {
                in_use = true;
            } else if in_use && tok.is_punct(';') {
                in_use = false;
            }
            if in_use || file.in_test_code(tok.line) {
                continue;
            }
            if let Some((banned, replacement)) = BANNED.iter().find(|(b, _)| tok.is_ident(b)) {
                out.push(Diagnostic {
                    rule: self.name(),
                    rel: file.rel.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "{banned} iteration order is nondeterministic; crate `{}` is on the \
                         parallel merge/report path — use {replacement}, or suppress with a \
                         reason if the map is never iterated",
                        file.crate_name
                    ),
                });
            }
        }
    }
}
