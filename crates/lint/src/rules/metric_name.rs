//! `metric-name-hygiene`: harvest every telemetry metric literal in the
//! workspace, enforce the `area.name[.unit]` convention, and reject
//! kind collisions and idiom duplicates.
//!
//! Harvest sites are the yav-telemetry registration idioms:
//! `counter("…")`, `gauge("…")`, `histogram("…")`, `span!("…")` and
//! `start_span("…")`. A span named `x` records the histogram `x.ms`, so
//! spans are registered under that derived name. Conditional
//! registrations (`counter(match … { … })`, `gauge(if … { "a" } else
//! { "b" })`) are handled by harvesting every string literal inside the
//! call's balanced parentheses.
//!
//! The harvest doubles as the source of the generated `docs/METRICS.md`
//! registry ([`crate::metrics_doc`]).

use crate::engine::{Diagnostic, Rule};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Valid first segments: one per workspace crate, plus the root facade,
/// `ingest` (the cross-crate request-ingestion surface: the monitor and
/// analyzer both report under it), `health` (the SLO engine's
/// cross-area reporting surface), `monitor` (the on-device YourAdValue
/// monitor and its multi-tenant store) and `world` (the world builders:
/// materialising and streaming).
pub(crate) const AREAS: &[&str] = &[
    "analyzer",
    "auction",
    "bench",
    "campaign",
    "core",
    "crypto",
    "exec",
    "health",
    "ingest",
    "ml",
    "monitor",
    "nurl",
    "pme",
    "root",
    "stats",
    "telemetry",
    "trace",
    "types",
    "weblog",
    "world",
];

/// The telemetry crate defines the primitives (its internals mention
/// metric plumbing, not instrumentation sites); the lint crate's sources
/// talk *about* metrics. Neither is a harvest site.
const EXEMPT_CRATES: &[&str] = &["telemetry", "lint"];

/// One harvested metric.
#[derive(Debug, Clone)]
pub struct MetricEntry {
    /// Full dotted name (spans appear under their derived `<name>.ms`).
    pub name: String,
    /// `counter`, `gauge` or `histogram`.
    pub kind: &'static str,
    /// Registered through `span!`/`start_span` rather than directly.
    pub via_span: bool,
    /// Every `(workspace-relative path, line)` registering the name.
    pub sites: Vec<(String, u32)>,
}

/// The stateful harvesting rule.
pub struct MetricNameRule {
    entries: BTreeMap<String, MetricEntry>,
}

impl MetricNameRule {
    /// An empty harvest.
    pub fn new() -> MetricNameRule {
        MetricNameRule {
            entries: BTreeMap::new(),
        }
    }

    /// The harvest, sorted by name.
    pub fn into_entries(self) -> Vec<MetricEntry> {
        self.entries.into_values().collect()
    }

    fn register(
        &mut self,
        name: &str,
        kind: &'static str,
        via_span: bool,
        file: &SourceFile,
        site: (u32, u32),
        out: &mut Vec<Diagnostic>,
    ) {
        let (line, col) = site;
        let mut diag = |message: String| {
            out.push(Diagnostic {
                rule: "metric-name-hygiene",
                rel: file.rel.clone(),
                line,
                col,
                message,
            });
        };
        if let Some(why) = bad_name(name) {
            diag(format!("metric name `{name}` {why}"));
            return;
        }
        let full = if via_span {
            format!("{name}.ms")
        } else {
            name.to_owned()
        };
        match self.entries.get_mut(&full) {
            None => {
                self.entries.insert(
                    full.clone(),
                    MetricEntry {
                        name: full,
                        kind,
                        via_span,
                        sites: vec![(file.rel.clone(), line)],
                    },
                );
            }
            Some(existing) => {
                if existing.kind != kind {
                    diag(format!(
                        "metric `{full}` collides: registered as {} at {}:{}, but as {kind} here",
                        existing.kind, existing.sites[0].0, existing.sites[0].1
                    ));
                } else if existing.via_span != via_span {
                    diag(format!(
                        "metric `{full}` is recorded both via span!() and a direct histogram \
                         (first site {}:{}) — pick one idiom",
                        existing.sites[0].0, existing.sites[0].1
                    ));
                } else {
                    existing.sites.push((file.rel.clone(), line));
                }
            }
        }
    }
}

impl Default for MetricNameRule {
    fn default() -> Self {
        MetricNameRule::new()
    }
}

/// Why a name violates `area.name[.unit]`, or `None` when it is fine.
/// Shared with `span-hygiene`: trace span names follow the same
/// `area.op` dotted convention as metric names.
pub(crate) fn bad_name(name: &str) -> Option<&'static str> {
    let segments: Vec<&str> = name.split('.').collect();
    if !(2..=4).contains(&segments.len()) {
        return Some("must have 2–4 dot-separated segments (`area.name[.unit]`)");
    }
    for s in &segments {
        let mut chars = s.chars();
        let ok_head = chars.next().is_some_and(|c| c.is_ascii_lowercase());
        if !ok_head || !chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_') {
            return Some("segments must match `[a-z][a-z0-9_]*`");
        }
    }
    if !AREAS.contains(&segments[0]) {
        return Some("first segment must be a workspace area (crate name or `root`)");
    }
    None
}

impl Rule for MetricNameRule {
    fn name(&self) -> &'static str {
        "metric-name-hygiene"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
            return;
        }
        let toks = &file.tokens;
        let mut i = 0usize;
        while i < toks.len() {
            if file.in_test_code(toks[i].line) {
                i += 1;
                continue;
            }
            // Direct registrations: counter("…"), gauge("…"),
            // histogram("…") — harvest every literal inside the call.
            let direct: Option<&'static str> = ["counter", "gauge", "histogram"]
                .into_iter()
                .find(|k| toks[i].is_ident(k));
            if let Some(kind) = direct {
                if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                    i = self.harvest_call(kind, false, i + 2, file, out);
                    continue;
                }
            }
            // Span idioms: span!("…") and start_span("…").
            let span_open = if toks[i].is_ident("span")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            {
                Some(i + 3)
            } else if toks[i].is_ident("start_span")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                Some(i + 2)
            } else {
                None
            };
            if let Some(open) = span_open {
                i = self.harvest_call("histogram", true, open, file, out);
                continue;
            }
            i += 1;
        }
    }
}

impl MetricNameRule {
    /// Harvests every string literal inside a call's balanced parens
    /// (depth starts at 1, i.e. `from` points just past the opening
    /// `(`). Returns the index after the closing paren. Literals with
    /// `{` or `\` are format strings the static pass cannot resolve and
    /// are skipped.
    fn harvest_call(
        &mut self,
        kind: &'static str,
        via_span: bool,
        from: usize,
        file: &SourceFile,
        out: &mut Vec<Diagnostic>,
    ) -> usize {
        let toks = &file.tokens;
        let mut depth = 1usize;
        let mut j = from;
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct('(') {
                depth += 1;
            } else if toks[j].is_punct(')') {
                depth -= 1;
            } else if toks[j].kind == TokenKind::Str
                && !toks[j].text.contains('{')
                && !toks[j].text.contains('\\')
            {
                let (name, line, col) = (toks[j].text.clone(), toks[j].line, toks[j].col);
                self.register(&name, kind, via_span, file, (line, col), out);
            }
            j += 1;
        }
        j
    }
}
