//! `alloc-in-reject-path`: no heap allocation in the borrowed URL
//! parser.
//!
//! The zero-copy ingestion contract (DESIGN.md §13) is that rejecting an
//! ordinary request costs no allocation: `urlref.rs` parses by slicing
//! the raw string, and the only buffers in the borrowed pipeline live in
//! `scratch.rs`, which callers own and reuse. This rule keeps `urlref.rs`
//! honest token by token — allocating method calls, allocating macros,
//! and constructor paths on the owning collection types are all findings.
//! The `no_alloc` counting-allocator test proves the property end to end;
//! this lint points at the offending line when someone breaks it.

use crate::engine::{Diagnostic, Rule};
use crate::source::SourceFile;

/// Method calls that allocate their result.
const ALLOC_METHODS: &[&str] = &[
    "to_owned",
    "to_string",
    "to_vec",
    "to_ascii_lowercase",
    "to_ascii_uppercase",
    "to_lowercase",
    "to_uppercase",
    "into_owned",
    "collect",
];

/// Macros that expand to heap allocation.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Owning collection types whose associated functions (`::new`,
/// `::with_capacity`, `::from`, …) allocate or exist to allocate.
const ALLOC_TYPES: &[&str] = &["String", "Vec", "VecDeque", "Box", "BTreeMap", "HashMap"];

/// The rule object.
pub struct AllocInRejectPath;

fn in_scope(file: &SourceFile) -> bool {
    file.rel.ends_with("nurl/src/urlref.rs")
}

impl Rule for AllocInRejectPath {
    fn name(&self) -> &'static str {
        "alloc-in-reject-path"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !in_scope(file) {
            return;
        }
        let report = |tok: &crate::lexer::Token, what: String, out: &mut Vec<Diagnostic>| {
            out.push(Diagnostic {
                rule: "alloc-in-reject-path",
                rel: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "{what} allocates in the borrowed URL parser: `urlref` must reject \
                     ordinary traffic without touching the heap — decode into a caller's \
                     `UrlScratch` instead (DESIGN.md §13)"
                ),
            });
        };
        for w in file.tokens.windows(3) {
            if file.in_test_code(w[0].line) {
                continue;
            }
            // `.to_owned(` and friends — method calls only.
            if w[0].is_punct('.')
                && ALLOC_METHODS.iter().any(|m| w[1].is_ident(m))
                && w[2].is_punct('(')
            {
                report(&w[1], format!(".{}()", w[1].text), out);
            }
            // `format!(` / `vec![`.
            if ALLOC_MACROS.iter().any(|m| w[0].is_ident(m)) && w[1].is_punct('!') {
                report(&w[0], format!("{}!", w[0].text), out);
            }
            // `String::from(`, `Vec::new(`, … — any associated call on an
            // owning collection. Type positions (`Vec<u8>`) don't match.
            if ALLOC_TYPES.iter().any(|t| w[0].is_ident(t))
                && w[1].is_punct(':')
                && w[2].is_punct(':')
            {
                report(&w[0], format!("{}::", w[0].text), out);
            }
        }
    }
}
