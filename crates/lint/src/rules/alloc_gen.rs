//! `alloc-in-gen-path`: no heap allocation in the weblog generator's and
//! market's per-event code.
//!
//! The steady-state window loop (DESIGN.md §18) renders every request
//! by splicing interned corpus spans and integers into per-shard
//! scratch buffers; the auction resolves bids entirely in reused
//! vectors. A stray `format!` or `to_string` in either hot file turns a
//! zero-allocation event back into a malloc-bound one and silently
//! erodes the throughput the bench ladder pins. This rule keeps
//! `generator.rs` and `market.rs` honest token by token — the
//! `no_alloc_gen` counting-allocator test proves the property end to
//! end; this lint points at the offending line when someone breaks it.
//! Per-shard setup (scratch construction, metric-handle resolution) may
//! allocate behind an explicit `yav-lint: allow(...)` with its reason.

use crate::engine::{Diagnostic, Rule};
use crate::source::SourceFile;

/// Method calls that allocate their result.
const ALLOC_METHODS: &[&str] = &[
    "to_owned",
    "to_string",
    "to_vec",
    "to_ascii_lowercase",
    "to_ascii_uppercase",
    "to_lowercase",
    "to_uppercase",
    "into_owned",
    "collect",
];

/// Macros that expand to heap allocation.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Owning collection types whose associated functions (`::new`,
/// `::with_capacity`, `::from`, …) allocate or exist to allocate.
const ALLOC_TYPES: &[&str] = &["String", "Vec", "VecDeque", "Box", "BTreeMap", "HashMap"];

/// The rule object.
pub struct AllocInGenPath;

fn in_scope(file: &SourceFile) -> bool {
    file.rel.ends_with("weblog/src/generator.rs") || file.rel.ends_with("auction/src/market.rs")
}

impl Rule for AllocInGenPath {
    fn name(&self) -> &'static str {
        "alloc-in-gen-path"
    }

    fn check(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !in_scope(file) {
            return;
        }
        let report = |tok: &crate::lexer::Token, what: String, out: &mut Vec<Diagnostic>| {
            out.push(Diagnostic {
                rule: "alloc-in-gen-path",
                rel: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "{what} allocates in the generate/market hot path: per-event work \
                     splices interned corpus spans into per-shard scratch, never the \
                     heap — reuse `ShardScratch`/auction scratch, or move the \
                     allocation into per-shard setup behind an allow (DESIGN.md §18)"
                ),
            });
        };
        for w in file.tokens.windows(3) {
            if file.in_test_code(w[0].line) {
                continue;
            }
            // `.to_owned(` and friends — method calls only.
            if w[0].is_punct('.')
                && ALLOC_METHODS.iter().any(|m| w[1].is_ident(m))
                && w[2].is_punct('(')
            {
                report(&w[1], format!(".{}()", w[1].text), out);
            }
            // `format!(` / `vec![`.
            if ALLOC_MACROS.iter().any(|m| w[0].is_ident(m)) && w[1].is_punct('!') {
                report(&w[0], format!("{}!", w[0].text), out);
            }
            // `String::from(`, `Vec::new(`, … — any associated call on an
            // owning collection. Type positions (`Vec<u8>`) don't match.
            if ALLOC_TYPES.iter().any(|t| w[0].is_ident(t))
                && w[1].is_punct(':')
                && w[2].is_punct(':')
            {
                report(&w[0], format!("{}::", w[0].text), out);
            }
        }
    }
}
