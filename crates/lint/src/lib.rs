//! **yav-lint** — the workspace-native invariant linter and dataflow
//! analysis engine.
//!
//! The compiler cannot see the invariants this workspace runs on: PR 2's
//! thread-count-invariant output, PR 3's arena/compiled bit-identity, the
//! paper's §6 requirement that the client keeps counting on malformed
//! nURLs, the telemetry naming convention the dashboards key on — and,
//! above all, the privacy contract: raw URLs, per-user browsing streams
//! and per-user ad-cost ledgers never reach an exporter or collector.
//! This crate checks them statically, offline, with zero dependencies: a
//! hand-rolled lexer ([`lexer`]) feeds a token-stream rule engine
//! ([`engine`]), and a second pass over the lexer output builds the
//! workspace graph — per-file symbol tables ([`symbols`]), the crate
//! DAG and an approximate call graph ([`graph`]), and a taint lattice
//! with witness paths ([`taint`]) — for the cross-file rules.
//!
//! | rule | kind | invariant |
//! |---|---|---|
//! | `nondet-iteration` | token | no `HashMap`/`HashSet` on parallel merge/report paths |
//! | `wall-clock-in-sim` | token | `Instant::now`/`SystemTime::now` only in `telemetry`/`bench`/`lint` |
//! | `panic-policy` | token | no `unwrap`/`expect`/`panic!` in `nurl`, `pme::engine`, `core::monitor` |
//! | `forbid-unsafe-coverage` | token | every crate root carries `#![forbid(unsafe_code)]` |
//! | `metric-name-hygiene` | token | metric literals follow `area.name[.unit]`, no collisions |
//! | `money-cast` | token | no raw casts around `Cpm` fixed-point money outside `yav-types` |
//! | `alloc-in-reject-path` | token | zero allocations on the borrowed parser's reject path |
//! | `span-hygiene` | token | `trace_span!` names follow `area.op`; guards are bound |
//! | `stream-materialize` | token | no population-sized state in the streaming modules |
//! | `privacy-taint` | graph | tainted types never reach exporter/collector sinks unsanitized |
//! | `boundary-escape` | graph | monitor pub API exposes no raw per-user state across the crate |
//! | `layering` | graph | the crate DAG matches `lint.toml [layering]`; no back-edges |
//! | `stale-allow` | audit | every suppression still silences a live finding |
//!
//! False positives are silenced inline with
//! `// yav-lint: allow(<rule>) — <reason>`; the reason is mandatory and
//! a reasonless or malformed suppression is itself reported
//! (`bad-suppression`), as is one that no longer suppresses anything
//! (`stale-allow`). Run it as `cargo run -p yav-lint --release`; add
//! `--format json|sarif` for machine-readable output.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod lints_doc;
pub mod metrics_doc;
pub mod output;
pub mod rules;
pub mod source;
pub mod symbols;
pub mod taint;

pub use config::LintConfig;
pub use engine::{
    analyze, lint_files, lint_source, lint_workspace, load_workspace, Diagnostic, GraphStats,
    LintOutcome, SuppressionSite,
};
pub use source::{FileKind, SourceFile};

use std::path::Path;

/// Renders the metric registry for a lint outcome.
pub fn metrics_markdown(outcome: &LintOutcome) -> String {
    metrics_doc::render(&outcome.metrics)
}

/// Renders the lint catalog (rules + suppression inventory).
pub fn lints_markdown(outcome: &LintOutcome) -> String {
    lints_doc::render(outcome)
}

/// Compares the rendered registry against `docs/METRICS.md` on disk and
/// appends a staleness diagnostic when they differ (or the file is
/// missing).
pub fn check_metrics_doc(root: &Path, outcome: &mut LintOutcome) {
    let rendered = metrics_markdown(outcome);
    let on_disk = std::fs::read_to_string(root.join("docs/METRICS.md")).unwrap_or_default();
    if rendered != on_disk {
        outcome.diagnostics.push(Diagnostic {
            rule: "metric-name-hygiene",
            rel: "docs/METRICS.md".to_owned(),
            line: 1,
            col: 1,
            message: "stale metric registry: regenerate with \
                      `cargo run -p yav-lint -- --write-metrics-doc`"
                .to_owned(),
        });
    }
}

/// Compares the rendered lint catalog against `docs/LINTS.md` on disk
/// and appends a staleness diagnostic when they differ (or the file is
/// missing).
pub fn check_lints_doc(root: &Path, outcome: &mut LintOutcome) {
    let rendered = lints_markdown(outcome);
    let on_disk = std::fs::read_to_string(root.join("docs/LINTS.md")).unwrap_or_default();
    if rendered != on_disk {
        outcome.diagnostics.push(Diagnostic {
            rule: "stale-allow",
            rel: "docs/LINTS.md".to_owned(),
            line: 1,
            col: 1,
            message: "stale lint catalog: regenerate with \
                      `cargo run -p yav-lint -- --write-lints-doc`"
                .to_owned(),
        });
    }
}
