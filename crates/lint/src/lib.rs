//! **yav-lint** — the workspace-native invariant linter.
//!
//! The compiler cannot see the invariants this workspace runs on: PR 2's
//! thread-count-invariant output, PR 3's arena/compiled bit-identity, the
//! paper's §6 requirement that the client keeps counting on malformed
//! nURLs, and the telemetry naming convention the dashboards key on. This
//! crate checks them statically, offline: a hand-rolled lexer
//! ([`lexer`]) feeds a token-stream rule engine ([`engine`]) running six
//! repo-specific rules ([`rules`]):
//!
//! | rule | invariant |
//! |---|---|
//! | `nondet-iteration` | no `HashMap`/`HashSet` on parallel merge/report paths |
//! | `wall-clock-in-sim` | `Instant::now`/`SystemTime::now` only in `telemetry`/`bench` |
//! | `panic-policy` | no `unwrap`/`expect`/`panic!` in `nurl`, `pme::engine`, `core::monitor` |
//! | `forbid-unsafe-coverage` | every crate root carries `#![forbid(unsafe_code)]` |
//! | `metric-name-hygiene` | metric literals follow `area.name[.unit]`, no collisions |
//! | `money-cast` | no raw casts around `Cpm` fixed-point money outside `yav-types` |
//!
//! False positives are silenced inline with
//! `// yav-lint: allow(<rule>) — <reason>`; the reason is mandatory and
//! a reasonless or malformed suppression is itself reported
//! (`bad-suppression`). Run it as `cargo run -p yav-lint --release`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod metrics_doc;
pub mod rules;
pub mod source;

pub use engine::{
    lint_files, lint_source, lint_workspace, load_workspace, Diagnostic, LintOutcome,
};
pub use source::{FileKind, SourceFile};

use std::path::Path;

/// Renders the metric registry for a lint outcome.
pub fn metrics_markdown(outcome: &LintOutcome) -> String {
    metrics_doc::render(&outcome.metrics)
}

/// Compares the rendered registry against `docs/METRICS.md` on disk and
/// appends a staleness diagnostic when they differ (or the file is
/// missing).
pub fn check_metrics_doc(root: &Path, outcome: &mut LintOutcome) {
    let rendered = metrics_markdown(outcome);
    let on_disk = std::fs::read_to_string(root.join("docs/METRICS.md")).unwrap_or_default();
    if rendered != on_disk {
        outcome.diagnostics.push(Diagnostic {
            rule: "metric-name-hygiene",
            rel: "docs/METRICS.md".to_owned(),
            line: 1,
            col: 1,
            message: "stale metric registry: regenerate with \
                      `cargo run -p yav-lint -- --write-metrics-doc`"
                .to_owned(),
        });
    }
}
