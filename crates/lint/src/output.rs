//! Machine-readable output: `--format json` and `--format sarif`.
//!
//! The lint crate is dependency-free, so both renderers are hand-rolled
//! string builders with strict escaping. The SARIF form targets the
//! 2.1.0 schema — the minimal profile GitHub code scanning ingests:
//! one run, one driver, per-rule descriptors for every rule that
//! appears in the results, and one physical location per finding. The
//! shape is pinned by `tests/sarif_snapshot.rs`.

use crate::engine::LintOutcome;
use crate::rules::RULE_DOCS;
use std::collections::BTreeSet;
use std::fmt::Write;

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the outcome as a standalone JSON document.
pub fn json(outcome: &LintOutcome) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"tool\": \"yav-lint\",\n");
    let _ = write!(
        s,
        "  \"files_scanned\": {},\n  \"metrics_registered\": {},\n",
        outcome.files_scanned,
        outcome.metrics.len()
    );
    let g = outcome.graph;
    let _ = writeln!(
        s,
        "  \"graph\": {{ \"crates\": {}, \"fns\": {}, \"call_edges\": {}, \"tainted_fns\": {} }},",
        g.crates, g.fns, g.call_edges, g.tainted_fns
    );
    s.push_str("  \"findings\": [");
    for (i, d) in outcome.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{ \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\" }}",
            esc(d.rule),
            esc(&d.rel),
            d.line,
            d.col,
            esc(&d.message)
        );
    }
    if !outcome.diagnostics.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Renders the outcome as SARIF 2.1.0.
pub fn sarif(outcome: &LintOutcome) -> String {
    let used: BTreeSet<&str> = outcome.diagnostics.iter().map(|d| d.rule).collect();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"yav-lint\",\n");
    s.push_str("          \"informationUri\": \"https://example.org/your-ad-value\",\n");
    s.push_str("          \"rules\": [");
    let mut first = true;
    for doc in RULE_DOCS {
        if !used.contains(doc.name) {
            continue;
        }
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(
            s,
            "\n            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"{}\" }} }}",
            esc(doc.name),
            esc(doc.invariant)
        );
    }
    if !first {
        s.push_str("\n          ");
    }
    s.push_str("]\n        }\n      },\n");
    s.push_str("      \"results\": [");
    for (i, d) in outcome.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \
             \"message\": {{ \"text\": \"{}\" }},\n          \"locations\": [\n            {{\n              \
             \"physicalLocation\": {{\n                \"artifactLocation\": {{ \"uri\": \"{}\" }},\n                \
             \"region\": {{ \"startLine\": {}, \"startColumn\": {} }}\n              }}\n            }}\n          ]\n        }}",
            esc(d.rule),
            esc(&d.message),
            esc(&d.rel),
            d.line,
            d.col
        );
    }
    if !outcome.diagnostics.is_empty() {
        s.push_str("\n      ");
    }
    s.push_str("]\n    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
