//! The `yav-lint` binary: lints the workspace, checks `docs/METRICS.md`
//! freshness, exits nonzero on findings.
//!
//! ```text
//! cargo run -p yav-lint --release                          # lint + doc check
//! cargo run -p yav-lint --release -- --write-metrics-doc   # regenerate docs/METRICS.md
//! cargo run -p yav-lint --release -- --fixture f.rs --as-crate nurl
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use yav_lint::{check_metrics_doc, lint_source, lint_workspace, metrics_markdown, FileKind};

struct Args {
    root: Option<PathBuf>,
    write_metrics_doc: bool,
    no_doc_check: bool,
    fixture: Option<PathBuf>,
    as_crate: String,
    as_rel: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        write_metrics_doc: false,
        no_doc_check: false,
        fixture: None,
        as_crate: "analyzer".to_owned(),
        as_rel: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--root" => args.root = Some(PathBuf::from(value("--root")?)),
            "--write-metrics-doc" => args.write_metrics_doc = true,
            "--no-doc-check" => args.no_doc_check = true,
            "--fixture" => args.fixture = Some(PathBuf::from(value("--fixture")?)),
            "--as-crate" => args.as_crate = value("--as-crate")?,
            "--as-rel" => args.as_rel = Some(value("--as-rel")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Walks upward from the current directory to the workspace root (the
/// directory holding both `Cargo.toml` and `crates/`).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;

    // Single-file mode: lint a fixture under an assumed crate identity.
    if let Some(path) = &args.fixture {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = args
            .as_rel
            .clone()
            .unwrap_or_else(|| path.to_string_lossy().into_owned());
        let diags = lint_source(&rel, &args.as_crate, FileKind::Source, &src);
        for d in &diags {
            println!("{d}");
        }
        println!(
            "yav-lint: {} finding(s) in {} (as crate `{}`)",
            diags.len(),
            path.display(),
            args.as_crate
        );
        return Ok(diags.is_empty());
    }

    let root = match &args.root {
        Some(r) => r.clone(),
        None => find_root().ok_or("could not locate the workspace root; pass --root")?,
    };
    let mut outcome =
        lint_workspace(&root).map_err(|e| format!("walking {}: {e}", root.display()))?;

    if args.write_metrics_doc {
        let doc = metrics_markdown(&outcome);
        let path = root.join("docs/METRICS.md");
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
        std::fs::write(&path, doc).map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "yav-lint: wrote {} ({} metrics)",
            rel_display(&path, &root),
            outcome.metrics.len()
        );
    } else if !args.no_doc_check {
        check_metrics_doc(&root, &mut outcome);
    }

    for d in &outcome.diagnostics {
        println!("{d}");
    }
    if outcome.diagnostics.is_empty() {
        println!(
            "yav-lint: clean — {} files scanned, {} metrics registered",
            outcome.files_scanned,
            outcome.metrics.len()
        );
        Ok(true)
    } else {
        println!(
            "yav-lint: {} finding(s) across {} files",
            outcome.diagnostics.len(),
            outcome.files_scanned
        );
        Ok(false)
    }
}

fn rel_display(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .into_owned()
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("yav-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
