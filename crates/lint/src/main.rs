//! The `yav-lint` binary: lints the workspace (token + graph passes),
//! checks `docs/METRICS.md` and `docs/LINTS.md` freshness, exits
//! nonzero on findings.
//!
//! ```text
//! cargo run -p yav-lint --release                          # lint + doc checks
//! cargo run -p yav-lint --release -- --format sarif        # SARIF to stdout
//! cargo run -p yav-lint --release -- --sarif-out l.sarif   # human + SARIF file
//! cargo run -p yav-lint --release -- --budget-ms 10000     # gate analysis runtime
//! cargo run -p yav-lint --release -- --write-metrics-doc   # regenerate docs/METRICS.md
//! cargo run -p yav-lint --release -- --write-lints-doc     # regenerate docs/LINTS.md
//! cargo run -p yav-lint --release -- --fixture f.rs --as-crate nurl
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;
use yav_lint::{
    check_lints_doc, check_metrics_doc, lint_source, lint_workspace, lints_markdown,
    metrics_markdown, output, FileKind,
};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    root: Option<PathBuf>,
    write_metrics_doc: bool,
    write_lints_doc: bool,
    no_doc_check: bool,
    format: Format,
    sarif_out: Option<PathBuf>,
    budget_ms: Option<u64>,
    fixture: Option<PathBuf>,
    as_crate: String,
    as_rel: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        write_metrics_doc: false,
        write_lints_doc: false,
        no_doc_check: false,
        format: Format::Human,
        sarif_out: None,
        budget_ms: None,
        fixture: None,
        as_crate: "analyzer".to_owned(),
        as_rel: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--root" => args.root = Some(PathBuf::from(value("--root")?)),
            "--write-metrics-doc" => args.write_metrics_doc = true,
            "--write-lints-doc" | "--docs" => args.write_lints_doc = true,
            "--no-doc-check" => args.no_doc_check = true,
            "--format" => {
                args.format = match value("--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--sarif-out" => args.sarif_out = Some(PathBuf::from(value("--sarif-out")?)),
            "--budget-ms" => {
                args.budget_ms = Some(
                    value("--budget-ms")?
                        .parse()
                        .map_err(|e| format!("--budget-ms: {e}"))?,
                )
            }
            "--fixture" => args.fixture = Some(PathBuf::from(value("--fixture")?)),
            "--as-crate" => args.as_crate = value("--as-crate")?,
            "--as-rel" => args.as_rel = Some(value("--as-rel")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Walks upward from the current directory to the workspace root (the
/// directory holding both `Cargo.toml` and `crates/`).
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;

    // Single-file mode: lint a fixture under an assumed crate identity.
    if let Some(path) = &args.fixture {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = args
            .as_rel
            .clone()
            .unwrap_or_else(|| path.to_string_lossy().into_owned());
        let diags = lint_source(&rel, &args.as_crate, FileKind::Source, &src);
        for d in &diags {
            println!("{d}");
        }
        println!(
            "yav-lint: {} finding(s) in {} (as crate `{}`)",
            diags.len(),
            path.display(),
            args.as_crate
        );
        return Ok(diags.is_empty());
    }

    let root = match &args.root {
        Some(r) => r.clone(),
        None => find_root().ok_or("could not locate the workspace root; pass --root")?,
    };
    let started = Instant::now();
    let mut outcome =
        lint_workspace(&root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let elapsed_ms = started.elapsed().as_millis() as u64;

    if args.write_metrics_doc {
        let doc = metrics_markdown(&outcome);
        write_doc(&root, "docs/METRICS.md", &doc)?;
        println!(
            "yav-lint: wrote docs/METRICS.md ({} metrics)",
            outcome.metrics.len()
        );
    }
    if args.write_lints_doc {
        let doc = lints_markdown(&outcome);
        write_doc(&root, "docs/LINTS.md", &doc)?;
        println!(
            "yav-lint: wrote docs/LINTS.md ({} suppression sites)",
            outcome.suppressions.len()
        );
    }
    if !args.write_metrics_doc && !args.write_lints_doc && !args.no_doc_check {
        check_metrics_doc(&root, &mut outcome);
        check_lints_doc(&root, &mut outcome);
    }

    if let Some(path) = &args.sarif_out {
        std::fs::write(path, output::sarif(&outcome))
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }

    let over_budget = args.budget_ms.is_some_and(|b| elapsed_ms > b);
    match args.format {
        Format::Json => print!("{}", output::json(&outcome)),
        Format::Sarif => print!("{}", output::sarif(&outcome)),
        Format::Human => {
            for d in &outcome.diagnostics {
                println!("{d}");
            }
            let g = outcome.graph;
            if outcome.diagnostics.is_empty() {
                println!(
                    "yav-lint: clean — {} files scanned, {} metrics registered, graph: \
                     {} crates / {} fns / {} call edges / {} tainted fns ({} ms)",
                    outcome.files_scanned,
                    outcome.metrics.len(),
                    g.crates,
                    g.fns,
                    g.call_edges,
                    g.tainted_fns,
                    elapsed_ms
                );
            } else {
                println!(
                    "yav-lint: {} finding(s) across {} files ({} ms)",
                    outcome.diagnostics.len(),
                    outcome.files_scanned,
                    elapsed_ms
                );
            }
        }
    }
    if over_budget {
        eprintln!(
            "yav-lint: analysis took {elapsed_ms} ms, over the --budget-ms {} gate",
            args.budget_ms.unwrap_or(0)
        );
        return Ok(false);
    }
    Ok(outcome.diagnostics.is_empty())
}

fn write_doc(root: &Path, rel: &str, doc: &str) -> Result<(), String> {
    let path = root.join(rel);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
    }
    std::fs::write(&path, doc).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("yav-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
