//! A small hand-rolled Rust lexer.
//!
//! The build environment is offline — no `syn`, no `proc-macro2` — so the
//! linter tokenises source itself. The lexer understands exactly as much
//! Rust as the rules need: line and block comments (kept, for suppression
//! parsing), string / raw-string / byte-string / char literals, lifetimes,
//! identifiers, numbers and single-character punctuation, each with a
//! `line:col` span. It never fails: unrecognised bytes become punctuation
//! tokens, so a malformed file degrades to noisy tokens rather than a
//! crashed lint pass.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `use`, `as`, ...).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// String literal of any flavour; `text` holds the inner content.
    Str,
    /// Char literal; `text` holds the inner content.
    Char,
    /// Numeric literal.
    Number,
    /// One punctuation character; `text` holds it.
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// Identifier text, literal inner content, or the punctuation char.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

impl Token {
    /// True for a punctuation token equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for an identifier token equal to `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

/// One comment (line or block), with the line it starts on. The leading
/// `//`, `///`, `//!` or `/*` marker is stripped.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body without the comment markers.
    pub text: String,
    /// 1-based line of the comment start.
    pub line: u32,
}

/// The full lex of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    /// Byte offset of the current line's start.
    line_start: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn col(&self) -> u32 {
        (self.pos - self.line_start) as u32 + 1
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.bytes.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenises `src`. Infallible by construction.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
    };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col());
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                let start = cur.pos + 2;
                while cur.peek(0).is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                out.comments.push(Comment {
                    text: src[start..cur.pos].to_owned(),
                    line,
                });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                let mut depth = 1usize;
                let mut end = cur.pos;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            end = cur.pos;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break, // unterminated: tolerate
                    }
                }
                out.comments.push(Comment {
                    text: src[start..end.max(start)].to_owned(),
                    line,
                });
            }
            b'"' => {
                let text = read_quoted(&mut cur, src);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                });
            }
            b'\'' => read_char_or_lifetime(&mut cur, src, &mut out.tokens, line, col),
            b'0'..=b'9' => {
                let start = cur.pos;
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                // Fractional part — only when followed by a digit, so
                // `0..12` and `1.to_string()` stay three tokens.
                if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                    cur.bump();
                    while cur.peek(0).is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: src[start..cur.pos].to_owned(),
                    line,
                    col,
                });
            }
            _ if is_ident_start(b) => {
                if let Some(text) = try_string_prefix(&mut cur, src) {
                    out.tokens.push(Token {
                        kind: TokenKind::Str,
                        text,
                        line,
                        col,
                    });
                    continue;
                }
                let start = cur.pos;
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..cur.pos].to_owned(),
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Reads a `"..."` literal (cursor on the opening quote); returns the
/// inner content, escapes left as written.
fn read_quoted(cur: &mut Cursor, src: &str) -> String {
    cur.bump(); // opening quote
    let start = cur.pos;
    loop {
        match cur.peek(0) {
            Some(b'\\') => {
                cur.bump();
                cur.bump();
            }
            Some(b'"') => {
                let text = src[start..cur.pos].to_owned();
                cur.bump();
                return text;
            }
            Some(_) => {
                cur.bump();
            }
            None => return src[start..cur.pos].to_owned(), // unterminated
        }
    }
}

/// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` when the cursor
/// sits on the prefix letter. Returns the inner content, or `None` when
/// this is an ordinary identifier.
fn try_string_prefix(cur: &mut Cursor, src: &str) -> Option<String> {
    let ahead = match cur.peek(0) {
        Some(b'b') if cur.peek(1) == Some(b'r') => 2,
        Some(b'b') | Some(b'r') => 1,
        _ => return None,
    };
    let raw = ahead == 2 || cur.peek(0) == Some(b'r');
    match cur.peek(ahead) {
        Some(b'"') if !raw => {
            // b"..."
            for _ in 0..ahead {
                cur.bump();
            }
            Some(read_quoted(cur, src))
        }
        Some(b'"') | Some(b'#') if raw => {
            let mut hashes = 0usize;
            while cur.peek(ahead + hashes) == Some(b'#') {
                hashes += 1;
            }
            if cur.peek(ahead + hashes) != Some(b'"') {
                return None; // `r#ident` raw identifier
            }
            for _ in 0..(ahead + hashes + 1) {
                cur.bump();
            }
            let start = cur.pos;
            let closing = {
                let mut c = String::from("\"");
                c.push_str(&"#".repeat(hashes));
                c
            };
            loop {
                if cur.pos >= cur.bytes.len() {
                    return Some(src[start..cur.pos].to_owned()); // unterminated
                }
                if src[cur.pos..].starts_with(&closing) {
                    let text = src[start..cur.pos].to_owned();
                    for _ in 0..closing.len() {
                        cur.bump();
                    }
                    return Some(text);
                }
                cur.bump();
            }
        }
        _ => None,
    }
}

/// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal); the
/// cursor sits on the `'`.
fn read_char_or_lifetime(
    cur: &mut Cursor,
    src: &str,
    tokens: &mut Vec<Token>,
    line: u32,
    col: u32,
) {
    // Lifetime: '<ident-start> not followed by a closing quote.
    if cur.peek(1).is_some_and(is_ident_start) && cur.peek(2) != Some(b'\'') {
        cur.bump(); // '
        let start = cur.pos;
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        tokens.push(Token {
            kind: TokenKind::Lifetime,
            text: src[start..cur.pos].to_owned(),
            line,
            col,
        });
        return;
    }
    cur.bump(); // '
    let start = cur.pos;
    loop {
        match cur.peek(0) {
            Some(b'\\') => {
                cur.bump();
                cur.bump();
            }
            Some(b'\'') => {
                tokens.push(Token {
                    kind: TokenKind::Char,
                    text: src[start..cur.pos].to_owned(),
                    line,
                    col,
                });
                cur.bump();
                return;
            }
            Some(_) => {
                cur.bump();
            }
            None => {
                tokens.push(Token {
                    kind: TokenKind::Char,
                    text: src[start..cur.pos].to_owned(),
                    line,
                    col,
                });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_spans() {
        let l = lex("let x = foo::bar(1);\nlet y = 2;");
        assert!(l.tokens[0].is_ident("let"));
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        let y = l.tokens.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!((y.line, y.col), (2, 5));
    }

    #[test]
    fn strings_raw_strings_and_escapes() {
        let ks = kinds(r####"a("x.y") + r#"raw "inner""# + b"bytes" + "es\"c""####);
        let strs: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, ["x.y", r#"raw "inner""#, "bytes", r#"es\"c"#]);
    }

    #[test]
    fn char_vs_lifetime() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'z'; let n = '\\n'; }");
        let lifetimes = ks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count();
        let chars = ks.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn comments_are_kept_with_lines() {
        let l = lex("// top\nfn f() {} /* block\nspanning */ // tail");
        assert_eq!(l.comments.len(), 3);
        assert_eq!(l.comments[0].text.trim(), "top");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert_eq!(l.comments[2].line, 3);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let ks = kinds("0..12 1.to_string() 1.25e3 0xff_u64");
        let nums: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["0", "12", "1", "1.25e3", "0xff_u64"]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.tokens[0].is_ident("fn"));
    }
}
