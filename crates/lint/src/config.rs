//! `lint.toml`: configuration for the workspace-graph passes.
//!
//! The build environment is offline, so there is no `toml` crate; this
//! module parses exactly the subset the config uses — `[section]`
//! headers, `key = "string"`, and `key = ["a", "b"]` lists that may
//! span lines — and nothing more. The canonical config ships compiled
//! into the binary (`include_str!` of the repo-root `lint.toml`), so a
//! missing file on disk degrades to the checked-in policy instead of a
//! silent no-op pass.

use std::collections::BTreeMap;

/// The repo-root `lint.toml`, compiled in as the default policy.
pub const DEFAULT_CONFIG_TOML: &str = include_str!("../../../lint.toml");

/// Parsed graph-pass configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Type names whose values carry raw browsing data, per-user cost
    /// ledgers, or decrypted prices.
    pub taint_types: Vec<String>,
    /// Field names whose reads mark the enclosing fn as tainted.
    pub taint_fields: Vec<String>,
    /// Workspace-relative path prefixes of exporter/collector modules.
    pub sink_modules: Vec<String>,
    /// Fn names trusted to reduce tainted state to clean aggregates.
    pub sanitizer_fns: Vec<String>,
    /// Workspace-relative path prefixes of monitor boundary modules.
    pub boundary_modules: Vec<String>,
    /// Types that pub items of boundary modules may not return.
    pub boundary_types: Vec<String>,
    /// The intended crate DAG: crate → allowed workspace-internal deps.
    pub layering: BTreeMap<String, Vec<String>>,
    /// Fixture-tree manifests: crate → declared deps. Real workspaces
    /// get deps from `Cargo.toml`; fixture trees declare them here.
    pub manifests: BTreeMap<String, Vec<String>>,
}

impl LintConfig {
    /// The compiled-in repo policy.
    pub fn builtin() -> LintConfig {
        parse(DEFAULT_CONFIG_TOML).expect("compiled-in lint.toml must parse")
    }

    /// Loads `root/lint.toml`, falling back to the compiled-in policy
    /// when the file does not exist. A file that exists but fails to
    /// parse is an error (a typo must not silently drop the policy).
    pub fn load(root: &std::path::Path) -> Result<LintConfig, String> {
        let path = root.join("lint.toml");
        match std::fs::read_to_string(&path) {
            Ok(text) => parse(&text).map_err(|e| format!("{}: {e}", path.display())),
            Err(_) => Ok(LintConfig::builtin()),
        }
    }
}

/// Parses the TOML subset described in the module docs.
pub fn parse(text: &str) -> Result<LintConfig, String> {
    let mut sections: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
    let mut current = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        if let Some(name) = line.strip_prefix('[') {
            let name = name
                .strip_suffix(']')
                .ok_or(format!("line {lineno}: unterminated section header"))?;
            current = name.trim().to_owned();
            sections.entry(current.clone()).or_default();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or(format!("line {lineno}: expected `key = value`"))?;
        if current.is_empty() {
            return Err(format!("line {lineno}: key before any [section]"));
        }
        let mut value = value.trim().to_owned();
        // A list may span lines: keep consuming until the `]` closes.
        while value.starts_with('[') && !value.contains(']') {
            let (_, cont) = lines
                .next()
                .ok_or(format!("line {lineno}: unterminated list"))?;
            value.push(' ');
            value.push_str(strip_comment(cont).trim());
        }
        let items = parse_value(&value).map_err(|e| format!("line {lineno}: {e}"))?;
        sections
            .entry(current.clone())
            .or_default()
            .insert(key.trim().to_owned(), items);
    }

    let take = |section: &str, key: &str| -> Vec<String> {
        sections
            .get(section)
            .and_then(|s| s.get(key))
            .cloned()
            .unwrap_or_default()
    };
    let take_map = |section: &str| -> BTreeMap<String, Vec<String>> {
        sections.get(section).cloned().unwrap_or_default()
    };
    Ok(LintConfig {
        taint_types: take("taint", "types"),
        taint_fields: take("taint", "fields"),
        sink_modules: take("sinks", "modules"),
        sanitizer_fns: take("sanitizers", "fns"),
        boundary_modules: take("boundary", "modules"),
        boundary_types: take("boundary", "types"),
        layering: take_map("layering"),
        manifests: take_map("manifests"),
    })
}

/// Removes a `#`-comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `"string"` or `["a", "b"]` into a list of strings.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or("unterminated list".to_owned())?;
        let mut out = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            out.push(unquote(part)?);
        }
        return Ok(out);
    }
    Ok(vec![unquote(value)?])
}

fn unquote(s: &str) -> Result<String, String> {
    let s = s.trim();
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(|s| s.to_owned())
        .ok_or(format!("expected a quoted string, got `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_config_parses_and_is_populated() {
        let c = LintConfig::builtin();
        assert!(c.taint_types.iter().any(|t| t == "HttpRequest"));
        assert!(c.taint_fields.iter().any(|f| f == "cleartext_cpm"));
        assert!(c
            .sink_modules
            .iter()
            .any(|m| m == "crates/telemetry/src/export.rs"));
        assert!(c.sanitizer_fns.iter().any(|f| f == "summary"));
        assert!(c
            .boundary_modules
            .iter()
            .any(|m| m == "crates/core/src/monitor.rs"));
        assert!(c.layering.contains_key("telemetry"));
        assert!(c.layering["telemetry"].is_empty());
        assert!(c.layering["core"].iter().any(|d| d == "pme"));
        // Nothing may depend on bench or lint.
        for (krate, deps) in &c.layering {
            assert!(
                !deps.iter().any(|d| d == "bench" || d == "lint"),
                "{krate} must not depend on bench/lint"
            );
        }
    }

    #[test]
    fn multiline_lists_and_comments() {
        let c = parse(
            "# leading comment\n[taint]\ntypes = [\n  \"A\", # trailing\n  \"B\",\n]\n\
             [sinks]\nmodules = [\"m/\"]\n",
        )
        .unwrap();
        assert_eq!(c.taint_types, ["A", "B"]);
        assert_eq!(c.sink_modules, ["m/"]);
    }

    #[test]
    fn generic_sections_become_maps() {
        let c = parse("[layering]\na = []\nb = [\"a\"]\n[manifests]\nb = [\"a\"]\n").unwrap();
        assert_eq!(c.layering["b"], ["a"]);
        assert!(c.layering["a"].is_empty());
        assert_eq!(c.manifests["b"], ["a"]);
    }

    #[test]
    fn malformed_config_is_an_error() {
        assert!(parse("[taint\ntypes = []").is_err());
        assert!(parse("types = []").is_err());
        assert!(parse("[t]\nkey value").is_err());
        assert!(parse("[t]\nkey = [unquoted]").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let c = parse("[taint]\nfields = [\"a#b\"]\n").unwrap();
        assert_eq!(c.taint_fields, ["a#b"]);
    }
}
