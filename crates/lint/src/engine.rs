//! The rule engine: diagnostics, the pluggable [`Rule`] trait, workspace
//! file discovery, and the lint driver that applies suppressions.

use crate::rules::metric_name::{MetricEntry, MetricNameRule};
use crate::source::{FileKind, SourceFile};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One finding, addressed `file:line:col`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub rel: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.rel, self.line, self.col, self.rule, self.message
        )
    }
}

/// A token-stream rule. Rules hold state (`&mut self`) so cross-file
/// rules like metric harvesting can accumulate.
pub trait Rule {
    /// The rule's kebab-case name, as used in `allow(...)`.
    fn name(&self) -> &'static str;
    /// Inspects one file and appends findings.
    fn check(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// The result of a lint pass.
#[derive(Debug)]
pub struct LintOutcome {
    /// Findings that survived suppression, sorted by path then position.
    pub diagnostics: Vec<Diagnostic>,
    /// Every telemetry metric harvested from the workspace.
    pub metrics: Vec<MetricEntry>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

/// Lints a set of prepared files with the full rule set.
pub fn lint_files(files: &[SourceFile]) -> LintOutcome {
    let mut rules = crate::rules::all();
    let mut metric_rule = MetricNameRule::new();
    let mut raw: Vec<Diagnostic> = Vec::new();

    for file in files {
        for rule in &mut rules {
            rule.check(file, &mut raw);
        }
        metric_rule.check(file, &mut raw);
        for (line, why) in &file.malformed_suppressions {
            raw.push(Diagnostic {
                rule: "bad-suppression",
                rel: file.rel.clone(),
                line: *line,
                col: 1,
                message: why.clone(),
            });
        }
    }

    let by_rel: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.rel.as_str(), f)).collect();
    let mut diagnostics: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            // A suppression silences the rule it names; bad-suppression
            // findings themselves cannot be silenced.
            d.rule == "bad-suppression"
                || !by_rel
                    .get(d.rel.as_str())
                    .is_some_and(|f| f.suppressed(d.rule, d.line))
        })
        .collect();
    diagnostics.sort_by(|a, b| {
        (a.rel.as_str(), a.line, a.col, a.rule).cmp(&(b.rel.as_str(), b.line, b.col, b.rule))
    });

    LintOutcome {
        diagnostics,
        metrics: metric_rule.into_entries(),
        files_scanned: files.len(),
    }
}

/// Lints one in-memory source under an assumed identity — the fixture
/// tests' entry point.
pub fn lint_source(rel: &str, crate_name: &str, kind: FileKind, src: &str) -> Vec<Diagnostic> {
    let file = SourceFile::new(rel.to_owned(), crate_name.to_owned(), kind, src);
    lint_files(std::slice::from_ref(&file)).diagnostics
}

/// Discovers and lexes every workspace source file: `crates/*/{src,tests,
/// benches,examples}` plus the root facade's `src/`. Shims are excluded —
/// they are vendored stand-ins for external crates, not project code —
/// as are `tests/fixtures/` directories (lint test data, deliberately
/// full of violations).
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        load_package(root, &dir, &name, &mut files)?;
    }
    load_package(root, root, "root", &mut files)?;
    Ok(files)
}

fn load_package(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    files: &mut Vec<SourceFile>,
) -> io::Result<()> {
    const TREES: [(&str, FileKind); 4] = [
        ("src", FileKind::Source),
        ("tests", FileKind::Test),
        ("benches", FileKind::Bench),
        ("examples", FileKind::Example),
    ];
    for (sub, kind) in TREES {
        let tree = dir.join(sub);
        if tree.is_dir() {
            collect_rs(root, &tree, crate_name, kind, files)?;
        }
    }
    Ok(())
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    kind: FileKind,
    files: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(root, &path, crate_name, kind, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::new(rel, crate_name.to_owned(), kind, &src));
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<LintOutcome> {
    let files = load_workspace(root)?;
    Ok(lint_files(&files))
}
