//! The rule engine: diagnostics, the pluggable [`Rule`] trait, workspace
//! file discovery, the graph-pass driver, and the lint driver that
//! applies suppressions and audits them for staleness.

use crate::config::LintConfig;
use crate::graph::{load_manifests, Graph, Manifest};
use crate::rules::metric_name::{MetricEntry, MetricNameRule};
use crate::rules::{boundary_escape, layering, privacy_taint};
use crate::source::{FileKind, SourceFile};
use crate::taint;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One finding, addressed `file:line:col`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub rel: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.rel, self.line, self.col, self.rule, self.message
        )
    }
}

/// A token-stream rule. Rules hold state (`&mut self`) so cross-file
/// rules like metric harvesting can accumulate.
pub trait Rule {
    /// The rule's kebab-case name, as used in `allow(...)`.
    fn name(&self) -> &'static str;
    /// Inspects one file and appends findings.
    fn check(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>);
}

/// One live suppression site (for the `docs/LINTS.md` inventory).
#[derive(Debug, Clone)]
pub struct SuppressionSite {
    /// Workspace-relative path.
    pub rel: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// The suppressed rules.
    pub rules: Vec<String>,
    /// The written justification.
    pub reason: String,
}

/// Sizes of the workspace graph the passes ran over.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats {
    /// Crates with a dependency entry (manifest or config).
    pub crates: usize,
    /// Production fns indexed.
    pub fns: usize,
    /// Resolved call edges.
    pub call_edges: usize,
    /// Fns that can observe tainted data.
    pub tainted_fns: usize,
}

/// The result of a lint pass.
#[derive(Debug)]
pub struct LintOutcome {
    /// Findings that survived suppression, sorted by path then position.
    pub diagnostics: Vec<Diagnostic>,
    /// Every telemetry metric harvested from the workspace.
    pub metrics: Vec<MetricEntry>,
    /// How many files were scanned.
    pub files_scanned: usize,
    /// Every live suppression in the workspace, sorted by site.
    pub suppressions: Vec<SuppressionSite>,
    /// Graph-pass sizes.
    pub graph: GraphStats,
}

/// Runs the full engine — token rules, graph passes, the suppression
/// filter and the stale-allow audit — over prepared files, manifests
/// and config.
pub fn analyze(files: &[SourceFile], manifests: &[Manifest], config: &LintConfig) -> LintOutcome {
    let mut rules = crate::rules::all();
    let mut metric_rule = MetricNameRule::new();
    let mut raw: Vec<Diagnostic> = Vec::new();

    for file in files {
        for rule in &mut rules {
            rule.check(file, &mut raw);
        }
        metric_rule.check(file, &mut raw);
        for (line, why) in &file.malformed_suppressions {
            raw.push(Diagnostic {
                rule: "bad-suppression",
                rel: file.rel.clone(),
                line: *line,
                col: 1,
                message: why.clone(),
            });
        }
    }

    // Graph passes: symbol tables → crate/call graph → taint lattice.
    let graph = Graph::build(files, manifests, config);
    let taints = taint::analyze(&graph, config);
    privacy_taint::check(&graph, &taints, config, &mut raw);
    boundary_escape::check(&graph, config, &mut raw);
    layering::check(files, manifests, &graph, config, &mut raw);
    let stats = GraphStats {
        crates: graph.crate_deps.len(),
        fns: graph.fns.len(),
        call_edges: graph.call_edges,
        tainted_fns: taints.tainted_count(),
    };

    // Stale-allow audit: a suppression that silences nothing is itself
    // a finding, so the inventory in docs/LINTS.md stays honest.
    let mut suppression_sites = Vec::new();
    for file in files {
        for s in &file.suppressions {
            let live = raw.iter().any(|d| {
                d.rel == file.rel
                    && (d.line == s.line || d.line == s.line + 1)
                    && s.rules.iter().any(|r| r == d.rule)
            });
            if live {
                suppression_sites.push(SuppressionSite {
                    rel: file.rel.clone(),
                    line: s.line,
                    rules: s.rules.clone(),
                    reason: s.reason.clone(),
                });
            } else {
                raw.push(Diagnostic {
                    rule: "stale-allow",
                    rel: file.rel.clone(),
                    line: s.line,
                    col: 1,
                    message: format!(
                        "suppression `allow({})` no longer silences any finding: \
                         delete the comment (or fix the rule name) so the \
                         suppression inventory stays honest",
                        s.rules.join(", ")
                    ),
                });
            }
        }
    }
    suppression_sites.sort_by(|a, b| (a.rel.as_str(), a.line).cmp(&(b.rel.as_str(), b.line)));

    let by_rel: BTreeMap<&str, &SourceFile> = files.iter().map(|f| (f.rel.as_str(), f)).collect();
    let mut diagnostics: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            // A suppression silences the rule it names; bad-suppression
            // and stale-allow findings themselves cannot be silenced.
            d.rule == "bad-suppression"
                || d.rule == "stale-allow"
                || !by_rel
                    .get(d.rel.as_str())
                    .is_some_and(|f| f.suppressed(d.rule, d.line))
        })
        .collect();
    diagnostics.sort_by(|a, b| {
        (a.rel.as_str(), a.line, a.col, a.rule).cmp(&(b.rel.as_str(), b.line, b.col, b.rule))
    });

    LintOutcome {
        diagnostics,
        metrics: metric_rule.into_entries(),
        files_scanned: files.len(),
        suppressions: suppression_sites,
        graph: stats,
    }
}

/// Lints a set of prepared files with the full rule set under the
/// compiled-in config and no manifests (fixture entry point).
pub fn lint_files(files: &[SourceFile]) -> LintOutcome {
    analyze(files, &[], &LintConfig::builtin())
}

/// Lints one in-memory source under an assumed identity — the fixture
/// tests' entry point.
pub fn lint_source(rel: &str, crate_name: &str, kind: FileKind, src: &str) -> Vec<Diagnostic> {
    let file = SourceFile::new(rel.to_owned(), crate_name.to_owned(), kind, src);
    lint_files(std::slice::from_ref(&file)).diagnostics
}

/// Discovers and lexes every workspace source file: `crates/*/{src,tests,
/// benches,examples}` plus the root facade's `src/`. Shims are excluded —
/// they are vendored stand-ins for external crates, not project code —
/// as are `tests/fixtures/` directories (lint test data, deliberately
/// full of violations).
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        load_package(root, &dir, &name, &mut files)?;
    }
    load_package(root, root, "root", &mut files)?;
    Ok(files)
}

fn load_package(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    files: &mut Vec<SourceFile>,
) -> io::Result<()> {
    const TREES: [(&str, FileKind); 4] = [
        ("src", FileKind::Source),
        ("tests", FileKind::Test),
        ("benches", FileKind::Bench),
        ("examples", FileKind::Example),
    ];
    for (sub, kind) in TREES {
        let tree = dir.join(sub);
        if tree.is_dir() {
            collect_rs(root, &tree, crate_name, kind, files)?;
        }
    }
    Ok(())
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    kind: FileKind,
    files: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(root, &path, crate_name, kind, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let src = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::new(rel, crate_name.to_owned(), kind, &src));
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`: loads `lint.toml` (or
/// the compiled-in policy), every source file and every manifest, then
/// runs token and graph passes.
pub fn lint_workspace(root: &Path) -> io::Result<LintOutcome> {
    let config = LintConfig::load(root).map_err(io::Error::other)?;
    let files = load_workspace(root)?;
    let manifests = load_manifests(root)?;
    Ok(analyze(&files, &manifests, &config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(rel: &str, krate: &str, src: &str) -> LintOutcome {
        let file = SourceFile::new(rel.to_owned(), krate.to_owned(), FileKind::Source, src);
        lint_files(std::slice::from_ref(&file))
    }

    #[test]
    fn live_suppression_silences_and_joins_the_inventory() {
        let o = outcome(
            "crates/analyzer/src/x.rs",
            "analyzer",
            "// yav-lint: allow(nondet-iteration) — keyed lookups only, never iterated\n\
             fn f(m: &std::collections::HashMap<u32, u32>) -> u32 { 0 }\n",
        );
        assert!(
            !o.diagnostics.iter().any(|d| d.rule == "nondet-iteration"),
            "the finding must be silenced: {:?}",
            o.diagnostics
        );
        assert!(
            !o.diagnostics.iter().any(|d| d.rule == "stale-allow"),
            "a live suppression is not stale: {:?}",
            o.diagnostics
        );
        assert_eq!(o.suppressions.len(), 1, "the site is live and inventoried");
        assert_eq!(o.suppressions[0].line, 1);
        assert_eq!(
            o.suppressions[0].reason,
            "keyed lookups only, never iterated"
        );
    }

    #[test]
    fn stale_suppression_is_a_finding_and_leaves_the_inventory() {
        let o = outcome(
            "crates/analyzer/src/x.rs",
            "analyzer",
            "// yav-lint: allow(nondet-iteration) — nothing here uses a map\n\
             fn f() -> u32 { 0 }\n",
        );
        let stale: Vec<_> = o
            .diagnostics
            .iter()
            .filter(|d| d.rule == "stale-allow")
            .collect();
        assert_eq!(
            stale.len(),
            1,
            "exactly one stale site: {:?}",
            o.diagnostics
        );
        assert_eq!(stale[0].line, 1);
        assert!(stale[0].message.contains("allow(nondet-iteration)"));
        assert!(o.suppressions.is_empty(), "stale sites are not inventoried");
    }

    #[test]
    fn stale_allow_findings_cannot_be_suppressed() {
        // A suppression naming stale-allow itself silences nothing (the
        // audit is unsuppressable), so it is reported stale.
        let o = outcome(
            "crates/analyzer/src/x.rs",
            "analyzer",
            "// yav-lint: allow(stale-allow) — trying to silence the auditor\n\
             fn f() -> u32 { 0 }\n",
        );
        assert!(
            o.diagnostics.iter().any(|d| d.rule == "stale-allow"),
            "the audit must survive attempts to silence it: {:?}",
            o.diagnostics
        );
    }
}
