//! Stratified k-fold cross-validation.
//!
//! §5.4's protocol: "we applied 10-fold cross validation, and averaged
//! results over 10 runs". [`cross_validate`] reproduces exactly that,
//! collecting the confusion statistics and weighted AUCROC of every fold.

use crate::dataset::Dataset;
use crate::forest::{RandomForest, RandomForestConfig};
use crate::metrics::{auc_roc_ovr, ConfusionMatrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Aggregated cross-validation results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvReport {
    /// Folds per run.
    pub folds: usize,
    /// Repeated runs.
    pub runs: usize,
    /// Mean accuracy (== weighted TP rate).
    pub accuracy: f64,
    /// Mean weighted precision.
    pub precision: f64,
    /// Mean weighted recall.
    pub recall: f64,
    /// Mean weighted FP rate.
    pub fp_rate: f64,
    /// Mean weighted one-vs-rest AUCROC.
    pub auc_roc: f64,
    /// Per-class mean recall (to check "no class worse than 5 % from the
    /// average", §5.4).
    pub per_class_recall: Vec<f64>,
}

impl CvReport {
    /// Largest gap between any class's recall and the overall recall.
    pub fn worst_class_gap(&self) -> f64 {
        self.per_class_recall
            .iter()
            .filter(|r| r.is_finite())
            .map(|r| (self.recall - r).max(0.0))
            .fold(0.0, f64::max)
    }
}

/// Stratified fold assignment: each class's rows are shuffled and dealt
/// round-robin, so every fold mirrors the class balance.
pub fn stratified_folds(data: &Dataset, folds: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut assignment = vec![0usize; data.len()];
    for class in 0..data.n_classes() {
        let mut rows: Vec<usize> = (0..data.len())
            .filter(|&i| data.label(i) == class)
            .collect();
        rows.shuffle(rng);
        for (j, &row) in rows.iter().enumerate() {
            assignment[row] = j % folds;
        }
    }
    assignment
}

/// Runs `runs` × `folds`-fold stratified CV of a random forest and
/// averages the §5.4 metric suite.
pub fn cross_validate(
    data: &Dataset,
    config: &RandomForestConfig,
    folds: usize,
    runs: usize,
    seed: u64,
) -> CvReport {
    assert!(folds >= 2, "need at least two folds");
    assert!(runs >= 1, "need at least one run");
    let mut acc = Vec::new();
    let mut prec = Vec::new();
    let mut rec = Vec::new();
    let mut fpr = Vec::new();
    let mut auc = Vec::new();
    let mut class_rec = vec![Vec::new(); data.n_classes()];

    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(seed ^ (run as u64).wrapping_mul(0x9E37_79B9));
        let assignment = stratified_folds(data, folds, &mut rng);
        for fold in 0..folds {
            let train: Vec<usize> = (0..data.len()).filter(|&i| assignment[i] != fold).collect();
            let test: Vec<usize> = (0..data.len()).filter(|&i| assignment[i] == fold).collect();
            if train.is_empty() || test.is_empty() {
                continue;
            }
            let train_ds = data.select(&train);
            let forest = RandomForest::fit(
                &train_ds,
                &RandomForestConfig {
                    seed: config.seed ^ ((run * folds + fold) as u64) << 8,
                    ..*config
                },
            );
            let mut actual = Vec::with_capacity(test.len());
            let mut predicted = Vec::with_capacity(test.len());
            let mut probs = Vec::with_capacity(test.len());
            for &i in &test {
                let p = forest.predict_proba(data.row(i));
                predicted.push(crate::tree::argmax(&p));
                probs.push(p);
                actual.push(data.label(i));
            }
            let cm = ConfusionMatrix::from_labels(data.n_classes(), &actual, &predicted);
            acc.push(cm.accuracy());
            prec.push(cm.weighted_precision());
            rec.push(cm.weighted_recall());
            fpr.push(cm.weighted_fp_rate());
            let a = auc_roc_ovr(&probs, &actual, data.n_classes());
            if a.is_finite() {
                auc.push(a);
            }
            for (c, bucket) in class_rec.iter_mut().enumerate() {
                let r = cm.recall(c);
                if r.is_finite() {
                    bucket.push(r);
                }
            }
        }
    }

    let mean = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    CvReport {
        folds,
        runs,
        accuracy: mean(&acc),
        precision: mean(&prec),
        recall: mean(&rec),
        fp_rate: mean(&fpr),
        auc_roc: mean(&auc),
        per_class_recall: class_rec.iter().map(|v| mean(v)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeConfig;

    fn dataset() -> Dataset {
        // Separable 3-class problem with mild label noise.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..450usize {
            let x = (i % 45) as f64 / 45.0;
            let y = ((i * 11) % 45) as f64 / 45.0;
            let mut label = if x < 0.33 {
                0
            } else if y < 0.5 {
                1
            } else {
                2
            };
            if i % 29 == 0 {
                label = (label + 1) % 3; // noise
            }
            rows.push(vec![x, y]);
            labels.push(label);
        }
        Dataset::new(rows, labels, 3, vec!["x".into(), "y".into()])
    }

    fn quick_config() -> RandomForestConfig {
        RandomForestConfig {
            n_trees: 10,
            tree: TreeConfig {
                max_depth: 8,
                ..TreeConfig::default()
            },
            seed: 3,
            threads: 2,
        }
    }

    #[test]
    fn stratified_folds_balance_classes() {
        let data = dataset();
        let mut rng = StdRng::seed_from_u64(5);
        let assignment = stratified_folds(&data, 10, &mut rng);
        for fold in 0..10 {
            for class in 0..3 {
                let in_fold = (0..data.len())
                    .filter(|&i| assignment[i] == fold && data.label(i) == class)
                    .count();
                let total = data.class_counts()[class];
                let expected = total as f64 / 10.0;
                assert!(
                    (in_fold as f64 - expected).abs() <= 1.0,
                    "fold {fold} class {class}: {in_fold} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn cv_report_on_learnable_data() {
        let report = cross_validate(&dataset(), &quick_config(), 5, 2, 1);
        assert!(report.accuracy > 0.85, "accuracy {}", report.accuracy);
        assert!(report.auc_roc > 0.9, "auc {}", report.auc_roc);
        assert!(report.precision > 0.8);
        assert!(report.fp_rate < 0.15);
        assert_eq!(report.per_class_recall.len(), 3);
        assert!(report.worst_class_gap() < 0.2);
    }

    #[test]
    fn cv_is_deterministic() {
        let a = cross_validate(&dataset(), &quick_config(), 4, 1, 9);
        let b = cross_validate(&dataset(), &quick_config(), 4, 1, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn unlearnable_labels_score_near_chance() {
        // Labels depend on nothing the features know.
        let rows: Vec<Vec<f64>> = (0..300).map(|i| vec![(i % 10) as f64]).collect();
        let labels: Vec<usize> = (0..300).map(|i| (i * 7 + i / 13) % 3).collect();
        let data = Dataset::new(rows, labels, 3, vec!["junk".into()]);
        let report = cross_validate(&data, &quick_config(), 5, 1, 2);
        assert!(
            report.accuracy < 0.55,
            "accuracy {} should be near 1/3",
            report.accuracy
        );
        assert!((report.auc_roc - 0.5).abs() < 0.2, "auc {}", report.auc_roc);
    }
}
