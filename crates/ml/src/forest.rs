//! Random forests: bagging + feature subsampling + out-of-bag error.
//!
//! §5.1 justifies the choice: the RF "takes into account the target
//! variable, can be trained quickly on large datasets, maintains
//! interpretability of features and generally does not overfit". Trees
//! train in parallel with crossbeam scoped threads; each tree's RNG is
//! derived from the forest seed and the tree index, so parallelism never
//! affects the result.

use crate::dataset::Dataset;
use crate::tree::{argmax, DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree CART parameters. `features_per_split: None` here means
    /// "use √d", the standard forest default.
    pub tree: TreeConfig,
    /// Seed for bootstrap and feature subsampling.
    pub seed: u64,
    /// Worker threads for training (1 = serial).
    pub threads: usize,
}

impl Default for RandomForestConfig {
    fn default() -> RandomForestConfig {
        RandomForestConfig {
            n_trees: 40,
            tree: TreeConfig {
                max_depth: 14,
                ..TreeConfig::default()
            },
            seed: 0xF05E,
            threads: default_train_threads(),
        }
    }
}

/// Default training parallelism: one worker per available core, clamped
/// to [1, 8] (trees are coarse units; more workers than that just adds
/// scheduling noise). Thread count never affects the fitted forest.
pub fn default_train_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

/// A trained forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    /// Fraction of OOB rows misclassified during training.
    oob_error: f64,
    /// Normalised mean-decrease-impurity importances (sum to 1).
    importances: Vec<f64>,
}

impl RandomForest {
    /// Trains a forest on the full dataset.
    pub fn fit(data: &Dataset, config: &RandomForestConfig) -> RandomForest {
        assert!(!data.is_empty(), "cannot fit a forest on an empty dataset");
        assert!(config.n_trees > 0, "need at least one tree");
        let n = data.len();
        let d = data.n_features();
        let tree_config = TreeConfig {
            features_per_split: config
                .tree
                .features_per_split
                .or(Some(((d as f64).sqrt().ceil() as usize).max(1))),
            ..config.tree
        };

        // Draw every tree's bootstrap up front (serially, so thread count
        // cannot change results), then train in parallel.
        let mut boots: Vec<Vec<usize>> = Vec::with_capacity(config.n_trees);
        let mut seeds: Vec<u64> = Vec::with_capacity(config.n_trees);
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 0..config.n_trees {
            boots.push((0..n).map(|_| rng.gen_range(0..n)).collect());
            seeds.push(rng.gen());
        }

        let threads = config.threads.max(1).min(config.n_trees);
        let mut trees: Vec<Option<DecisionTree>> = vec![None; config.n_trees];
        if threads == 1 {
            for (t, slot) in trees.iter_mut().enumerate() {
                let mut trng = StdRng::seed_from_u64(seeds[t]);
                *slot = Some(DecisionTree::fit(data, &boots[t], &tree_config, &mut trng));
            }
        } else {
            let chunks: Vec<Vec<usize>> = (0..threads)
                .map(|w| (w..config.n_trees).step_by(threads).collect())
                .collect();
            crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk in &chunks {
                    let boots = &boots;
                    let seeds = &seeds;
                    let tree_config = &tree_config;
                    handles.push(scope.spawn(move |_| {
                        chunk
                            .iter()
                            .map(|&t| {
                                let mut trng = StdRng::seed_from_u64(seeds[t]);
                                (
                                    t,
                                    DecisionTree::fit(data, &boots[t], tree_config, &mut trng),
                                )
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                for h in handles {
                    for (t, tree) in h.join().expect("tree trainer panicked") {
                        trees[t] = Some(tree);
                    }
                }
            })
            .expect("training scope panicked");
        }
        let trees: Vec<DecisionTree> = trees.into_iter().map(|t| t.expect("all trained")).collect();

        // Out-of-bag error: vote each row only with trees that never saw it.
        let mut oob_votes = vec![vec![0.0f64; data.n_classes()]; n];
        let mut in_bag = vec![false; n];
        for (t, tree) in trees.iter().enumerate() {
            in_bag.iter_mut().for_each(|b| *b = false);
            for &i in &boots[t] {
                in_bag[i] = true;
            }
            for (i, votes) in oob_votes.iter_mut().enumerate() {
                if !in_bag[i] {
                    for (c, p) in tree.predict_proba(data.row(i)).iter().enumerate() {
                        votes[c] += p;
                    }
                }
            }
        }
        let mut oob_wrong = 0usize;
        let mut oob_total = 0usize;
        for (i, votes) in oob_votes.iter().enumerate() {
            if votes.iter().any(|&v| v > 0.0) {
                oob_total += 1;
                if argmax(votes) != data.label(i) {
                    oob_wrong += 1;
                }
            }
        }
        let oob_error = if oob_total > 0 {
            oob_wrong as f64 / oob_total as f64
        } else {
            f64::NAN
        };

        // Aggregate and normalise importances.
        let mut importances = vec![0.0f64; d];
        for tree in &trees {
            for (i, &v) in tree.importances().iter().enumerate() {
                importances[i] += v;
            }
        }
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            importances.iter_mut().for_each(|v| *v /= total);
        }

        RandomForest {
            trees,
            n_classes: data.n_classes(),
            oob_error,
            importances,
        }
    }

    /// Averaged class probabilities for one row.
    ///
    /// Allocates a fresh `Vec` per call — fine for training-time and
    /// evaluation use, but on hot paths prefer
    /// [`RandomForest::predict_proba_into`] or the flat
    /// [`crate::CompiledForest`], which are allocation-free.
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut probs = vec![0.0f64; self.n_classes];
        self.predict_proba_into(row, &mut probs);
        probs
    }

    /// Averaged class probabilities for one row, written into `out` —
    /// the allocation-free arena-walker path. Results are identical to
    /// [`RandomForest::predict_proba`].
    ///
    /// # Panics
    /// Panics if `out.len() != n_classes`.
    pub fn predict_proba_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.n_classes, "probability buffer mismatch");
        out.fill(0.0);
        for tree in &self.trees {
            for (o, p) in out.iter_mut().zip(tree.predict_proba(row)) {
                *o += p;
            }
        }
        let n = self.trees.len() as f64;
        out.iter_mut().for_each(|p| *p /= n);
    }

    /// Majority-vote class for one row.
    ///
    /// Allocates per call (see [`RandomForest::predict_proba`]); hot
    /// paths should compile the forest and use
    /// [`crate::CompiledForest::predict_into`].
    pub fn predict(&self, row: &[f64]) -> usize {
        argmax(&self.predict_proba(row))
    }

    /// Lowers this forest into its flat struct-of-arrays inference form.
    pub fn compile(&self) -> crate::CompiledForest {
        crate::CompiledForest::compile(self)
    }

    /// The trained trees, for lowering.
    pub(crate) fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Out-of-bag error estimate from training.
    pub fn oob_error(&self) -> f64 {
        self.oob_error
    }

    /// Normalised feature importances.
    pub fn importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The single most representative tree — the one whose lone
    /// predictions agree most often with the full forest over `data`.
    /// This is the compact model the PME ships to YourAdValue clients
    /// ("apply the model M in the form of a decision tree", §3.2).
    pub fn representative_tree(&self, data: &Dataset) -> &DecisionTree {
        let mut best = (0usize, -1.0f64);
        for (t, tree) in self.trees.iter().enumerate() {
            let agree = (0..data.len())
                .filter(|&i| tree.predict(data.row(i)) == self.predict(data.row(i)))
                .count() as f64;
            if agree > best.1 {
                best = (t, agree);
            }
        }
        &self.trees[best.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic 3-class dataset with two informative features and one
    /// pure-noise feature.
    fn dataset(n: usize) -> Dataset {
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let x = (i % 30) as f64 / 30.0;
            let y = ((i * 7) % 30) as f64 / 30.0;
            let noise = ((i * 13) % 17) as f64;
            let label = if x < 0.33 {
                0
            } else if y < 0.5 {
                1
            } else {
                2
            };
            rows.push(vec![x, y, noise]);
            labels.push(label);
        }
        Dataset::new(
            rows,
            labels,
            3,
            vec!["x".into(), "y".into(), "noise".into()],
        )
    }

    #[test]
    fn learns_and_reports_low_oob() {
        let data = dataset(600);
        let forest = RandomForest::fit(&data, &RandomForestConfig::default());
        let correct = (0..data.len())
            .filter(|&i| forest.predict(data.row(i)) == data.label(i))
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.97);
        assert!(forest.oob_error() < 0.1, "oob {}", forest.oob_error());
    }

    #[test]
    fn importances_rank_signal_over_noise() {
        let data = dataset(600);
        let forest = RandomForest::fit(&data, &RandomForestConfig::default());
        let imp = forest.importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[2] && imp[1] > imp[2], "importances {imp:?}");
    }

    #[test]
    fn parallel_equals_serial() {
        let data = dataset(300);
        let mut cfg = RandomForestConfig {
            n_trees: 9,
            ..RandomForestConfig::default()
        };
        cfg.threads = 1;
        let serial = RandomForest::fit(&data, &cfg);
        cfg.threads = 4;
        let parallel = RandomForest::fit(&data, &cfg);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = dataset(300);
        let cfg = RandomForestConfig::default();
        let a = RandomForest::fit(&data, &cfg);
        let b = RandomForest::fit(&data, &cfg);
        assert_eq!(a, b);
        let c = RandomForest::fit(&data, &RandomForestConfig { seed: 99, ..cfg });
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let data = dataset(300);
        let forest = RandomForest::fit(&data, &RandomForestConfig::default());
        for i in (0..data.len()).step_by(37) {
            let p = forest.predict_proba(data.row(i));
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn representative_tree_agrees_with_forest() {
        let data = dataset(400);
        let forest = RandomForest::fit(&data, &RandomForestConfig::default());
        let tree = forest.representative_tree(&data);
        let agree = (0..data.len())
            .filter(|&i| tree.predict(data.row(i)) == forest.predict(data.row(i)))
            .count();
        assert!(
            agree as f64 / data.len() as f64 > 0.9,
            "agreement {agree}/{}",
            data.len()
        );
    }

    #[test]
    fn serde_round_trip() {
        let data = dataset(200);
        let cfg = RandomForestConfig {
            n_trees: 5,
            ..RandomForestConfig::default()
        };
        let forest = RandomForest::fit(&data, &cfg);
        let json = serde_json::to_string(&forest).unwrap();
        let back: RandomForest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, forest);
    }
}
