//! Compiled forest inference: a flat lowering of a trained
//! [`RandomForest`] (or single [`DecisionTree`]).
//!
//! The arena walker in [`crate::tree`] pointer-chases enum-tagged nodes
//! and [`RandomForest::predict_proba`] allocates a fresh `Vec<f64>` per
//! call — fine for training-time use, too slow for the client hot path
//! where every encrypted impression triggers a prediction inside an RTB
//! ~100 ms budget. [`CompiledForest`] lowers every tree of a forest into
//! flat arrays:
//!
//! ```text
//!   nodes:      one contiguous node table, 16 bytes per node:
//!                 f64 threshold — `row[feature] <= threshold` goes left
//!                 u32 left      — left-child index, children adjacent
//!                                 (right = left + 1), high bit = the
//!                                 internal/leaf discriminant
//!                 u16 feature   — column tested by an internal node
//!   leaf_probs: shared arena — `n_classes` slots per leaf
//!   roots:      root node index of each tree
//! ```
//!
//! A leaf has no children, so its `left` slot is free to carry the
//! discriminant bit plus its index into the shared probability arena —
//! no tag byte, no separate leaf table, no per-node enum dispatch. One
//! packed record per node keeps each level of a walk to a single
//! bounds-checked load from a single cache line; tree walks on a scalar
//! core are retire-throughput-bound, so every spared µop per level is
//! directly visible in ns/row. Trees are laid out breadth-first so the
//! most-travelled top levels of each tree sit in the same cache lines,
//! and sibling subtrees stay adjacent.
//!
//! Predictions are **bit-identical** to the arena walker: probabilities
//! accumulate over trees in the same order with the same float ops
//! (pinned by the `equivalence` integration tests).

use crate::forest::RandomForest;
use crate::tree::{argmax, DecisionTree, Node};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// High bit of a `left` entry: set ⇒ the node is a leaf.
const LEAF_BIT: u32 = 1 << 31;

/// Second-highest bit of a leaf's `left` entry: set ⇒ the leaf is
/// *pure* (a single nonzero class probability). A pure leaf carries its
/// entire payload in the node itself — the class in `feature`, the
/// probability in `threshold` — and has no arena entry, so accumulating
/// it is one addition instead of a `n_classes`-wide loop plus an arena
/// gather. Skipping the zero entries is bit-exact: vote cells only ever
/// hold non-negative sums, and `x + 0.0` is `x` for every such `x`.
/// Greedy CART grows most leaves to purity, so this is the common case.
/// For impure leaves the low 30 bits index the probability arena.
const PURE_BIT: u32 = 1 << 30;

/// Rows swept together by [`CompiledForest::predict_batch`]: small enough
/// that the block's rows, its vote accumulator and the row-index buffers
/// co-reside in cache, large enough to amortise the per-node overhead of
/// the partition sweep over many rows at each node.
const BLOCK: usize = 32768;

/// Width of the fixed row buffer the fast walk reads through. Feature
/// indices are masked to `ROW_BUF - 1`, which lets the compiler drop the
/// per-level row bounds check entirely (every compiled feature index is
/// `< n_features ≤ ROW_BUF`, so the mask is the identity on valid data).
/// 16 covers the PME's core feature set (12–13 columns) with room.
const ROW_BUF: usize = 16;

/// One node of the flat table. 16 bytes, four to a cache line, ordered
/// so `threshold` sits at offset 0 (aligned) and the two small fields
/// pack behind it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PackedNode {
    /// Split threshold; `row[feature] <= threshold` goes left. 0.0 for
    /// leaves.
    threshold: f64,
    /// Left-child node index, or `LEAF_BIT | leaf_slot` for leaves.
    left: u32,
    /// Feature column tested (0 for leaves).
    feature: u16,
}

/// A [`RandomForest`] lowered to flat form for fast, allocation-free
/// inference. Build one with [`CompiledForest::compile`] (whole forest)
/// or [`CompiledForest::from_tree`] (the single-tree client artifact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledForest {
    /// The packed node table, all trees appended breadth-first.
    nodes: Vec<PackedNode>,
    /// Root node index of each tree.
    roots: Vec<u32>,
    /// Shared probability arena for impure leaves, `n_classes` slots
    /// per entry (pure leaves live entirely in their node).
    leaf_probs: Vec<f64>,
    /// Total leaves across all trees (pure and impure).
    n_leaves: usize,
    /// Classes per prediction.
    n_classes: usize,
    /// Feature columns expected per row.
    n_features: usize,
}

impl CompiledForest {
    /// Lowers a trained forest. O(total nodes); the result is immutable.
    pub fn compile(forest: &RandomForest) -> CompiledForest {
        Self::from_trees(forest.trees())
    }

    /// Lowers a single tree (a forest of one) — the form the client
    /// model ships.
    pub fn from_tree(tree: &DecisionTree) -> CompiledForest {
        Self::from_trees(std::slice::from_ref(tree))
    }

    /// Lowers any non-empty tree ensemble sharing a feature/class space.
    ///
    /// # Panics
    /// Panics on an empty slice, on disagreeing shapes, or if the
    /// ensemble exceeds the u16 feature / 31-bit node index budget.
    pub fn from_trees(trees: &[DecisionTree]) -> CompiledForest {
        assert!(!trees.is_empty(), "cannot compile an empty ensemble");
        let n_classes = trees[0].n_classes();
        let n_features = trees[0].n_features();
        assert!(n_features <= u16::MAX as usize, "feature index exceeds u16");
        let total_nodes: usize = trees.iter().map(|t| t.n_nodes()).sum();
        assert!(
            total_nodes < PURE_BIT as usize,
            "ensemble exceeds the 30-bit node budget"
        );

        let mut out = CompiledForest {
            nodes: Vec::with_capacity(total_nodes),
            roots: Vec::with_capacity(trees.len()),
            leaf_probs: Vec::new(),
            n_leaves: 0,
            n_classes,
            n_features,
        };
        for tree in trees {
            assert_eq!(tree.n_classes(), n_classes, "class spaces disagree");
            assert_eq!(tree.n_features(), n_features, "feature spaces disagree");
            let root = out.lower_tree(tree);
            out.roots.push(root);
        }
        assert!(
            out.leaf_probs.len() / n_classes < PURE_BIT as usize,
            "leaf arena exceeds the 30-bit slot budget"
        );
        out
    }

    /// Lays one arena tree out breadth-first, appending to the node
    /// table, and returns its root's flat index.
    fn lower_tree(&mut self, tree: &DecisionTree) -> u32 {
        let arena = tree.arena();
        let root = self.alloc_node();
        // (arena index, flat index) pairs pending lowering, FIFO = BFS.
        let mut queue: VecDeque<(usize, u32)> = VecDeque::new();
        queue.push_back((0, root));
        while let Some((arena_idx, flat)) = queue.pop_front() {
            match &arena[arena_idx] {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    // Children take two adjacent slots so only the left
                    // index needs storing.
                    let l = self.alloc_node();
                    let r = self.alloc_node();
                    debug_assert_eq!(r, l + 1);
                    self.nodes[flat as usize] = PackedNode {
                        threshold: *threshold,
                        left: l,
                        feature: *feature as u16,
                    };
                    queue.push_back((*left, l));
                    queue.push_back((*right, r));
                }
                Node::Leaf { probs } => {
                    self.n_leaves += 1;
                    let mut nonzero = probs.iter().enumerate().filter(|(_, p)| **p != 0.0);
                    match (nonzero.next(), nonzero.next()) {
                        (Some((class, &p)), None) if class <= u16::MAX as usize => {
                            self.nodes[flat as usize] = PackedNode {
                                threshold: p,
                                left: LEAF_BIT | PURE_BIT,
                                feature: class as u16,
                            };
                        }
                        _ => {
                            let slot = (self.leaf_probs.len() / self.n_classes) as u32;
                            self.leaf_probs.extend_from_slice(probs);
                            self.nodes[flat as usize].left = LEAF_BIT | slot;
                        }
                    }
                }
            }
        }
        root
    }

    fn alloc_node(&mut self) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(PackedNode {
            threshold: 0.0,
            left: 0,
            feature: 0,
        });
        idx
    }

    /// Walks one tree for one row; returns the leaf node reached.
    #[inline]
    fn walk(&self, mut idx: usize, row: &[f64]) -> PackedNode {
        loop {
            let node = self.nodes[idx];
            if node.left & LEAF_BIT != 0 {
                return node;
            }
            let go_left = row[node.feature as usize] <= node.threshold;
            idx = node.left as usize + usize::from(!go_left);
        }
    }

    /// [`CompiledForest::walk`] through a fixed-width row buffer. The
    /// masked index cannot exceed `ROW_BUF - 1`, so the compiler elides
    /// the row bounds check; on valid compiled data the mask never
    /// changes the index (`feature < n_features ≤ ROW_BUF`).
    #[inline]
    fn walk_buf(&self, mut idx: usize, row: &[f64; ROW_BUF]) -> PackedNode {
        loop {
            let node = self.nodes[idx];
            if node.left & LEAF_BIT != 0 {
                return node;
            }
            let go_left = row[node.feature as usize & (ROW_BUF - 1)] <= node.threshold;
            idx = node.left as usize + usize::from(!go_left);
        }
    }

    /// Accumulates the probabilities of the leaf node `node` into
    /// `votes`.
    #[inline]
    fn accumulate(&self, node: PackedNode, votes: &mut [f64]) {
        if node.left & PURE_BIT != 0 {
            votes[node.feature as usize] += node.threshold;
            return;
        }
        let k = self.n_classes;
        let slot = (node.left & !LEAF_BIT) as usize;
        let probs = &self.leaf_probs[slot * k..(slot + 1) * k];
        for (o, &p) in votes.iter_mut().zip(probs) {
            *o += p;
        }
    }

    /// Averaged class probabilities for one row, written into `out` —
    /// the zero-allocation hot path. Bit-identical to
    /// [`RandomForest::predict_proba`].
    ///
    /// # Panics
    /// Panics if `row` or `out` have the wrong length.
    pub fn predict_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(row.len(), self.n_features, "row width mismatch");
        assert_eq!(out.len(), self.n_classes, "probability buffer mismatch");
        out.fill(0.0);
        if self.n_features <= ROW_BUF {
            let mut buf = [0.0f64; ROW_BUF];
            buf[..row.len()].copy_from_slice(row);
            for &root in &self.roots {
                let leaf = self.walk_buf(root as usize, &buf);
                self.accumulate(leaf, out);
            }
        } else {
            for &root in &self.roots {
                let leaf = self.walk(root as usize, row);
                self.accumulate(leaf, out);
            }
        }
        let n = self.roots.len() as f64;
        for o in out.iter_mut() {
            *o /= n;
        }
    }

    /// Averaged class probabilities for one row (allocating convenience;
    /// prefer [`CompiledForest::predict_into`] on hot paths).
    pub fn predict_proba(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_classes];
        self.predict_into(row, &mut out);
        out
    }

    /// Majority-vote class for one row (allocates a probability buffer;
    /// prefer [`CompiledForest::predict_with`] on hot paths).
    pub fn predict(&self, row: &[f64]) -> usize {
        argmax(&self.predict_proba(row))
    }

    /// Majority-vote class for one row, using the caller's probability
    /// buffer — the zero-allocation form of [`CompiledForest::predict`].
    /// On return `probs` holds the averaged class probabilities.
    ///
    /// # Panics
    /// Panics if `row` or `probs` have the wrong length.
    pub fn predict_with(&self, row: &[f64], probs: &mut [f64]) -> usize {
        self.predict_into(row, probs);
        argmax(probs)
    }

    /// Majority-vote classes for a flat row-major batch (`rows.len()`
    /// must be a multiple of `n_features`). Results are bit-identical to
    /// calling [`CompiledForest::predict`] per row.
    ///
    /// Rows are processed in cache-sized blocks of [`BLOCK`]. Each block
    /// is first transposed to column-major, then each tree is traversed
    /// **level-synchronously**: instead of walking rows down the tree one
    /// at a time (a chain of dependent node loads ending in an
    /// unpredictable loop-exit branch, per row, per tree), the whole
    /// block's row-index set is *partitioned* down the tree. At each
    /// split node the feature column and threshold are loaded once and
    /// the node's surviving rows are split with [`yav_simd::partition`]'s
    /// order-preserving compaction — 8 rows per step under AVX2
    /// (vectorized compare + `vpermd` compaction), a branchless scalar
    /// sweep elsewhere, bit-identical either way — so the inner loop has
    /// no dependent loads and no data-driven branches and pipelines at
    /// full width. Each row still receives each tree's leaf contribution
    /// exactly once, in root order, preserving bit-identity.
    ///
    /// # Panics
    /// Panics if `n_features` disagrees with the compiled shape or does
    /// not divide `rows.len()`.
    pub fn predict_batch(&self, rows: &[f64], n_features: usize) -> Vec<usize> {
        assert_eq!(n_features, self.n_features, "row width mismatch");
        assert_eq!(rows.len() % n_features, 0, "ragged batch");
        let n_rows = rows.len() / n_features;
        let k = self.n_classes;
        let mut out = Vec::with_capacity(n_rows);
        // Scratch is sized to the largest block this call will actually
        // see, not to BLOCK: small batches (the monitor stages a few
        // hundred encrypted rows per observe_batch chunk) must not pay
        // for allocating and zeroing full-block buffers.
        let cap = n_rows.min(BLOCK);
        let mut votes = vec![0.0f64; cap * k];
        let mut cols = vec![0.0f64; cap * n_features];
        // Row-index buffers for the partition: a segment plus the two
        // destinations its rows split into. The three rotate roles down
        // the recursion (a consumed parent segment becomes free space
        // for its grandchildren), so three block-sized buffers suffice
        // for any tree shape.
        let mut seg = vec![0u32; cap];
        let mut buf_a = vec![0u32; cap];
        let mut buf_b = vec![0u32; cap];
        let n_trees = self.roots.len() as f64;
        for block in rows.chunks(BLOCK * n_features) {
            let block_rows = block.len() / n_features;
            let votes = &mut votes[..block_rows * k];
            votes.fill(0.0);
            // Transpose once per block: the partition's inner loop then
            // indexes one contiguous feature column per node instead of
            // striding across row records.
            let cols = &mut cols[..block_rows * n_features];
            for (r, row) in block.chunks_exact(n_features).enumerate() {
                for (f, &v) in row.iter().enumerate() {
                    cols[f * block_rows + r] = v;
                }
            }
            for &root in &self.roots {
                // The root level partitions the implicit identity row
                // set 0..block_rows directly — no per-tree index-buffer
                // initialisation pass.
                let node = self.nodes[root as usize];
                if node.left & LEAF_BIT != 0 {
                    for v in votes.chunks_exact_mut(k) {
                        self.accumulate(node, v);
                    }
                    continue;
                }
                let col = &cols
                    [node.feature as usize * block_rows..(node.feature as usize + 1) * block_rows];
                let buf_a = &mut buf_a[..block_rows];
                let buf_b = &mut buf_b[..block_rows];
                let (lo, ro) =
                    yav_simd::partition::partition_iota(col, node.threshold, buf_a, buf_b);
                let (left_seg, a_rest) = buf_a.split_at_mut(lo);
                let (right_seg, b_rest) = buf_b.split_at_mut(ro);
                let (seg_l, seg_r) = seg[..block_rows].split_at_mut(lo);
                self.partition(
                    node.left as usize,
                    left_seg,
                    seg_l,
                    b_rest,
                    cols,
                    block_rows,
                    votes,
                );
                self.partition(
                    node.left as usize + 1,
                    right_seg,
                    seg_r,
                    a_rest,
                    cols,
                    block_rows,
                    votes,
                );
            }
            for votes in votes.chunks_exact_mut(k) {
                // Same final division as the per-row walker so ties (and
                // therefore argmax) resolve identically.
                for v in votes.iter_mut() {
                    *v /= n_trees;
                }
                out.push(argmax(votes));
            }
        }
        out
    }

    /// Level-synchronous descent for [`CompiledForest::predict_batch`]:
    /// routes the row indices in `seg` through the subtree at `idx`,
    /// accumulating each row's leaf probabilities into `votes`.
    ///
    /// `buf_a` and `buf_b` are free buffers at least as long as `seg`; a
    /// split writes its left-goers to `buf_a` and right-goers to `buf_b`
    /// via [`yav_simd::partition::partition_seg`] (order-preserving
    /// forward compaction — gather + mask + `vpermd` under AVX2, the
    /// branchless scalar sweep elsewhere). The parent's `seg` is dead
    /// after the sweep, so its two
    /// halves become the free buffers of the recursion, alongside the
    /// unused tails of `buf_a`/`buf_b` — a three-way rotation that needs
    /// no allocation at any depth.
    #[allow(clippy::too_many_arguments)]
    fn partition(
        &self,
        idx: usize,
        seg: &mut [u32],
        buf_a: &mut [u32],
        buf_b: &mut [u32],
        cols: &[f64],
        block_rows: usize,
        votes: &mut [f64],
    ) {
        if seg.is_empty() {
            return;
        }
        let node = self.nodes[idx];
        if node.left & LEAF_BIT != 0 {
            let k = self.n_classes;
            if node.left & PURE_BIT != 0 {
                // Pure leaf: one addition per row, no arena gather.
                let class = node.feature as usize;
                let p = node.threshold;
                for &r in seg.iter() {
                    votes[r as usize * k + class] += p;
                }
                return;
            }
            let slot = (node.left & !LEAF_BIT) as usize;
            let probs = &self.leaf_probs[slot * k..(slot + 1) * k];
            for &r in seg.iter() {
                let r = r as usize;
                let v = &mut votes[r * k..(r + 1) * k];
                for (o, &p) in v.iter_mut().zip(probs) {
                    *o += p;
                }
            }
            return;
        }
        let col =
            &cols[node.feature as usize * block_rows..(node.feature as usize + 1) * block_rows];
        let (lo, ro) = yav_simd::partition::partition_seg(col, node.threshold, seg, buf_a, buf_b);
        debug_assert_eq!(lo + ro, seg.len());
        let (left_seg, a_rest) = buf_a.split_at_mut(lo);
        let (right_seg, b_rest) = buf_b.split_at_mut(ro);
        let (seg_l, seg_r) = seg.split_at_mut(lo);
        self.partition(
            node.left as usize,
            left_seg,
            seg_l,
            b_rest,
            cols,
            block_rows,
            votes,
        );
        self.partition(
            node.left as usize + 1,
            right_seg,
            seg_r,
            a_rest,
            cols,
            block_rows,
            votes,
        );
    }

    /// Number of trees compiled in.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Classes per prediction.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature columns expected per row.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Total nodes across all trees (size of the flat table).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total leaves across all trees.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }
}

impl From<&RandomForest> for CompiledForest {
    fn from(forest: &RandomForest) -> CompiledForest {
        CompiledForest::compile(forest)
    }
}

impl From<&DecisionTree> for CompiledForest {
    fn from(tree: &DecisionTree) -> CompiledForest {
        CompiledForest::from_tree(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::RandomForestConfig;
    use crate::tree::TreeConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset(n: usize, n_classes: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    (i % 29) as f64,
                    ((i * 7) % 31) as f64 / 3.0,
                    ((i / 5) % 11) as f64,
                ]
            })
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| (i * 13 + 5) % n_classes).collect();
        Dataset::new(
            rows,
            labels,
            n_classes,
            vec!["a".into(), "b".into(), "c".into()],
        )
    }

    #[test]
    fn single_leaf_tree_compiles() {
        let data = Dataset::new(vec![vec![1.0], vec![2.0]], vec![1, 1], 2, vec!["x".into()]);
        let idx = vec![0, 1];
        let mut rng = StdRng::seed_from_u64(0);
        let tree = DecisionTree::fit(&data, &idx, &TreeConfig::default(), &mut rng);
        let compiled = CompiledForest::from_tree(&tree);
        assert_eq!(compiled.n_nodes(), 1);
        assert_eq!(compiled.n_leaves(), 1);
        assert_eq!(compiled.predict(&[9.0]), 1);
        assert_eq!(compiled.predict_proba(&[9.0]), vec![0.0, 1.0]);
    }

    #[test]
    fn compiled_matches_arena_walker() {
        let data = dataset(400, 3);
        let forest = RandomForest::fit(
            &data,
            &RandomForestConfig {
                n_trees: 7,
                seed: 3,
                ..RandomForestConfig::default()
            },
        );
        let compiled = CompiledForest::compile(&forest);
        assert_eq!(compiled.n_trees(), 7);
        let mut buf = vec![0.0; 3];
        for i in 0..data.len() {
            let row = data.row(i);
            compiled.predict_into(row, &mut buf);
            assert_eq!(buf, forest.predict_proba(row), "row {i}");
            assert_eq!(compiled.predict(row), forest.predict(row), "row {i}");
        }
    }

    #[test]
    fn wide_rows_take_the_general_walk() {
        // More features than the fixed row buffer: the unmasked fallback
        // must agree with the arena walker too.
        let n_features = ROW_BUF + 5;
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                (0..n_features)
                    .map(|f| ((i * (f + 3)) % 23) as f64)
                    .collect()
            })
            .collect();
        let labels: Vec<usize> = (0..300).map(|i| (i * 7 + 1) % 3).collect();
        let names = (0..n_features).map(|f| format!("f{f}")).collect();
        let data = Dataset::new(rows, labels, 3, names);
        let forest = RandomForest::fit(
            &data,
            &RandomForestConfig {
                n_trees: 4,
                seed: 21,
                ..RandomForestConfig::default()
            },
        );
        let compiled = CompiledForest::compile(&forest);
        let flat: Vec<f64> = (0..data.len()).flat_map(|i| data.row(i).to_vec()).collect();
        let batch = compiled.predict_batch(&flat, n_features);
        for (i, &class) in batch.iter().enumerate() {
            let row = data.row(i);
            assert_eq!(
                compiled.predict_proba(row),
                forest.predict_proba(row),
                "row {i}"
            );
            assert_eq!(class, forest.predict(row), "row {i}");
        }
    }

    #[test]
    fn batch_matches_per_row() {
        let data = dataset(333, 4); // not a multiple of BLOCK: ragged tail
        let forest = RandomForest::fit(
            &data,
            &RandomForestConfig {
                n_trees: 5,
                seed: 11,
                ..RandomForestConfig::default()
            },
        );
        let compiled = CompiledForest::compile(&forest);
        let flat: Vec<f64> = (0..data.len()).flat_map(|i| data.row(i).to_vec()).collect();
        let batch = compiled.predict_batch(&flat, data.n_features());
        assert_eq!(batch.len(), data.len());
        for (i, &class) in batch.iter().enumerate() {
            assert_eq!(class, forest.predict(data.row(i)), "row {i}");
        }
    }

    #[test]
    fn serde_round_trip_preserves_predictions() {
        let data = dataset(150, 2);
        let forest = RandomForest::fit(
            &data,
            &RandomForestConfig {
                n_trees: 3,
                seed: 9,
                ..RandomForestConfig::default()
            },
        );
        let compiled = CompiledForest::compile(&forest);
        let json = serde_json::to_string(&compiled).unwrap();
        let back: CompiledForest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, compiled);
        assert_eq!(back.predict(data.row(7)), compiled.predict(data.row(7)));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_row_width_panics() {
        let data = dataset(60, 2);
        let forest = RandomForest::fit(
            &data,
            &RandomForestConfig {
                n_trees: 2,
                ..RandomForestConfig::default()
            },
        );
        CompiledForest::compile(&forest).predict(&[1.0]);
    }
}
