//! Price-class construction (§5.1).
//!
//! The paper log-transforms charge prices and clusters them into four
//! "well balanced" classes with an unsupervised equal-interval model whose
//! splits are chosen by a leave-one-out entropy estimate. We reproduce
//! that as: log-transform → search candidate cut vectors (quantile grid)
//! → keep the cuts maximising the leave-one-out (Miller–Madow-corrected)
//! Shannon entropy of the induced class distribution. Maximal entropy ⇔
//! balanced occupancy, which is the property the classifier needs.

use serde::{Deserialize, Serialize};

/// A fitted price discretiser: `k − 1` ascending cut points in log-space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discretizer {
    /// Ascending cut points (natural-log CPM).
    cuts: Vec<f64>,
}

impl Discretizer {
    /// Fits `k` classes over positive price values (CPM). Non-positive and
    /// non-finite values are ignored during fitting.
    ///
    /// # Panics
    /// Panics if `k < 2` or fewer than `k` finite positive values remain.
    pub fn fit(prices_cpm: &[f64], k: usize) -> Discretizer {
        assert!(k >= 2, "need at least two classes");
        let mut logs: Vec<f64> = prices_cpm
            .iter()
            .copied()
            .filter(|p| p.is_finite() && *p > 0.0)
            .map(|p| p.ln())
            .collect();
        assert!(logs.len() >= k, "need at least k positive prices");
        logs.sort_by(|a, b| a.total_cmp(b));

        // Candidate cut positions: a fine quantile grid. We search the
        // (k−1)-subset greedily — start from equal-frequency quantiles and
        // hill-climb each cut over the grid while the LOO entropy improves.
        let grid: Vec<f64> = (1..100)
            .map(|i| quantile(&logs, i as f64 / 100.0))
            .collect();

        let mut cuts: Vec<f64> = (1..k)
            .map(|i| quantile(&logs, i as f64 / k as f64))
            .collect();
        let mut best = loo_entropy(&logs, &cuts);
        let mut improved = true;
        while improved {
            improved = false;
            for ci in 0..cuts.len() {
                for &cand in &grid {
                    // Keep cuts strictly ordered.
                    let lo = if ci == 0 {
                        f64::NEG_INFINITY
                    } else {
                        cuts[ci - 1]
                    };
                    let hi = if ci + 1 == cuts.len() {
                        f64::INFINITY
                    } else {
                        cuts[ci + 1]
                    };
                    if cand <= lo || cand >= hi || cand == cuts[ci] {
                        continue;
                    }
                    let old = cuts[ci];
                    cuts[ci] = cand;
                    let e = loo_entropy(&logs, &cuts);
                    if e > best + 1e-12 {
                        best = e;
                        improved = true;
                    } else {
                        cuts[ci] = old;
                    }
                }
            }
        }
        Discretizer { cuts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.cuts.len() + 1
    }

    /// The class of a price (CPM). Non-positive prices land in class 0.
    pub fn assign(&self, price_cpm: f64) -> usize {
        // NaN and non-positive prices land in class 0 (note: a plain
        // `<= 0.0` would misroute NaN).
        if price_cpm.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return 0;
        }
        let lp = price_cpm.ln();
        self.cuts.partition_point(|&c| c <= lp)
    }

    /// Representative (geometric-mid) price of a class, for turning a
    /// predicted class back into a CPM estimate. Edge classes use the
    /// adjacent cut shifted by half the mean inner width.
    pub fn class_price(&self, class: usize) -> f64 {
        let k = self.n_classes();
        assert!(class < k, "class {class} out of range");
        let cuts = &self.cuts;
        let width = if cuts.len() >= 2 {
            (cuts[cuts.len() - 1] - cuts[0]) / (cuts.len() - 1) as f64
        } else {
            1.0
        };
        let log_mid = if class == 0 {
            cuts[0] - width / 2.0
        } else if class == k - 1 {
            cuts[k - 2] + width / 2.0
        } else {
            (cuts[class - 1] + cuts[class]) / 2.0
        };
        log_mid.exp()
    }

    /// The cut points (log-CPM).
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }
}

/// Interpolated quantile of a sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Leave-one-out (Miller–Madow) entropy of the class occupancy induced by
/// `cuts` over sorted log-values: plug-in Shannon entropy plus the
/// `(m−1)/2n` small-sample correction, where `m` is the number of
/// *occupied* classes. Empty classes are heavily penalised by the plug-in
/// term already (they contribute nothing while starving others).
fn loo_entropy(sorted_logs: &[f64], cuts: &[f64]) -> f64 {
    let k = cuts.len() + 1;
    let n = sorted_logs.len() as f64;
    let mut counts = vec![0usize; k];
    for &v in sorted_logs {
        counts[cuts.partition_point(|&c| c <= v)] += 1;
    }
    let occupied = counts.iter().filter(|&&c| c > 0).count();
    let mut h = 0.0;
    for &c in &counts {
        if c > 0 {
            let p = c as f64 / n;
            h -= p * p.ln();
        }
    }
    h + (occupied as f64 - 1.0) / (2.0 * n)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic, bimodal log-price sample.
    fn prices() -> Vec<f64> {
        let mut v = Vec::new();
        for i in 0..400 {
            v.push(0.1 * (1.0 + (i % 13) as f64 / 13.0)); // cheap cluster
            v.push(2.0 * (1.0 + (i % 7) as f64 / 7.0)); // dear cluster
        }
        v
    }

    #[test]
    fn classes_are_balanced() {
        let p = prices();
        let d = Discretizer::fit(&p, 4);
        assert_eq!(d.n_classes(), 4);
        let mut counts = [0usize; 4];
        for &x in &p {
            counts[d.assign(x)] += 1;
        }
        let n = p.len();
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > n / 10,
                "class {i} too thin: {c}/{n} (counts {counts:?})"
            );
        }
    }

    #[test]
    fn assignment_is_monotone() {
        let d = Discretizer::fit(&prices(), 4);
        let mut last = 0;
        for i in 1..200 {
            let x = 0.01 * 1.06f64.powi(i);
            let c = d.assign(x);
            assert!(c >= last, "class must not decrease with price");
            last = c;
        }
        assert_eq!(last, 3, "large prices reach the top class");
    }

    #[test]
    fn cuts_sorted_and_class_prices_ordered() {
        let d = Discretizer::fit(&prices(), 4);
        for w in d.cuts().windows(2) {
            assert!(w[0] < w[1]);
        }
        for c in 0..3 {
            assert!(d.class_price(c) < d.class_price(c + 1));
        }
    }

    #[test]
    fn class_price_lands_inside_class() {
        let d = Discretizer::fit(&prices(), 4);
        for c in 0..4 {
            assert_eq!(d.assign(d.class_price(c)), c, "representative of class {c}");
        }
    }

    #[test]
    fn nonpositive_prices_default_to_class_zero() {
        let d = Discretizer::fit(&prices(), 4);
        assert_eq!(d.assign(0.0), 0);
        assert_eq!(d.assign(-1.0), 0);
        assert_eq!(d.assign(f64::NAN), 0);
    }

    #[test]
    fn fit_ignores_junk() {
        let mut p = prices();
        p.push(f64::NAN);
        p.push(-5.0);
        p.push(0.0);
        let d = Discretizer::fit(&p, 4);
        assert_eq!(d.n_classes(), 4);
    }

    #[test]
    fn serde_round_trip() {
        let d = Discretizer::fit(&prices(), 4);
        let json = serde_json::to_string(&d).unwrap();
        let back: Discretizer = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn k1_rejected() {
        Discretizer::fit(&[1.0, 2.0, 3.0], 1);
    }

    #[test]
    fn more_classes_supported() {
        // The paper tried 5–10 classes before settling on 4.
        for k in 5..=10 {
            let d = Discretizer::fit(&prices(), k);
            assert_eq!(d.n_classes(), k);
        }
    }
}
