//! Feature matrices.

use serde::{Deserialize, Serialize};

/// A row-major feature matrix with integer class labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Flattened features, `rows × n_features`.
    data: Vec<f64>,
    /// Class label per row.
    labels: Vec<usize>,
    /// Number of columns.
    n_features: usize,
    /// Number of distinct classes (labels are `0..n_classes`).
    n_classes: usize,
    /// Column names (for importances and reports).
    feature_names: Vec<String>,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    /// Panics if row lengths disagree, labels and rows differ in count, or
    /// a label is `>= n_classes`.
    pub fn new(
        rows: Vec<Vec<f64>>,
        labels: Vec<usize>,
        n_classes: usize,
        feature_names: Vec<String>,
    ) -> Dataset {
        assert_eq!(rows.len(), labels.len(), "one label per row");
        let n_features = rows.first().map(|r| r.len()).unwrap_or(feature_names.len());
        assert_eq!(feature_names.len(), n_features, "one name per column");
        let mut data = Vec::with_capacity(rows.len() * n_features);
        for r in &rows {
            assert_eq!(r.len(), n_features, "ragged rows");
            data.extend_from_slice(r);
        }
        for &l in &labels {
            assert!(
                l < n_classes,
                "label {l} out of range (n_classes {n_classes})"
            );
        }
        Dataset {
            data,
            labels,
            n_features,
            n_classes,
            feature_names,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Column names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// One row's features.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_features..(i + 1) * self.n_features]
    }

    /// One row's label.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// A new dataset containing the given row indices (in order).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut data = Vec::with_capacity(indices.len() * self.n_features);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.row(i));
            labels.push(self.labels[i]);
        }
        Dataset {
            data,
            labels,
            n_features: self.n_features,
            n_classes: self.n_classes,
            feature_names: self.feature_names.clone(),
        }
    }

    /// A new dataset restricted to the given columns.
    pub fn select_features(&self, cols: &[usize]) -> Dataset {
        let mut data = Vec::with_capacity(self.len() * cols.len());
        for i in 0..self.len() {
            let row = self.row(i);
            for &c in cols {
                data.push(row[c]);
            }
        }
        Dataset {
            data,
            labels: self.labels.clone(),
            n_features: cols.len(),
            n_classes: self.n_classes,
            feature_names: cols
                .iter()
                .map(|&c| self.feature_names[c].clone())
                .collect(),
        }
    }

    /// Per-class row counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::new(
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            vec![0, 1, 0],
            2,
            vec!["a".into(), "b".into()],
        )
    }

    #[test]
    fn accessors() {
        let d = ds();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert_eq!(d.label(2), 0);
        assert_eq!(d.class_counts(), vec![2, 1]);
    }

    #[test]
    fn select_rows_and_features() {
        let d = ds();
        let sub = d.select(&[2, 0]);
        assert_eq!(sub.row(0), &[5.0, 6.0]);
        assert_eq!(sub.labels(), &[0, 0]);
        let cols = d.select_features(&[1]);
        assert_eq!(cols.n_features(), 1);
        assert_eq!(cols.row(1), &[4.0]);
        assert_eq!(cols.feature_names(), &["b".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rejected() {
        Dataset::new(
            vec![vec![1.0], vec![1.0, 2.0]],
            vec![0, 0],
            1,
            vec!["a".into()],
        );
    }

    #[test]
    #[should_panic(expected = "label 3 out of range")]
    fn label_range_checked() {
        Dataset::new(vec![vec![1.0]], vec![3], 2, vec!["a".into()]);
    }
}
