//! CART decision trees.
//!
//! The model YourAdValue ships to clients is "a decision tree" (§3.2), so
//! trees here are plain serde-serialisable data. Training is exact CART:
//! at each node, candidate features (optionally a random subset — that is
//! the random-forest hook) are scanned over sorted value midpoints for the
//! split with the best Gini-impurity decrease.
//!
//! Training presorts every feature column **once per tree** and keeps the
//! per-feature orderings partitioned alongside the samples, so no node
//! ever re-sorts a column: `best_split` sweeps each presorted slice with
//! running class counts in O(n·d) instead of O(n·d·log n). The fitted
//! trees are bit-identical to the naive re-sorting implementation (kept
//! under `#[cfg(test)]` as `reference` and pinned by equivalence tests):
//! split gains are computed from the same integer class counts with the
//! same float operations, and tie order within equal feature values can
//! never change a count at a distinct-value boundary.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples a node needs to be split further.
    pub min_samples_split: usize,
    /// Minimum samples each child must keep.
    pub min_samples_leaf: usize,
    /// Features tried per split; `None` means all (plain CART), `Some(m)`
    /// samples `m` without replacement (random-forest mode).
    pub features_per_split: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> TreeConfig {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 2,
            features_per_split: None,
        }
    }
}

/// Tree nodes. Stored as an arena (`Vec<Node>`) with index links, which
/// serialises compactly and keeps prediction cache-friendly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Node {
    /// Internal split: `row[feature] <= threshold` goes left.
    Split {
        /// Feature column index.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Left child index.
        left: usize,
        /// Right child index.
        right: usize,
    },
    /// Leaf: class probability vector.
    Leaf {
        /// P(class) per class.
        probs: Vec<f64>,
    },
}

/// A trained classification tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
    n_features: usize,
    /// Total Gini-impurity decrease credited to each feature during
    /// training (unnormalised mean-decrease-impurity importances).
    importances: Vec<f64>,
}

/// Per-tree training frame: the selected rows materialised column-major
/// with every feature column presorted **once**, plus the scratch buffers
/// the recursion reuses. A node is a range `[lo, hi)` shared by all
/// per-feature orderings: partitioning a node stably splits each ordering
/// into a left block and a right block, so children stay sorted without
/// ever sorting again.
struct Frame {
    /// Samples in the frame (bootstrap duplicates count separately).
    n: usize,
    /// Feature columns.
    d: usize,
    /// Column-major values: `cols[f * n + s]` is sample `s` on feature `f`.
    cols: Vec<f64>,
    /// Class label per sample.
    labels: Vec<usize>,
    /// Per-feature sample orderings: `order[f * n + k]` is the sample id
    /// ranked `k` by feature `f`'s value (stable within ties).
    order: Vec<u32>,
    /// Stable-partition spill buffer.
    scratch: Vec<u32>,
    /// Per-sample side of the split currently being applied.
    goes_left: Vec<bool>,
    /// Running left-of-threshold class counts for `best_split`.
    left_counts: Vec<usize>,
    /// Feature roster reused by the per-node shuffle.
    roster: Vec<usize>,
}

impl Frame {
    fn new(data: &Dataset, indices: &[usize]) -> Frame {
        let n = indices.len();
        let d = data.n_features();
        let mut cols = vec![0.0f64; n * d];
        let mut labels = Vec::with_capacity(n);
        for (s, &i) in indices.iter().enumerate() {
            let row = data.row(i);
            for (f, &v) in row.iter().enumerate() {
                cols[f * n + s] = v;
            }
            labels.push(data.label(i));
        }
        let mut order = Vec::with_capacity(n * d);
        for f in 0..d {
            let col = &cols[f * n..(f + 1) * n];
            let mut o: Vec<u32> = (0..n as u32).collect();
            o.sort_by(|&a, &b| col[a as usize].total_cmp(&col[b as usize]));
            order.extend_from_slice(&o);
        }
        Frame {
            n,
            d,
            cols,
            labels,
            order,
            scratch: vec![0; n],
            goes_left: vec![false; n],
            left_counts: vec![0; data.n_classes()],
            roster: (0..d).collect(),
        }
    }

    /// Class counts over the node `[lo, hi)` (read off feature 0's
    /// ordering — every feature's slice holds exactly the node's samples).
    fn node_counts(&self, lo: usize, hi: usize, counts: &mut [usize]) {
        counts.iter_mut().for_each(|c| *c = 0);
        for &s in &self.order[lo..hi] {
            counts[self.labels[s as usize]] += 1;
        }
    }

    /// Splits the node `[lo, hi)` on `row[feature] <= threshold`, stably
    /// partitioning every per-feature ordering so both children remain
    /// presorted. Returns the left child's size.
    fn partition(&mut self, lo: usize, hi: usize, feature: usize, threshold: f64) -> usize {
        let n = self.n;
        let Frame {
            cols,
            order,
            scratch,
            goes_left,
            ..
        } = self;
        let col = &cols[feature * n..(feature + 1) * n];
        let mut n_left = 0usize;
        for &s in &order[feature * n + lo..feature * n + hi] {
            let left = col[s as usize] <= threshold;
            goes_left[s as usize] = left;
            n_left += left as usize;
        }
        for f in 0..self.d {
            let slice = &mut order[f * n + lo..f * n + hi];
            let mut w = 0usize;
            let mut spilled = 0usize;
            for i in 0..slice.len() {
                let s = slice[i];
                if goes_left[s as usize] {
                    slice[w] = s;
                    w += 1;
                } else {
                    scratch[spilled] = s;
                    spilled += 1;
                }
            }
            slice[w..].copy_from_slice(&scratch[..spilled]);
        }
        n_left
    }
}

impl DecisionTree {
    /// Fits a tree on (a subset of) a dataset. `indices` selects the
    /// training rows (bootstrap samples pass duplicates freely); `rng`
    /// drives feature subsampling only.
    pub fn fit(
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> DecisionTree {
        assert!(!indices.is_empty(), "cannot fit a tree on zero rows");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes: data.n_classes(),
            n_features: data.n_features(),
            importances: vec![0.0; data.n_features()],
        };
        let mut frame = Frame::new(data, indices);
        tree.build(&mut frame, 0, indices.len(), 0, config, rng);
        tree
    }

    /// Read-only view of the node arena, for the compiled lowering.
    pub(crate) fn arena(&self) -> &[Node] {
        &self.nodes
    }

    /// Recursive node construction over the frame range `[lo, hi)`;
    /// returns the node's arena index.
    fn build(
        &mut self,
        frame: &mut Frame,
        lo: usize,
        hi: usize,
        depth: usize,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> usize {
        let n = hi - lo;
        let mut counts = vec![0usize; self.n_classes];
        frame.node_counts(lo, hi, &mut counts);
        let node_impurity = gini(&counts, n);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;

        if pure || depth >= config.max_depth || n < config.min_samples_split {
            return self.push_leaf(&counts, n);
        }

        let Some((feature, threshold, gain)) =
            self.best_split(frame, lo, hi, &counts, node_impurity, config, rng)
        else {
            return self.push_leaf(&counts, n);
        };

        self.importances[feature] += gain * n as f64;

        let n_left = frame.partition(lo, hi, feature, threshold);
        debug_assert!(n_left > 0 && n_left < n);

        let node_idx = self.nodes.len();
        self.nodes.push(Node::Split {
            feature,
            threshold,
            left: 0,
            right: 0,
        });
        let l = self.build(frame, lo, lo + n_left, depth + 1, config, rng);
        let r = self.build(frame, lo + n_left, hi, depth + 1, config, rng);
        if let Node::Split { left, right, .. } = &mut self.nodes[node_idx] {
            *left = l;
            *right = r;
        }
        node_idx
    }

    fn push_leaf(&mut self, counts: &[usize], n: usize) -> usize {
        let probs = counts.iter().map(|&c| c as f64 / n.max(1) as f64).collect();
        self.nodes.push(Node::Leaf { probs });
        self.nodes.len() - 1
    }

    /// Finds the best (feature, threshold) by Gini gain over the node
    /// `[lo, hi)`; `None` if no split satisfies the leaf-size
    /// constraints. Each candidate feature is swept over its *presorted*
    /// slice with running class counts — no sorting here.
    #[allow(clippy::too_many_arguments)]
    fn best_split(
        &self,
        frame: &mut Frame,
        lo: usize,
        hi: usize,
        total_counts: &[usize],
        node_impurity: f64,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> Option<(usize, f64, f64)> {
        // With feature subsampling, order the *full* roster with the random
        // subset first: the scan below stops after the subset if it found a
        // valid split, but keeps drawing further features when it did not
        // (sklearn semantics — a node only becomes a leaf when no feature
        // at all can split it).
        // The roster always restarts from the identity permutation so the
        // shuffle consumes the rng exactly as a fresh `(0..d).collect()`
        // would (the reference implementation reshuffles from scratch at
        // every node).
        for (i, f) in frame.roster.iter_mut().enumerate() {
            *f = i;
        }
        let subset_len = match config.features_per_split {
            Some(m) if m < frame.d => {
                for i in 0..frame.roster.len() {
                    let j = rng.gen_range(i..frame.roster.len());
                    frame.roster.swap(i, j);
                }
                m
            }
            _ => frame.d,
        };

        let n = hi - lo;
        let stride = frame.n;
        let mut best: Option<(usize, f64, f64)> = None;
        for fi in 0..frame.roster.len() {
            if fi >= subset_len && best.is_some() {
                break; // subset exhausted and a valid split exists
            }
            let f = frame.roster[fi];
            let col = &frame.cols[f * stride..(f + 1) * stride];
            let ord = &frame.order[f * stride + lo..f * stride + hi];
            if col[ord[0] as usize] == col[ord[n - 1] as usize] {
                continue; // constant feature here
            }

            let left_counts = &mut frame.left_counts;
            left_counts.iter_mut().for_each(|c| *c = 0);
            for split_at in 1..n {
                let prev = ord[split_at - 1] as usize;
                left_counts[frame.labels[prev]] += 1;
                // Only split between distinct values.
                if col[prev] == col[ord[split_at] as usize] {
                    continue;
                }
                let n_left = split_at;
                let n_right = n - split_at;
                if n_left < config.min_samples_leaf || n_right < config.min_samples_leaf {
                    continue;
                }
                let weighted = (n_left as f64 * gini(left_counts, n_left)
                    + n_right as f64 * gini_complement(total_counts, left_counts, n_right))
                    / n as f64;
                let gain = node_impurity - weighted;
                if gain > best.map(|(_, _, g)| g).unwrap_or(1e-12) {
                    let threshold = (col[prev] + col[ord[split_at] as usize]) / 2.0;
                    best = Some((f, threshold, gain));
                }
            }
        }
        best
    }

    /// Class-probability vector for one feature row.
    pub fn predict_proba(&self, row: &[f64]) -> &[f64] {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
                Node::Leaf { probs } => return probs,
            }
        }
    }

    /// Most probable class for one row.
    pub fn predict(&self, row: &[f64]) -> usize {
        argmax(self.predict_proba(row))
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of feature columns expected.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Node count (size of the shipped model).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        self.depth_of(0)
    }

    fn depth_of(&self, idx: usize) -> usize {
        match &self.nodes[idx] {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + self.depth_of(*left).max(self.depth_of(*right)),
        }
    }

    /// Unnormalised impurity-decrease importances.
    pub fn importances(&self) -> &[f64] {
        &self.importances
    }
}

/// Index of the largest element (first wins ties).
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Gini impurity of a count vector.
fn gini(counts: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let mut sum_sq = 0.0;
    for &c in counts {
        let p = c as f64 / n as f64;
        sum_sq += p * p;
    }
    1.0 - sum_sq
}

/// Gini impurity of `total - left` over `n_right` samples, computed
/// without materialising the right-count vector. Performs exactly the
/// float operations `gini(&right_counts, n_right)` would, in the same
/// class order, so results are bit-identical to the two-vector form.
fn gini_complement(total: &[usize], left: &[usize], n_right: usize) -> f64 {
    if n_right == 0 {
        return 0.0;
    }
    let mut sum_sq = 0.0;
    for (&t, &l) in total.iter().zip(left) {
        let p = (t - l) as f64 / n_right as f64;
        sum_sq += p * p;
    }
    1.0 - sum_sq
}

/// The seed (pre-presort) training algorithm, kept verbatim as the
/// ground truth for the bit-identity equivalence tests: per node it
/// re-collects and re-sorts every candidate feature column.
#[cfg(test)]
pub(crate) mod reference {
    use super::*;

    /// Fits a tree exactly as the seed implementation did.
    pub fn fit(
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> DecisionTree {
        assert!(!indices.is_empty(), "cannot fit a tree on zero rows");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes: data.n_classes(),
            n_features: data.n_features(),
            importances: vec![0.0; data.n_features()],
        };
        let mut idx = indices.to_vec();
        build(&mut tree, data, &mut idx, 0, config, rng);
        tree
    }

    fn class_counts(data: &Dataset, indices: &[usize], k: usize) -> Vec<usize> {
        let mut counts = vec![0usize; k];
        for &i in indices {
            counts[data.label(i)] += 1;
        }
        counts
    }

    fn build(
        tree: &mut DecisionTree,
        data: &Dataset,
        indices: &mut [usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> usize {
        let counts = class_counts(data, indices, tree.n_classes);
        let node_impurity = gini(&counts, indices.len());
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;

        if pure || depth >= config.max_depth || indices.len() < config.min_samples_split {
            return tree.push_leaf(&counts, indices.len());
        }

        let Some((feature, threshold, gain)) =
            best_split(tree, data, indices, node_impurity, config, rng)
        else {
            return tree.push_leaf(&counts, indices.len());
        };

        tree.importances[feature] += gain * indices.len() as f64;

        let mut mid = 0usize;
        for i in 0..indices.len() {
            if data.row(indices[i])[feature] <= threshold {
                indices.swap(i, mid);
                mid += 1;
            }
        }
        debug_assert!(mid > 0 && mid < indices.len());

        let node_idx = tree.nodes.len();
        tree.nodes.push(Node::Split {
            feature,
            threshold,
            left: 0,
            right: 0,
        });
        let (l, r) = {
            let (left_idx, right_idx) = indices.split_at_mut(mid);
            let l = build(tree, data, left_idx, depth + 1, config, rng);
            let r = build(tree, data, right_idx, depth + 1, config, rng);
            (l, r)
        };
        if let Node::Split { left, right, .. } = &mut tree.nodes[node_idx] {
            *left = l;
            *right = r;
        }
        node_idx
    }

    fn best_split(
        tree: &DecisionTree,
        data: &Dataset,
        indices: &[usize],
        node_impurity: f64,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> Option<(usize, f64, f64)> {
        let all: Vec<usize> = (0..tree.n_features).collect();
        let (features, subset_len): (Vec<usize>, usize) = match config.features_per_split {
            Some(m) if m < all.len() => {
                let mut shuffled = all.clone();
                for i in 0..shuffled.len() {
                    let j = rng.gen_range(i..shuffled.len());
                    shuffled.swap(i, j);
                }
                (shuffled, m)
            }
            _ => {
                let len = all.len();
                (all, len)
            }
        };

        let n = indices.len();
        let mut best: Option<(usize, f64, f64)> = None;
        let mut pairs: Vec<(f64, usize)> = Vec::with_capacity(n);
        for (fi, &f) in features.iter().enumerate() {
            if fi >= subset_len && best.is_some() {
                break;
            }
            pairs.clear();
            pairs.extend(indices.iter().map(|&i| (data.row(i)[f], data.label(i))));
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            if pairs[0].0 == pairs[n - 1].0 {
                continue;
            }

            let mut left_counts = vec![0usize; tree.n_classes];
            let total_counts = {
                let mut t = vec![0usize; tree.n_classes];
                for &(_, l) in pairs.iter() {
                    t[l] += 1;
                }
                t
            };
            for split_at in 1..n {
                left_counts[pairs[split_at - 1].1] += 1;
                if pairs[split_at - 1].0 == pairs[split_at].0 {
                    continue;
                }
                let n_left = split_at;
                let n_right = n - split_at;
                if n_left < config.min_samples_leaf || n_right < config.min_samples_leaf {
                    continue;
                }
                let right_counts: Vec<usize> = total_counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(&t, &l)| t - l)
                    .collect();
                let weighted = (n_left as f64 * gini(&left_counts, n_left)
                    + n_right as f64 * gini(&right_counts, n_right))
                    / n as f64;
                let gain = node_impurity - weighted;
                if gain > best.map(|(_, _, g)| g).unwrap_or(1e-12) {
                    let threshold = (pairs[split_at - 1].0 + pairs[split_at].0) / 2.0;
                    best = Some((f, threshold, gain));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A hierarchical two-feature dataset: class 1 iff `a > 0.5 && b > 0.5`.
    /// Greedy CART needs both features (depth ≥ 2) to solve it exactly,
    /// and — unlike XOR — its first split has positive gain.
    fn xor_dataset() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            // jitter that never crosses the 0.5 boundaries
            let j = (i % 10) as f64 * 0.01;
            rows.push(vec![a + j, b + j]);
            labels.push((a as usize) & (b as usize));
        }
        Dataset::new(rows, labels, 2, vec!["a".into(), "b".into()])
    }

    fn fit(data: &Dataset, config: TreeConfig) -> DecisionTree {
        let idx: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        DecisionTree::fit(data, &idx, &config, &mut rng)
    }

    #[test]
    fn solves_xor() {
        let data = xor_dataset();
        let tree = fit(&data, TreeConfig::default());
        for i in 0..data.len() {
            assert_eq!(tree.predict(data.row(i)), data.label(i), "row {i}");
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let data = Dataset::new(
            vec![vec![1.0], vec![2.0], vec![3.0]],
            vec![1, 1, 1],
            2,
            vec!["x".into()],
        );
        let tree = fit(&data, TreeConfig::default());
        assert_eq!(tree.n_nodes(), 1);
        assert_eq!(tree.predict(&[42.0]), 1);
        assert_eq!(tree.predict_proba(&[42.0]), &[0.0, 1.0]);
    }

    #[test]
    fn max_depth_zero_is_majority_vote() {
        let data = xor_dataset();
        let tree = fit(
            &data,
            TreeConfig {
                max_depth: 0,
                ..TreeConfig::default()
            },
        );
        assert_eq!(tree.n_nodes(), 1);
        // The AND dataset is 75 % class 0 / 25 % class 1.
        let p = tree.predict_proba(&[0.0, 0.0]);
        assert!((p[0] - 0.75).abs() < 1e-9 && (p[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let data = xor_dataset();
        let tree = fit(
            &data,
            TreeConfig {
                min_samples_leaf: 60,
                ..TreeConfig::default()
            },
        );
        // With 200 rows and 60-sample leaves the tree can split at most
        // a couple of times.
        assert!(tree.n_nodes() <= 7, "nodes {}", tree.n_nodes());
    }

    #[test]
    fn importances_credit_used_features() {
        let data = xor_dataset();
        let tree = fit(&data, TreeConfig::default());
        let imp = tree.importances();
        assert!(
            imp[0] > 0.0 && imp[1] > 0.0,
            "xor needs both features: {imp:?}"
        );

        // A dataset where only feature 0 matters.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 2) as f64, (i % 7) as f64])
            .collect();
        let labels: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let d2 = Dataset::new(rows, labels, 2, vec!["sig".into(), "noise".into()]);
        let t2 = fit(&d2, TreeConfig::default());
        assert!(t2.importances()[0] > 10.0 * t2.importances()[1].max(1e-9));
    }

    #[test]
    fn serde_round_trip() {
        let data = xor_dataset();
        let tree = fit(&data, TreeConfig::default());
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
        assert_eq!(back.predict(data.row(3)), tree.predict(data.row(3)));
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let data = xor_dataset();
        let idx: Vec<usize> = (0..data.len()).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let tree = DecisionTree::fit(
            &data,
            &idx,
            &TreeConfig {
                features_per_split: Some(1),
                ..TreeConfig::default()
            },
            &mut rng,
        );
        let correct = (0..data.len())
            .filter(|&i| tree.predict(data.row(i)) == data.label(i))
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.9);
    }

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[0.3, 0.3, 0.2]), 0);
        assert_eq!(argmax(&[0.1, 0.5, 0.4]), 1);
    }

    /// A messier multi-class dataset with ties, duplicated rows and a
    /// constant column — the shapes that exercise the presorted sweep's
    /// corner cases.
    fn gnarly_dataset(n: usize, n_classes: usize, seed: u64) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = ((i as u64).wrapping_mul(seed | 1) % 23) as f64; // heavy ties
                let b = ((i * 31 + seed as usize) % 101) as f64 / 7.0;
                let c = 5.0; // constant
                let d = ((i / 3) % 13) as f64; // duplicated in runs of 3
                vec![a, b, c, d]
            })
            .collect();
        let labels: Vec<usize> = (0..n)
            .map(|i| (i.wrapping_mul(7) + seed as usize) % n_classes)
            .collect();
        Dataset::new(
            rows,
            labels,
            n_classes,
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
        )
    }

    /// The presorted trainer must produce trees bit-identical to the
    /// seed implementation (same nodes, same thresholds, same
    /// importances) across depths, leaf constraints, class counts,
    /// feature subsampling and bootstrap duplicates.
    #[test]
    fn presorted_training_matches_reference_bit_for_bit() {
        let configs = [
            TreeConfig::default(),
            TreeConfig {
                max_depth: 3,
                ..TreeConfig::default()
            },
            TreeConfig {
                min_samples_leaf: 9,
                min_samples_split: 20,
                ..TreeConfig::default()
            },
            TreeConfig {
                features_per_split: Some(1),
                ..TreeConfig::default()
            },
            TreeConfig {
                features_per_split: Some(2),
                max_depth: 30,
                ..TreeConfig::default()
            },
        ];
        for seed in [1u64, 7, 42] {
            for n_classes in [2usize, 3, 5] {
                let data = gnarly_dataset(180, n_classes, seed);
                // Bootstrap-style index list with duplicates.
                let indices: Vec<usize> = (0..data.len())
                    .map(|i| (i.wrapping_mul(13) + seed as usize) % data.len())
                    .collect();
                for config in &configs {
                    let mut rng_a = StdRng::seed_from_u64(seed ^ 0xBEEF);
                    let mut rng_b = StdRng::seed_from_u64(seed ^ 0xBEEF);
                    let fast = DecisionTree::fit(&data, &indices, config, &mut rng_a);
                    let slow = reference::fit(&data, &indices, config, &mut rng_b);
                    assert_eq!(
                        fast, slow,
                        "presorted != reference for seed {seed}, k {n_classes}, {config:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn presorted_training_matches_reference_on_xor() {
        let data = xor_dataset();
        let idx: Vec<usize> = (0..data.len()).collect();
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        let fast = DecisionTree::fit(&data, &idx, &TreeConfig::default(), &mut rng_a);
        let slow = reference::fit(&data, &idx, &TreeConfig::default(), &mut rng_b);
        assert_eq!(fast, slow);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::dataset::Dataset;
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        /// A trained tree's probability vectors always form a simplex and
        /// its predictions stay within the trained label range, for any
        /// deterministic dataset shape and any query point.
        #[test]
        fn prop_tree_is_well_formed(
            seed in 0u64..500,
            n in 20usize..120,
            n_classes in 2usize..5,
            depth in 1usize..10,
            qx in -100.0f64..100.0,
            qy in -100.0f64..100.0,
        ) {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|i| {
                    let x = ((i as u64).wrapping_mul(seed + 7) % 97) as f64;
                    let y = ((i as u64).wrapping_mul(seed + 13) % 89) as f64;
                    vec![x, y]
                })
                .collect();
            let labels: Vec<usize> =
                (0..n).map(|i| (i.wrapping_mul(3) + seed as usize) % n_classes).collect();
            let data = Dataset::new(rows, labels, n_classes, vec!["x".into(), "y".into()]);
            let idx: Vec<usize> = (0..n).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let tree = DecisionTree::fit(
                &data,
                &idx,
                &TreeConfig { max_depth: depth, ..TreeConfig::default() },
                &mut rng,
            );
            let probs = tree.predict_proba(&[qx, qy]);
            prop_assert_eq!(probs.len(), n_classes);
            prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
            prop_assert!(tree.predict(&[qx, qy]) < n_classes);
            prop_assert!(tree.depth() <= depth);
        }

        /// Training rows are always predicted to a class that actually
        /// occurs among them (the tree cannot invent labels).
        #[test]
        fn prop_predictions_use_seen_labels(seed in 0u64..200) {
            let rows: Vec<Vec<f64>> =
                (0..60).map(|i| vec![((i as u64 * (seed + 3)) % 31) as f64]).collect();
            // Only classes 1 and 3 of a 5-class space appear.
            let labels: Vec<usize> = (0..60).map(|i| if i % 2 == 0 { 1 } else { 3 }).collect();
            let data = Dataset::new(rows, labels, 5, vec!["x".into()]);
            let idx: Vec<usize> = (0..60).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let tree = DecisionTree::fit(&data, &idx, &TreeConfig::default(), &mut rng);
            for q in [-5.0, 0.0, 15.5, 400.0] {
                let p = tree.predict(&[q]);
                prop_assert!(p == 1 || p == 3, "invented class {p}");
            }
        }
    }
}
