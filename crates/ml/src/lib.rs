//! Machine-learning substrate for encrypted-price modeling.
//!
//! The paper's §5 pipeline needs: log-normalisation and entropy-guided
//! discretisation of prices into classes, Random-Forest classification
//! (chosen there for interpretability, training speed and resistance to
//! overfitting), 10-fold cross-validation averaged over repeated runs,
//! and the standard metric suite (TP/FP rates, precision, recall,
//! weighted one-vs-rest AUCROC). It also needs the *negative* result: a
//! regression baseline whose high error justified switching to classes.
//!
//! Repro band "awkward ML tooling" is solved by owning the whole stack:
//!
//! * [`dataset`] — row-major feature matrices with named columns;
//! * [`discretize`] — the §5.1 price-class construction (log transform +
//!   balanced entropy splits with a leave-one-out entropy estimate);
//! * [`tree`] — CART decision trees (the model YourAdValue ships to the
//!   client, so it is fully serde-serialisable);
//! * [`forest`] — bagged random forests with OOB error and impurity
//!   importances, trained in parallel with crossbeam scoped threads;
//! * [`compiled`] — the flat struct-of-arrays inference form a trained
//!   forest is lowered into for allocation-free, cache-blocked
//!   prediction on the client hot path;
//! * [`metrics`] — confusion-matrix statistics and AUCROC;
//! * [`cv`] — stratified k-fold cross-validation;
//! * [`linreg`] — the OLS baseline the paper discarded.
//!
//! Everything is deterministic given the caller's seed.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod compiled;
pub mod cv;
pub mod dataset;
pub mod discretize;
pub mod forest;
pub mod linreg;
pub mod metrics;
pub mod tree;

pub use compiled::CompiledForest;
pub use cv::{cross_validate, CvReport};
pub use dataset::Dataset;
pub use discretize::Discretizer;
pub use forest::{default_train_threads, RandomForest, RandomForestConfig};
pub use linreg::LinearRegression;
pub use metrics::{auc_roc_ovr, ConfusionMatrix};
pub use tree::{DecisionTree, TreeConfig};
