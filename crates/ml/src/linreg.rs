//! Ordinary-least-squares regression — the baseline the paper discarded.
//!
//! §5.4: "we first applied regression models … however, the high
//! variability of charge prices lead to low performance (high error) of
//! the regression models. Therefore, we proceeded to split the prices
//! into groups for classification." The experiment harness reproduces
//! that negative result; this module provides the regressor and its error
//! metrics (RMSE, R²).
//!
//! The normal equations are solved by Gaussian elimination with partial
//! pivoting over the (d+1)×(d+1) Gram matrix — tiny for the ≤ dozens of
//! features used here — with a ridge fallback when the system is
//! near-singular.

use serde::{Deserialize, Serialize};

/// A fitted linear model `y ≈ w·x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    /// Coefficients, one per feature.
    pub weights: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
}

impl LinearRegression {
    /// Fits OLS on rows/targets. A small ridge term (1e-8 on the
    /// diagonal) keeps collinear feature sets solvable.
    ///
    /// # Panics
    /// Panics on empty input or ragged rows.
    pub fn fit(rows: &[Vec<f64>], targets: &[f64]) -> LinearRegression {
        assert!(!rows.is_empty(), "need at least one row");
        assert_eq!(rows.len(), targets.len(), "one target per row");
        let d = rows[0].len();
        let dim = d + 1; // + intercept

        // Gram matrix A = XᵀX and vector b = Xᵀy, with X augmented by 1s.
        let mut a = vec![vec![0.0f64; dim]; dim];
        let mut b = vec![0.0f64; dim];
        for (row, &y) in rows.iter().zip(targets) {
            assert_eq!(row.len(), d, "ragged rows");
            for i in 0..dim {
                let xi = if i < d { row[i] } else { 1.0 };
                b[i] += xi * y;
                for j in 0..dim {
                    let xj = if j < d { row[j] } else { 1.0 };
                    a[i][j] += xi * xj;
                }
            }
        }
        for (i, row) in a.iter_mut().enumerate().take(dim) {
            row[i] += 1e-8; // ridge jitter
        }

        let w = solve(a, b);
        LinearRegression {
            weights: w[..d].to_vec(),
            intercept: w[d],
        }
    }

    /// Predicts one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.intercept
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(w, x)| w * x)
                .sum::<f64>()
    }

    /// Root-mean-square error over a test set.
    pub fn rmse(&self, rows: &[Vec<f64>], targets: &[f64]) -> f64 {
        let n = rows.len().max(1) as f64;
        (rows
            .iter()
            .zip(targets)
            .map(|(r, &y)| {
                let e = self.predict(r) - y;
                e * e
            })
            .sum::<f64>()
            / n)
            .sqrt()
    }

    /// Coefficient of determination R² over a test set.
    pub fn r2(&self, rows: &[Vec<f64>], targets: &[f64]) -> f64 {
        let n = targets.len() as f64;
        let mean = targets.iter().sum::<f64>() / n;
        let ss_tot: f64 = targets.iter().map(|&y| (y - mean) * (y - mean)).sum();
        let ss_res: f64 = rows
            .iter()
            .zip(targets)
            .map(|(r, &y)| {
                let e = self.predict(r) - y;
                e * e
            })
            .sum();
        if ss_tot == 0.0 {
            // Constant target: perfect if residuals are numerically zero.
            return if ss_res < 1e-9 * n.max(1.0) {
                1.0
            } else {
                f64::NEG_INFINITY
            };
        }
        1.0 - ss_res / ss_tot
    }
}

/// Gaussian elimination with partial pivoting. Index loops mirror the
/// textbook algorithm and stay clearer than iterator chains here.
#[allow(clippy::needless_range_loop)]
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-12 {
            continue; // ridge term makes this unreachable in practice
        }
        for row in (col + 1)..n {
            let factor = a[row][col] / diag;
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < 1e-12 {
            0.0
        } else {
            acc / a[col][col]
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 5.0).collect();
        let m = LinearRegression::fit(&rows, &targets);
        assert!((m.weights[0] - 3.0).abs() < 1e-6);
        assert!((m.weights[1] + 2.0).abs() < 1e-6);
        assert!((m.intercept - 5.0).abs() < 1e-5);
        assert!(m.rmse(&rows, &targets) < 1e-6);
        assert!((m.r2(&rows, &targets) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn high_variance_targets_fit_poorly() {
        // The §5.4 negative result in miniature: targets the features
        // cannot explain leave R² near zero.
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 4) as f64]).collect();
        let targets: Vec<f64> = (0..200)
            .map(|i| ((i as f64 * 12.9898).sin() * 43758.5453).fract().abs() * 100.0)
            .collect();
        let m = LinearRegression::fit(&rows, &targets);
        assert!(m.r2(&rows, &targets) < 0.1, "r2 {}", m.r2(&rows, &targets));
        assert!(m.rmse(&rows, &targets) > 10.0);
    }

    #[test]
    fn collinear_features_survive() {
        // Second column duplicates the first; ridge keeps it solvable.
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, i as f64]).collect();
        let targets: Vec<f64> = (0..30).map(|i| 2.0 * i as f64).collect();
        let m = LinearRegression::fit(&rows, &targets);
        assert!(m.rmse(&rows, &targets) < 1e-3);
    }

    #[test]
    fn constant_target() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let targets = vec![7.0; 10];
        let m = LinearRegression::fit(&rows, &targets);
        assert!((m.predict(&[3.0]) - 7.0).abs() < 1e-6);
        assert!((m.r2(&rows, &targets) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one target per row")]
    fn mismatched_lengths_rejected() {
        LinearRegression::fit(&[vec![1.0]], &[1.0, 2.0]);
    }
}
