//! Evaluation metrics: confusion-matrix statistics and AUCROC.
//!
//! §5.4 reports TP rate, FP rate, precision, recall and "weighted area
//! under the receiver operating characteristic curve" — weighted averages
//! across classes, Weka-style. Those exact quantities are computed here.

use serde::{Deserialize, Serialize};

/// A k×k confusion matrix: `m[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds from parallel label slices.
    ///
    /// # Panics
    /// Panics on length mismatch or out-of-range labels.
    pub fn from_labels(n_classes: usize, actual: &[usize], predicted: &[usize]) -> ConfusionMatrix {
        assert_eq!(actual.len(), predicted.len(), "label slices must align");
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&a, &p) in actual.iter().zip(predicted) {
            counts[a][p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    /// Support (actual count) of one class.
    pub fn support(&self, class: usize) -> usize {
        self.counts[class].iter().sum()
    }

    /// Overall accuracy — also the weighted-average TP rate (recall),
    /// which is what Weka's "TP Rate" headline number is.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.n_classes()).map(|c| self.counts[c][c]).sum();
        correct as f64 / self.total().max(1) as f64
    }

    /// Per-class recall (TP rate).
    pub fn recall(&self, class: usize) -> f64 {
        let support = self.support(class);
        if support == 0 {
            return f64::NAN;
        }
        self.counts[class][class] as f64 / support as f64
    }

    /// Per-class precision.
    pub fn precision(&self, class: usize) -> f64 {
        let predicted: usize = (0..self.n_classes()).map(|a| self.counts[a][class]).sum();
        if predicted == 0 {
            return f64::NAN;
        }
        self.counts[class][class] as f64 / predicted as f64
    }

    /// Per-class false-positive rate: of everything *not* in `class`, the
    /// fraction predicted as `class`.
    pub fn fp_rate(&self, class: usize) -> f64 {
        let negatives: usize = (0..self.n_classes())
            .filter(|&a| a != class)
            .map(|a| self.support(a))
            .sum();
        if negatives == 0 {
            return f64::NAN;
        }
        let fp: usize = (0..self.n_classes())
            .filter(|&a| a != class)
            .map(|a| self.counts[a][class])
            .sum();
        fp as f64 / negatives as f64
    }

    /// Support-weighted average of a per-class metric (skips NaN classes).
    fn weighted(&self, f: impl Fn(usize) -> f64) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for c in 0..self.n_classes() {
            let v = f(c);
            let s = self.support(c) as f64;
            if v.is_finite() && s > 0.0 {
                num += v * s;
                den += s;
            }
        }
        if den > 0.0 {
            num / den
        } else {
            f64::NAN
        }
    }

    /// Weighted-average precision.
    pub fn weighted_precision(&self) -> f64 {
        self.weighted(|c| self.precision(c))
    }

    /// Weighted-average recall (== TP rate == accuracy when every class
    /// has support).
    pub fn weighted_recall(&self) -> f64 {
        self.weighted(|c| self.recall(c))
    }

    /// Weighted-average FP rate.
    pub fn weighted_fp_rate(&self) -> f64 {
        self.weighted(|c| self.fp_rate(c))
    }

    /// Raw counts.
    pub fn counts(&self) -> &[Vec<usize>] {
        &self.counts
    }
}

/// Binary ROC AUC from scores: probability a random positive outranks a
/// random negative (ties count half) — the Mann–Whitney formulation,
/// computed via ranks in O(n log n).
pub fn auc_binary(scores: &[f64], positive: &[bool]) -> f64 {
    assert_eq!(scores.len(), positive.len());
    let n_pos = positive.iter().filter(|&&p| p).count();
    let n_neg = positive.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return f64::NAN;
    }
    // Mid-rank the scores.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let mid_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            if positive[k] {
                rank_sum_pos += mid_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Support-weighted one-vs-rest multiclass AUCROC from predicted
/// probability vectors.
pub fn auc_roc_ovr(probs: &[Vec<f64>], actual: &[usize], n_classes: usize) -> f64 {
    assert_eq!(probs.len(), actual.len());
    let mut num = 0.0;
    let mut den = 0.0;
    for c in 0..n_classes {
        let scores: Vec<f64> = probs.iter().map(|p| p[c]).collect();
        let positive: Vec<bool> = actual.iter().map(|&a| a == c).collect();
        let support = positive.iter().filter(|&&p| p).count() as f64;
        let auc = auc_binary(&scores, &positive);
        if auc.is_finite() && support > 0.0 {
            num += auc * support;
            den += support;
        }
    }
    if den > 0.0 {
        num / den
    } else {
        f64::NAN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let cm = ConfusionMatrix::from_labels(3, &[0, 1, 2, 1], &[0, 1, 2, 1]);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.weighted_precision(), 1.0);
        assert_eq!(cm.weighted_recall(), 1.0);
        assert_eq!(cm.weighted_fp_rate(), 0.0);
    }

    #[test]
    fn known_matrix() {
        // actual 0: predicted [0,0,1]; actual 1: predicted [1,1,0].
        let cm = ConfusionMatrix::from_labels(2, &[0, 0, 0, 1, 1, 1], &[0, 0, 1, 1, 1, 0]);
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((cm.recall(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.fp_rate(0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.support(1), 3);
        assert_eq!(cm.total(), 6);
    }

    #[test]
    fn empty_class_is_nan_but_weighted_survives() {
        let cm = ConfusionMatrix::from_labels(3, &[0, 0, 1], &[0, 0, 1]);
        assert!(cm.recall(2).is_nan());
        assert_eq!(cm.weighted_recall(), 1.0);
    }

    #[test]
    fn auc_binary_separable() {
        let scores = [0.9, 0.8, 0.7, 0.3, 0.2, 0.1];
        let pos = [true, true, true, false, false, false];
        assert_eq!(auc_binary(&scores, &pos), 1.0);
        let inverted: Vec<bool> = pos.iter().map(|p| !p).collect();
        assert_eq!(auc_binary(&scores, &inverted), 0.0);
    }

    #[test]
    fn auc_binary_random_is_half() {
        // Alternating labels with identical scores ⇒ 0.5 by tie-handling.
        let scores = [0.5; 10];
        let pos: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        assert!((auc_binary(&scores, &pos) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_binary_known_value() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}. Pairs: (0.8>0.6),(0.8>0.2),
        // (0.4<0.6),(0.4>0.2) ⇒ 3/4.
        let scores = [0.8, 0.4, 0.6, 0.2];
        let pos = [true, true, false, false];
        assert!((auc_binary(&scores, &pos) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_is_nan() {
        assert!(auc_binary(&[0.1, 0.2], &[true, true]).is_nan());
    }

    #[test]
    fn ovr_weights_by_support() {
        // Class 0 perfectly ranked (support 2), class 1 perfectly ranked
        // (support 2): weighted AUC 1.
        let probs = vec![
            vec![0.9, 0.1],
            vec![0.8, 0.2],
            vec![0.1, 0.9],
            vec![0.2, 0.8],
        ];
        let actual = [0, 0, 1, 1];
        assert_eq!(auc_roc_ovr(&probs, &actual, 2), 1.0);
    }
}
