//! Compiled-vs-arena equivalence: the flat [`CompiledForest`] must be a
//! pure re-layout of the trained model, never a re-approximation. Every
//! probability and class it produces is asserted **bit-identical** to
//! the arena walker across forests of varying depth, size and class
//! count — the property the hot client/batch paths rely on.
//!
//! (The companion guarantee — presorted-column training produces trees
//! bit-identical to the seed implementation — lives next to the private
//! reference implementation in `tree::tests`.)

use yav_ml::{CompiledForest, Dataset, RandomForest, RandomForestConfig, TreeConfig};

/// A deterministic multi-modal dataset: mixed integer-ish and fractional
/// columns with repeated values (ties exercise `<=` threshold edges).
fn dataset(n: usize, n_features: usize, n_classes: usize, salt: u64) -> Dataset {
    let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ salt;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64
    };
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..n_features)
                .map(|f| match f % 3 {
                    0 => (next() as u64 % 13) as f64,
                    1 => (next() as u64 % 997) as f64 / 31.0,
                    _ => (next() as u64 % 5) as f64 - 2.0,
                })
                .collect()
        })
        .collect();
    let labels: Vec<usize> = rows
        .iter()
        .map(|r| {
            let s: f64 = r.iter().sum();
            (s.abs() as usize) % n_classes
        })
        .collect();
    let names = (0..n_features).map(|f| format!("f{f}")).collect();
    Dataset::new(rows, labels, n_classes, names)
}

/// The grid of model shapes under test.
fn configs() -> Vec<(usize, RandomForestConfig)> {
    let mut out = Vec::new();
    for &(n_classes, n_trees, max_depth, features_per_split) in &[
        (2usize, 1usize, 2usize, None),
        (2, 9, 25, None),
        (3, 5, 6, Some(2)),
        (4, 12, 12, Some(1)),
        (5, 7, 20, Some(3)),
    ] {
        out.push((
            n_classes,
            RandomForestConfig {
                n_trees,
                seed: 0xEC0 + n_trees as u64,
                tree: TreeConfig {
                    max_depth,
                    features_per_split,
                    ..TreeConfig::default()
                },
                ..RandomForestConfig::default()
            },
        ));
    }
    out
}

#[test]
fn compiled_probabilities_are_bit_identical_to_arena() {
    for (i, (n_classes, config)) in configs().into_iter().enumerate() {
        let data = dataset(260, 5, n_classes, i as u64);
        let forest = RandomForest::fit(&data, &config);
        let compiled = CompiledForest::compile(&forest);
        assert_eq!(compiled.n_trees(), config.n_trees);
        assert_eq!(compiled.n_classes(), n_classes);
        assert_eq!(compiled.n_features(), data.n_features());

        let mut fast = vec![0.0f64; n_classes];
        let mut slow = vec![0.0f64; n_classes];
        for r in 0..data.len() {
            let row = data.row(r);
            compiled.predict_into(row, &mut fast);
            forest.predict_proba_into(row, &mut slow);
            // Bit-identity, not approximate equality: compare the raw bits
            // so -0.0 vs 0.0 or last-ulp drift would fail loudly.
            let fast_bits: Vec<u64> = fast.iter().map(|p| p.to_bits()).collect();
            let slow_bits: Vec<u64> = slow.iter().map(|p| p.to_bits()).collect();
            assert_eq!(fast_bits, slow_bits, "config {i}, row {r}");
            assert_eq!(slow, forest.predict_proba(row), "config {i}, row {r}");
            assert_eq!(
                compiled.predict(row),
                forest.predict(row),
                "config {i}, row {r}"
            );
        }
    }
}

#[test]
fn batch_prediction_matches_per_row_everywhere() {
    for (i, (n_classes, config)) in configs().into_iter().enumerate() {
        // 193 rows: exercises the ragged final block of the 64-row tiling.
        let data = dataset(193, 5, n_classes, 0xBA7C + i as u64);
        let forest = RandomForest::fit(&data, &config);
        let compiled = forest.compile();
        let flat: Vec<f64> = (0..data.len()).flat_map(|r| data.row(r).to_vec()).collect();
        let batch = compiled.predict_batch(&flat, data.n_features());
        for (r, &class) in batch.iter().enumerate() {
            assert_eq!(class, forest.predict(data.row(r)), "config {i}, row {r}");
        }
    }
}

#[test]
fn batch_prediction_is_tier_independent() {
    // The partition sweep inside predict_batch dispatches through
    // yav-simd; every available tier must produce the identical class
    // sequence (the scalar tier is the canonical semantics).
    let (n_classes, config) = configs().into_iter().nth(1).unwrap();
    let data = dataset(500, 5, n_classes, 0x51D);
    let forest = RandomForest::fit(&data, &config);
    let compiled = forest.compile();
    let flat: Vec<f64> = (0..data.len()).flat_map(|r| data.row(r).to_vec()).collect();
    yav_simd::force_level(Some(yav_simd::Level::Scalar));
    let want = compiled.predict_batch(&flat, data.n_features());
    for lvl in yav_simd::Level::all()
        .iter()
        .copied()
        .filter(|l| l.available())
    {
        yav_simd::force_level(Some(lvl));
        assert_eq!(
            compiled.predict_batch(&flat, data.n_features()),
            want,
            "{lvl:?}"
        );
    }
    yav_simd::force_level(None);
}

#[test]
fn compiled_form_survives_serialization_next_to_the_arena_form() {
    let data = dataset(220, 5, 4, 77);
    let forest = RandomForest::fit(
        &data,
        &RandomForestConfig {
            n_trees: 6,
            seed: 0x5EDE,
            ..RandomForestConfig::default()
        },
    );
    let compiled = forest.compile();
    // Both forms ship in one artifact; deserialising must reproduce the
    // exact prediction surface without re-lowering.
    let artifact = serde_json::to_string(&(&forest, &compiled)).unwrap();
    let (back_forest, back_compiled): (RandomForest, CompiledForest) =
        serde_json::from_str(&artifact).unwrap();
    assert_eq!(back_compiled, compiled);
    for r in 0..data.len() {
        let row = data.row(r);
        assert_eq!(
            back_compiled.predict_proba(row),
            back_forest.predict_proba(row),
            "row {r}"
        );
    }
}
