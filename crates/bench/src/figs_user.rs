//! User-cost experiments: §6.2's Figures 17–19 and the §6.3 ARPU
//! validation — the paper's motivating question answered per user.

use crate::world::World;
use yav_core::methodology::{per_user_costs, PopulationSummary, UserCost};
use yav_core::validation::{ArpuEstimate, MarketFactors};
use yav_stats::{pearson, Ecdf};
use yav_types::PriceVisibility;

/// Computes the per-user cost accounts once per world.
pub fn costs(w: &World) -> Vec<UserCost> {
    let model = w.pme.current_model().expect("world trains the PME");
    per_user_costs(&w.report.detections, &model, &w.shift)
}

/// Figure 17 — CDFs of cumulative user cost.
pub fn fig17(w: &World) -> String {
    let costs = costs(w);
    let series: Vec<(&str, Vec<f64>)> = vec![
        (
            "cleartext",
            costs.iter().map(|c| c.cleartext.as_f64()).collect(),
        ),
        (
            "cleartext (time corr.)",
            costs
                .iter()
                .map(|c| c.cleartext_corrected.as_f64())
                .collect(),
        ),
        (
            "est. encrypted",
            costs
                .iter()
                .map(|c| c.encrypted_estimated.as_f64())
                .collect(),
        ),
        (
            "total",
            costs.iter().map(|c| c.total_corrected().as_f64()).collect(),
        ),
    ];
    let mut out = String::from("Figure 17: cumulative cost per user (CPM over the trace)\n");
    out += &format!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8}\n",
        "series", "p10", "p25", "p50", "p75", "p90"
    );
    for (name, values) in &series {
        let positive: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
        if positive.is_empty() {
            continue;
        }
        let e = Ecdf::new(&positive);
        out += &format!(
            "{:<22} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}\n",
            name,
            e.quantile(0.10),
            e.quantile(0.25),
            e.median(),
            e.quantile(0.75),
            e.quantile(0.90)
        );
    }
    let s = PopulationSummary::of(&costs);
    out += &format!("\nusers: {}\n", s.users);
    out += &format!(
        "median total user cost: {:.1} CPM (paper: ~25 CPM)\n",
        s.median_total
    );
    out += &format!(
        "users under 100 CPM: {:.0}% (paper: ~73%)\n",
        s.under_100_cpm * 100.0
    );
    out += &format!(
        "1000+ CPM tail: {:.1}% of users (paper: ~2% at 1000-10000 CPM)\n",
        s.tail_1000 * 100.0
    );
    out += &format!(
        "mean encrypted uplift over cleartext: +{:.0}% (paper: ~55% for 60% of users)\n",
        s.encrypted_uplift * 100.0
    );
    out
}

/// Figure 18 — total cleartext vs total estimated encrypted cost per user.
pub fn fig18(w: &World) -> String {
    let costs = costs(w);
    let both: Vec<&UserCost> = costs
        .iter()
        .filter(|c| c.cleartext.is_positive() && c.encrypted_estimated.is_positive())
        .collect();
    let mut out =
        String::from("Figure 18: total cleartext vs total est. encrypted cost per user\n");
    if both.is_empty() {
        return out + "no users with both price kinds\n";
    }
    let ratios: Vec<f64> = both
        .iter()
        .map(|c| c.encrypted_estimated.as_f64() / c.cleartext.as_f64())
        .collect();
    let e = Ecdf::new(&ratios);
    out += &format!("users with both kinds: {}\n", both.len());
    out += &format!(
        "enc/clear total ratio: p10 {:.2}, p50 {:.2}, p90 {:.2}\n",
        e.quantile(0.10),
        e.median(),
        e.quantile(0.90)
    );
    let clear_dominant = ratios.iter().filter(|&&r| r < 1.0).count() as f64 / ratios.len() as f64;
    let enc_2x = ratios.iter().filter(|&&r| r >= 2.0).count() as f64 / ratios.len() as f64;
    out += &format!(
        "users with cleartext > encrypted: {:.0}% (paper: ~75%)\n",
        clear_dominant * 100.0
    );
    out += &format!(
        "users costing 2x+ more encrypted: {:.1}% (paper: small ~2% portion up to 32x)\n",
        enc_2x * 100.0
    );
    let xs: Vec<f64> = both.iter().map(|c| c.cleartext.as_f64().ln()).collect();
    let ys: Vec<f64> = both
        .iter()
        .map(|c| c.encrypted_estimated.as_f64().ln())
        .collect();
    if let Some(r) = pearson(&xs, &ys) {
        out += &format!("log-log correlation of the two totals: {r:.2}\n");
    }
    out
}

/// Figure 19 — average price per impression, cleartext vs encrypted.
pub fn fig19(w: &World) -> String {
    let costs = costs(w);
    let both: Vec<&UserCost> = costs
        .iter()
        .filter(|c| c.cleartext_count > 0 && c.encrypted_count > 0)
        .collect();
    let mut out =
        String::from("Figure 19: avg cleartext vs avg est. encrypted price per impression\n");
    if both.is_empty() {
        return out + "no users with both price kinds\n";
    }
    let avg_ratios: Vec<f64> = both
        .iter()
        .map(|c| c.avg_encrypted() / c.avg_cleartext())
        .collect();
    let e = Ecdf::new(&avg_ratios);
    out += &format!("users with both kinds: {}\n", both.len());
    out += &format!(
        "avg-enc/avg-clear per impression: p10 {:.2}, p50 {:.2}, p90 {:.2}\n",
        e.quantile(0.10),
        e.median(),
        e.quantile(0.90)
    );
    let enc_above =
        avg_ratios.iter().filter(|&&r| r > 1.0).count() as f64 / avg_ratios.len() as f64;
    out += &format!(
        "users whose encrypted impressions average dearer: {:.0}%\n",
        enc_above * 100.0
    );
    let big = avg_ratios.iter().filter(|&&r| r >= 5.0).count() as f64 / avg_ratios.len() as f64;
    out += &format!(
        "5x+ dearer encrypted: {:.1}% (paper: ~2% up to 5x)\n",
        big * 100.0
    );
    out
}

/// §6.3 — the ARPU extrapolation.
pub fn arpu(w: &World) -> String {
    let costs = costs(w);
    let totals: Vec<f64> = costs.iter().map(|c| c.total_corrected().as_f64()).collect();
    // Normalise to a full user-year when the trace is shorter.
    let days = match w.scale {
        crate::world::Scale::Small => 60.0,
        _ => 365.0,
    };
    let yearly: Vec<f64> = totals.iter().map(|t| t * 365.0 / days).collect();
    let est = ArpuEstimate::extrapolate(&yearly, &MarketFactors::paper());
    let mut out = String::from("§6.3 ARPU validation\n");
    out += &format!(
        "panel yearly cost, 25th-75th pct: {:.1}-{:.1} CPM (paper: 8-102 CPM)\n",
        est.panel_p25_cpm, est.panel_p75_cpm
    );
    out += &format!(
        "market-factor multiplier: x{:.1}\n",
        MarketFactors::paper().multiplier()
    );
    out += &format!(
        "extrapolated yearly ad value per user: ${:.2}-${:.2} (paper: $0.54-$6.85)\n",
        est.dollars.0, est.dollars.1
    );
    out += &format!(
        "within order of magnitude of Twitter ($7-8) / Facebook ($14-17): {}\n",
        est.within_order_of_magnitude_of_platforms()
    );
    out
}

/// Validation against simulator ground truth (not available to the
/// paper's authors — our advantage as a simulation): how close do the
/// estimated encrypted totals come to the hidden truth?
pub fn truth_check(w: &World) -> String {
    let costs = costs(w);
    let est_total: f64 = costs.iter().map(|c| c.encrypted_estimated.as_f64()).sum();
    let true_total: f64 = w
        .truth
        .iter()
        .filter(|t| t.visibility == PriceVisibility::Encrypted)
        .map(|t| t.charge.as_f64())
        .sum();
    let clear_total: f64 = costs.iter().map(|c| c.cleartext.as_f64()).sum();
    let mut out = String::from("Ground-truth check (simulator-only validation)\n");
    out += &format!("true encrypted total:      {true_total:.1} CPM\n");
    out += &format!("estimated encrypted total: {est_total:.1} CPM\n");
    out += &format!(
        "aggregate estimation error: {:+.1}%\n",
        (est_total / true_total - 1.0) * 100.0
    );

    // Decompose: the probing campaign bids with a 12-CPM cap, so the
    // training data never contains the whale tail. Compare against the
    // truth *within the observable price range* as well.
    let cap = 30.0;
    let trimmed_truth: f64 = w
        .truth
        .iter()
        .filter(|t| t.visibility == PriceVisibility::Encrypted)
        .map(|t| t.charge.as_f64().min(cap))
        .sum();
    let tail = true_total - trimmed_truth;
    out += &format!(
        "truth within the campaign-observable range (≤{cap} CPM): {trimmed_truth:.1} CPM\n"
    );
    out += &format!(
        "whale tail beyond the bid cap: {tail:.1} CPM ({:.0}% of the true total)\n",
        tail / true_total * 100.0
    );
    out += &format!(
        "estimation error vs observable-range truth: {:+.1}%\n",
        (est_total / trimmed_truth - 1.0) * 100.0
    );
    out += &format!(
        "encrypted adds {:.0}% on top of cleartext (true: {:.0}%)\n",
        est_total / clear_total * 100.0,
        true_total / clear_total * 100.0
    );
    out
}
