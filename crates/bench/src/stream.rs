//! Constant-memory streaming world builder.
//!
//! [`crate::World::build_with`] holds every detection, ground-truth
//! record and HTTP-derived row it will ever need until assembly — fine at
//! paper scale, impossible at the ROADMAP's "millions of users".
//! [`StreamWorld`] rebuilds the same pipeline as a **streaming fold**:
//!
//! 1. shards are processed in fixed windows (`window = f(threads)`, a
//!    scheduling knob that bounds live memory and never touches results);
//! 2. each shard runs generate → market → analyze → tenant-monitor fused,
//!    retaining only commutative aggregates ([`yav_analyzer::Retention::
//!    Bounded`], [`TruthStats`], [`yav_core::TenantReport`]);
//! 3. window results fold into the running totals in shard-index order
//!    and are dropped.
//!
//! Because every retained piece merges commutatively and the fold order
//! is the shard order — never the thread schedule — the stream run is
//! deterministic for any thread count and any window size, and its
//! aggregates (`AnalyzerReport::summary`, class counts, pairs) are
//! bit-identical to what the materialising builders compute at scales
//! where both fit (the stream-equivalence suite pins this).
//!
//! Peak memory is `O(window × shard)` + the running aggregates: a
//! million-user day streams ~11 M HTTP events through a few tens of
//! megabytes.

use crate::world::{a2_strata, campaigns_and_pme, Scale};
use yav_analyzer::{AnalyzerReport, DetectionSummary, Retention, WeblogAnalyzer};
use yav_auction::{MarketConfig, MarketTemplate};
use yav_campaign::CampaignReport;
use yav_core::{TenantReport, TenantStore};
use yav_exec::ExecConfig;
use yav_pme::{Pme, TimeShift};
use yav_stats::summary::median;
use yav_weblog::{GroundTruth, Panel, PanelUser, WeblogConfig, WeblogGenerator, USERS_PER_SHARD};

/// Commutative aggregates over the simulator's ground truth — what the
/// streaming run keeps instead of a `Vec<GroundTruth>`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TruthStats {
    /// Sold impressions.
    pub impressions: u64,
    /// Impressions whose notification carried a cleartext price.
    pub cleartext: u64,
    /// Impressions with an encrypted price token.
    pub encrypted: u64,
    /// Exact sum of all charges in micro-CPM.
    pub charge_micros: i64,
}

impl TruthStats {
    /// Folds one ground-truth record in.
    pub fn record(&mut self, t: &GroundTruth) {
        self.impressions += 1;
        match t.visibility {
            yav_types::PriceVisibility::Cleartext => self.cleartext += 1,
            yav_types::PriceVisibility::Encrypted => self.encrypted += 1,
        }
        self.charge_micros = self.charge_micros.saturating_add(t.charge.micros());
    }

    /// Folds another stats block in (commutative).
    pub fn merge(&mut self, other: &TruthStats) {
        self.impressions += other.impressions;
        self.cleartext += other.cleartext;
        self.encrypted += other.encrypted;
        self.charge_micros = self.charge_micros.saturating_add(other.charge_micros);
    }

    /// Mean charge in CPM.
    pub fn mean_charge_cpm(&self) -> Option<f64> {
        (self.impressions > 0)
            .then(|| self.charge_micros as f64 / 1_000_000.0 / self.impressions as f64)
    }
}

/// What one streamed shard hands back before being dropped.
struct StreamPart {
    report: AnalyzerReport,
    truth: TruthStats,
    tenants: TenantReport,
    http_requests: u64,
    /// Analyzer / tenant-monitor wall time inside the shard closure —
    /// zero unless the build was timed.
    analyze_ns: u64,
    monitor_ns: u64,
}

/// Per-phase wall time of one timed streaming build, behind the bench
/// ladder's `world_stream_phases` rows.
///
/// `market`, `analyze` and `monitor` are summed across workers, so on a
/// multi-threaded build they can together exceed `wall`; the breakdown
/// is calibrated for the single-worker bench runs, and
/// [`PhaseNanos::generate`] saturates rather than going negative.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseNanos {
    /// Wall time of the windowed stream loop (not campaigns/PME setup).
    pub wall: u64,
    /// Auction resolution time: the `auction.market.us` histogram-sum
    /// delta over the loop.
    pub market: u64,
    /// [`WeblogAnalyzer::ingest_quiet`] time.
    pub analyze: u64,
    /// [`TenantStore::feed`] time.
    pub monitor: u64,
}

impl PhaseNanos {
    /// Everything not attributed to the other three phases: event
    /// generation, plus scheduling and fold overhead (a few percent).
    pub fn generate(&self) -> u64 {
        self.wall
            .saturating_sub(self.market + self.analyze + self.monitor)
    }
}

/// The streaming world: every aggregate the materialised [`crate::World`]
/// computes that survives bounded retention, plus the multi-tenant
/// monitor fleet's report.
pub struct StreamWorld {
    /// The scale this world streamed at.
    pub scale: Scale,
    /// Bounded analyzer report: `detections` is empty, `summary` (and
    /// every other aggregate) is exact.
    pub report: AnalyzerReport,
    /// Ground-truth aggregates.
    pub truth: TruthStats,
    /// The multi-tenant YourAdValue fleet's view of the same stream.
    pub tenants: TenantReport,
    /// Campaign A1 (encrypting exchanges).
    pub a1: CampaignReport,
    /// Campaign A2 (MoPub cleartext).
    pub a2: CampaignReport,
    /// The trained engine (model shared by every tenant monitor).
    pub pme: Pme,
    /// The §6.2 time shift, fitted from the summary histograms.
    pub shift: TimeShift,
    /// Total HTTP requests streamed.
    pub http_requests: u64,
    /// Panel size.
    pub users: u32,
    /// Weblog shards streamed.
    pub shards: usize,
}

impl StreamWorld {
    /// Streams the world with default parallelism.
    pub fn build(scale: Scale) -> StreamWorld {
        StreamWorld::build_with(scale, &ExecConfig::default())
    }

    /// Streams the world on `exec`'s worker pool.
    ///
    /// The shard cut, per-shard markets and per-request analyzer walk are
    /// exactly [`crate::World::build_with`]'s; only retention differs.
    /// Thread count and window size affect scheduling and peak memory,
    /// never results.
    pub fn build_with(scale: Scale, exec: &ExecConfig) -> StreamWorld {
        let config = WeblogConfig {
            exec: *exec,
            ..scale.weblog()
        };
        StreamWorld::build_from_config(scale, config, None)
    }

    /// Streams the Huge profile (one simulated day, lazy panel) at a
    /// custom panel size — the knob behind the 10 k / 100 k / 1 M bench
    /// ladder in `benches/world_stream.rs`.
    pub fn build_with_users(users: u32, exec: &ExecConfig) -> StreamWorld {
        let config = WeblogConfig {
            users,
            exec: *exec,
            ..WeblogConfig::huge()
        };
        StreamWorld::build_from_config(Scale::Huge, config, None)
    }

    /// [`StreamWorld::build_with_users`] with per-event `Instant` pairs
    /// around the analyze and monitor calls plus the market-histogram
    /// delta — the instrumented twin run behind the bench ladder's phase
    /// breakdown. Results are identical to the untimed build; only wall
    /// clocks are added.
    pub fn build_with_users_timed(users: u32, exec: &ExecConfig) -> (StreamWorld, PhaseNanos) {
        let config = WeblogConfig {
            users,
            exec: *exec,
            ..WeblogConfig::huge()
        };
        let mut phases = PhaseNanos::default();
        let world = StreamWorld::build_from_config(Scale::Huge, config, Some(&mut phases));
        (world, phases)
    }

    fn build_from_config(
        scale: Scale,
        config: WeblogConfig,
        timing: Option<&mut PhaseNanos>,
    ) -> StreamWorld {
        let _span = yav_telemetry::span!("bench.world.stream");
        let _trace = yav_trace::trace_span!("world.stream", config.users as u64);
        let exec = &config.exec;
        let generator = WeblogGenerator::new(config.clone());
        let market_config = MarketConfig::default();
        // One template build per run: the integration matrix's key
        // derivation is milliseconds of SHA-256, identical across all
        // shards — stamping per-shard markets from the template is what
        // keeps per-shard setup off the ladder's critical path.
        let market_template = MarketTemplate::new(market_config.clone());
        let shards = generator.shard_count();
        yav_telemetry::gauge("world.stream.shards").set(shards as f64);

        // Campaigns and PME first: they are weblog-independent, and the
        // tenant monitors need the client model while the stream runs.
        let (a1, a2, pme) = campaigns_and_pme(scale, exec, &market_config, generator.universe());
        let model = pme.current_model();

        // The live window: how many shards exist in memory at once. A
        // few shards per worker keeps the pool busy across uneven shard
        // costs; the fold below consumes each window before the next
        // starts, so peak memory is `O(window)` regardless of shard
        // count (1 M users = 31 250 shards — materialising all their
        // parts before folding is exactly the bug this builder removes).
        let window = exec.threads().max(1) * 4;
        yav_telemetry::gauge("world.stream.window").set(window as f64);
        let events = yav_telemetry::counter("world.stream.events");
        let windows_done = yav_telemetry::counter("world.stream.windows");

        let mut report = AnalyzerReport::default();
        let mut truth = TruthStats::default();
        let mut tenants = TenantReport::default();
        let mut http_requests = 0u64;
        let mut analyze_ns = 0u64;
        let mut monitor_ns = 0u64;

        // Phase baselines, taken after campaigns/PME so their auctions
        // don't leak into the loop's market delta.
        let timed = timing.is_some();
        let market_hist = yav_telemetry::histogram("auction.market.us");
        let market_us0 = market_hist.snapshot().sum;
        let loop_start = std::time::Instant::now();

        for lo in (0..shards).step_by(window) {
            let n = window.min(shards - lo);
            let _wtrace = yav_trace::trace_span!("world.stream_window", lo as u64);
            let parts = yav_exec::par_map_indexed(exec, n, |i| {
                let s = lo + i;
                let mut market = market_template.shard(s as u64);
                let mut analyzer = WeblogAnalyzer::with_retention(Retention::Bounded);
                let mut store = TenantStore::new();
                // One panel-block draw per shard: registering tenants and
                // generating traffic share the same user list instead of
                // drawing the lazy block twice.
                let users = shard_users(&generator, &config, s);
                for user in &users {
                    store.register(user.id, user.home);
                }
                let mut http = 0u64;
                let mut truth = TruthStats::default();
                let mut analyze_ns = 0u64;
                let mut monitor_ns = 0u64;
                if timed {
                    // The instrumented twin of the fused sink below:
                    // three clock reads per event (~100 ns) against a
                    // ~10 µs event, so the readings barely perturb what
                    // they measure — and the results stay identical.
                    generator.run_shard_with_users(
                        &users,
                        &mut market,
                        |req| {
                            http += 1;
                            let start = std::time::Instant::now();
                            analyzer.ingest_quiet(req);
                            let mid = std::time::Instant::now();
                            store.feed(model.as_ref(), req);
                            analyze_ns += (mid - start).as_nanos() as u64;
                            monitor_ns += mid.elapsed().as_nanos() as u64;
                        },
                        |t| truth.record(&t),
                    );
                } else {
                    generator.run_shard_with_users(
                        &users,
                        &mut market,
                        |req| {
                            http += 1;
                            analyzer.ingest_quiet(req);
                            store.feed(model.as_ref(), req);
                        },
                        |t| truth.record(&t),
                    );
                }
                StreamPart {
                    report: analyzer.finish_with_state().0,
                    truth,
                    tenants: store.finish(model.as_ref()),
                    http_requests: http,
                    analyze_ns,
                    monitor_ns,
                }
            });
            // Sequential fold in shard-index order; every merged piece is
            // commutative, so the window cut cannot show through.
            for part in parts {
                report.merge(part.report);
                truth.merge(&part.truth);
                tenants.merge(&part.tenants);
                http_requests += part.http_requests;
                analyze_ns += part.analyze_ns;
                monitor_ns += part.monitor_ns;
                events.add(part.http_requests);
            }
            windows_done.inc();
        }

        if let Some(phases) = timing {
            phases.wall = loop_start.elapsed().as_nanos() as u64;
            let market_us = market_hist.snapshot().sum - market_us0;
            phases.market = (market_us * 1_000.0) as u64;
            phases.analyze = analyze_ns;
            phases.monitor = monitor_ns;
        }

        let shift = fit_shift_bounded(&report.summary, &a2);
        pme.set_time_shift(shift);

        StreamWorld {
            scale,
            report,
            truth,
            tenants,
            a1,
            a2,
            pme,
            shift,
            http_requests,
            users: config.users,
            shards,
        }
    }
}

/// The panel users of shard `s` — copied from the eager panel, or drawn
/// as a lazy block (32 users, dropped with the shard). The stream loop
/// hands this one list to both the tenant registry and
/// [`WeblogGenerator::run_shard_with_users`], so the block is drawn
/// exactly once per shard.
fn shard_users(
    generator: &WeblogGenerator,
    config: &WeblogConfig,
    s: usize,
    // yav-lint: allow(stream-materialize) — bounded: one USERS_PER_SHARD block, dropped with its shard
) -> Vec<PanelUser> {
    let n = config.users as usize;
    let lo = (s * USERS_PER_SHARD).min(n);
    let hi = (lo + USERS_PER_SHARD).min(n);
    if config.lazy_panel {
        Panel::build_block(config.seed, lo as u32, hi as u32)
    } else {
        generator.panel().users()[lo..hi].to_vec()
    }
}

/// The §6.2 stratified time-shift fit over bounded retention: the
/// historical side comes from the summary's per-IAB MoPub price
/// histograms (medians quantised to half a 0.01-CPM bin) instead of the
/// materialised detection list; the recent side is the A2 campaign's
/// exact rows, as in [`TimeShift::fit_stratified`]. Mirrors that fit's
/// logic: per-stratum median ratios (strata under 30 prices on either
/// side skipped), coefficient = median ratio, pooled-median fallback.
fn fit_shift_bounded(summary: &DetectionSummary, a2: &CampaignReport) -> TimeShift {
    const MIN_N: u64 = 30;
    let recent_strata = a2_strata(a2);
    let mut ratios = Vec::new();
    let mut recent_all: Vec<f64> = Vec::new();
    for (hist, recent) in summary.mopub_iab_prices.iter().zip(&recent_strata) {
        recent_all.extend_from_slice(recent);
        if hist.count() >= MIN_N && recent.len() as u64 >= MIN_N {
            if let Some(h) = hist.median() {
                let r = median(recent);
                if h > 0.0 && r > 0.0 {
                    ratios.push(r / h);
                }
            }
        }
    }
    let pooled = summary.mopub_all_prices();
    let historical_median = pooled.median().unwrap_or(0.0);
    let recent_median = median(&recent_all);
    if ratios.is_empty() {
        let coefficient = if historical_median > 0.0 && recent_median > 0.0 {
            recent_median / historical_median
        } else {
            1.0
        };
        return TimeShift {
            historical_median,
            recent_median,
            coefficient,
        };
    }
    TimeShift {
        historical_median,
        recent_median,
        coefficient: median(&ratios),
    }
}

/// The `stream` experiment text: what the constant-memory builder can
/// report without a materialised detection list — dataset aggregates,
/// the tenant fleet's per-user value distribution, and the fitted shift.
pub fn report(world: &StreamWorld) -> String {
    let mut out = String::new();
    let s = &world.report.summary;
    let t = &world.tenants;
    let fleet_total = t
        .fleet
        .cleartext
        .saturating_add(t.fleet.encrypted_estimated);
    out.push_str(&format!(
        "Streaming world at {:?}: {} users in {} shards, {} HTTP requests\n",
        world.scale, world.users, world.shards, world.http_requests
    ));
    out.push_str(&format!(
        "dataset D: {} detections ({} cleartext, {} encrypted), mean cleartext {:.4} CPM\n",
        s.total,
        s.cleartext,
        s.encrypted,
        s.mean_cleartext_cpm().unwrap_or(0.0)
    ));
    out.push_str(&format!(
        "ground truth: {} impressions ({} cleartext, {} encrypted), mean charge {:.4} CPM\n",
        world.truth.impressions,
        world.truth.cleartext,
        world.truth.encrypted,
        world.truth.mean_charge_cpm().unwrap_or(0.0)
    ));
    out.push_str(&format!(
        "tenant fleet: {} monitors saw priced ads, {} valued events, total {:.2} \
         CPM-equivalent ({:.2} cleartext + {:.2} estimated), {} skipped for want of a model\n",
        t.users,
        t.events,
        fleet_total.as_f64(),
        t.fleet.cleartext.as_f64(),
        t.fleet.encrypted_estimated.as_f64(),
        t.skipped_no_model
    ));
    out.push_str(&format!(
        "per-user total cost quantiles (CPM): p50 {:.3}, p90 {:.3}, p99 {:.3}\n",
        t.quantile_total_cpm(0.50).unwrap_or(0.0),
        t.quantile_total_cpm(0.90).unwrap_or(0.0),
        t.quantile_total_cpm(0.99).unwrap_or(0.0)
    ));
    out.push_str(&format!(
        "time shift: historical median {:.4}, recent median {:.4}, coefficient {:.4}\n",
        world.shift.historical_median, world.shift.recent_median, world.shift.coefficient
    ));
    if let Some(rss) = yav_telemetry::peak_rss_bytes() {
        out.push_str(&format!(
            "process peak RSS: {:.1} MiB\n",
            rss as f64 / (1024.0 * 1024.0)
        ));
    }
    out
}

/// One-line JSON-ish summary for logs and the figures binary.
pub fn describe(world: &StreamWorld) -> String {
    format!(
        "scale={:?} users={} shards={} http_requests={} detections={} cleartext={} encrypted={} \
         mean_clear_cpm={:.4} tenant_users={} tenant_total_cpm={:.2} shift={:.4}",
        world.scale,
        world.users,
        world.shards,
        world.http_requests,
        world.report.summary.total,
        world.report.summary.cleartext,
        world.report.summary.encrypted,
        world.report.summary.mean_cleartext_cpm().unwrap_or(0.0),
        world.tenants.users,
        (world
            .tenants
            .fleet
            .cleartext
            .saturating_add(world.tenants.fleet.encrypted_estimated))
        .as_f64(),
        world.shift.coefficient,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_matches_materialized_aggregates_at_small() {
        let exec = ExecConfig::with_threads(2);
        let stream = StreamWorld::build_with(Scale::Small, &exec);
        let world = crate::World::build_with(Scale::Small, &exec);

        // Bounded retention drops the detection list but nothing else:
        // every commutative aggregate agrees exactly with the
        // materialising builder.
        assert!(stream.report.detections.is_empty());
        assert_eq!(stream.report.summary, world.report.summary);
        assert_eq!(stream.report.class_counts, world.report.class_counts);
        assert_eq!(stream.report.total_requests, world.report.total_requests);
        assert_eq!(stream.report.users_seen, world.report.users_seen);
        assert_eq!(stream.report.malformed_nurls, world.report.malformed_nurls);
        assert_eq!(
            stream.report.monthly_os_requests,
            world.report.monthly_os_requests
        );
        assert_eq!(stream.http_requests, world.http_requests);
        assert_eq!(
            stream.report.summary.total as usize,
            world.report.detections.len()
        );
        assert_eq!(stream.truth.impressions as usize, world.truth.len());

        // The tenant fleet observed the same stream the analyzer did:
        // every detection is a cleartext tally, a valued estimate, or a
        // counted model-less skip.
        assert_eq!(
            stream.tenants.fleet.cleartext_count
                + stream.tenants.fleet.encrypted_count
                + stream.tenants.skipped_no_model,
            stream.report.summary.total,
        );
    }

    #[test]
    fn stream_is_thread_and_window_invariant() {
        let one = StreamWorld::build_with(Scale::Small, &ExecConfig::with_threads(1));
        let four = StreamWorld::build_with(Scale::Small, &ExecConfig::with_threads(4));
        assert_eq!(one.report.summary, four.report.summary);
        assert_eq!(one.report.class_counts, four.report.class_counts);
        assert_eq!(one.truth, four.truth);
        assert_eq!(one.tenants, four.tenants);
        assert_eq!(one.http_requests, four.http_requests);
        assert_eq!(one.shift, four.shift);
    }
}
