//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation from the simulated world.
//!
//! The entry point is [`World::build`], which assembles dataset D (via
//! the weblog generator and the analyzer), runs the two probing
//! ad-campaigns and trains the PME — at one of three [`Scale`]s. The
//! `figures` binary (`cargo run -p yav-bench --release --bin figures`)
//! then prints any experiment's rows; `EXPERIMENTS.md` records the
//! paper-vs-measured comparison for each.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod figs_dataset;
pub mod figs_model;
pub mod figs_user;
pub mod stream;
pub mod world;

#[cfg(test)]
mod smoke_tests;

pub use stream::{PhaseNanos, StreamWorld, TruthStats};
pub use world::{Scale, World};

/// The machine-metadata row every `BENCH_*.json` file opens with, so a
/// recorded number can always be read against the hardware and SIMD
/// tier that produced it. Assembled by hand (like the bench writers
/// themselves) to keep the JSON shape obvious in the diff.
pub fn machine_json() -> String {
    let vcpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    format!(
        "{{\"bench\":\"machine\",\"arch\":\"{}\",\"os\":\"{}\",\"vcpus\":{vcpus},\
         \"simd_features\":\"{}\",\"simd_level\":\"{}\"}}",
        std::env::consts::ARCH,
        std::env::consts::OS,
        yav_simd::detected_features(),
        yav_simd::level().name(),
    )
}
