//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation from the simulated world.
//!
//! The entry point is [`World::build`], which assembles dataset D (via
//! the weblog generator and the analyzer), runs the two probing
//! ad-campaigns and trains the PME — at one of three [`Scale`]s. The
//! `figures` binary (`cargo run -p yav-bench --release --bin figures`)
//! then prints any experiment's rows; `EXPERIMENTS.md` records the
//! paper-vs-measured comparison for each.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod figs_dataset;
pub mod figs_model;
pub mod figs_user;
pub mod stream;
pub mod world;

#[cfg(test)]
mod smoke_tests;

pub use stream::{StreamWorld, TruthStats};
pub use world::{Scale, World};
