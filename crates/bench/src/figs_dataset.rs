//! Dataset-D figures: the §4 measurement study (Figures 2–14, Tables 3–4).

use crate::world::World;
use std::collections::{BTreeMap, HashSet};
use yav_analyzer::features::{FeatureGroup, FeatureSchema};
use yav_stats::{ks_two_sample, PercentileSummary};
use yav_types::{AdSlotSize, Adx, City, DayOfWeek, Os, PriceVisibility, TimeOfDay};

/// Renders a percentile box as a fixed-width text row.
fn box_row(label: &str, p: &PercentileSummary) -> String {
    format!(
        "{label:<24} n={:<7} p5={:<8.3} p10={:<8.3} p50={:<8.3} p90={:<8.3} p95={:<8.3}",
        p.n, p.p5, p.p10, p.p50, p.p90, p.p95
    )
}

/// Figure 2 — portion of encrypted vs cleartext ADX-DSP pairs per month.
pub fn fig2(w: &World) -> String {
    let mut out = String::from("Figure 2: encrypted vs cleartext ADX-DSP pairs over 2015\n");
    out += "month  pairs  encrypted  cleartext  encrypted%\n";
    for m in w.report.pairs.figure2() {
        let total = m.encrypted_pairs + m.cleartext_pairs;
        if total == 0 {
            continue;
        }
        out += &format!(
            "{:>5}  {:>5}  {:>9}  {:>9}  {:>9.1}%\n",
            m.month,
            total,
            m.encrypted_pairs,
            m.cleartext_pairs,
            m.encrypted_fraction() * 100.0
        );
    }
    let f = w.report.pairs.figure2();
    let first = f.iter().find(|m| m.encrypted_pairs + m.cleartext_pairs > 0);
    let last = f
        .iter()
        .rev()
        .find(|m| m.encrypted_pairs + m.cleartext_pairs > 0);
    if let (Some(a), Some(b)) = (first, last) {
        out += &format!(
            "trend: {:.1}% -> {:.1}% (paper: steadily increasing)\n",
            a.encrypted_fraction() * 100.0,
            b.encrypted_fraction() * 100.0
        );
    }
    out
}

/// Figure 3 — cumulative cleartext share vs entity RTB share.
pub fn fig3(w: &World) -> String {
    let mut out =
        String::from("Figure 3: cumulative portion of cleartext prices vs RTB share of entities\n");
    out += "entity            rtb_share  cleartext_share  cum_cleartext\n";
    let mut cum = 0.0;
    for e in w.report.pairs.figure3() {
        cum += e.cleartext_share;
        out += &format!(
            "{:<16}  {:>8.2}%  {:>14.2}%  {:>12.2}%\n",
            e.name,
            e.rtb_share * 100.0,
            e.cleartext_share * 100.0,
            cum * 100.0
        );
    }
    out += "(paper: MoPub 33.55% of RTB and ~45.4% of cleartext prices)\n";
    out
}

/// Table 3 — dataset and campaign summary.
pub fn table3(w: &World) -> String {
    // Distinct RTB publishers per month in D.
    let mut monthly_pubs: BTreeMap<usize, HashSet<&str>> = BTreeMap::new();
    for d in &w.report.detections {
        if let Some(p) = &d.publisher {
            monthly_pubs
                .entry(d.time.month().index())
                .or_default()
                .insert(p);
        }
    }
    let avg_pubs = if monthly_pubs.is_empty() {
        0.0
    } else {
        monthly_pubs.values().map(|s| s.len()).sum::<usize>() as f64 / monthly_pubs.len() as f64
    };
    let d_iabs: HashSet<_> = w.report.detections.iter().filter_map(|d| d.iab).collect();
    let mut out = String::from("Table 3: dataset and ad-campaign summary\n");
    out += &format!("{:<22} {:>12} {:>12} {:>12}\n", "metric", "D", "A1", "A2");
    out += &format!(
        "{:<22} {:>12} {:>12} {:>12}\n",
        "time period", "12 months", "13 days", "8 days"
    );
    out += &format!(
        "{:<22} {:>12} {:>12} {:>12}\n",
        "impressions",
        w.report.detections.len(),
        w.a1.rows.len(),
        w.a2.rows.len()
    );
    out += &format!(
        "{:<22} {:>12} {:>12} {:>12}\n",
        "RTB publishers",
        format!("~{avg_pubs:.0}/month"),
        w.a1.distinct_publishers(),
        w.a2.distinct_publishers()
    );
    out += &format!(
        "{:<22} {:>12} {:>12} {:>12}\n",
        "IAB categories",
        d_iabs.len(),
        w.a1.distinct_iabs(),
        w.a2.distinct_iabs()
    );
    out += &format!(
        "{:<22} {:>12} {:>12} {:>12}\n",
        "users", w.report.users_seen, "-", "-"
    );
    out += "(paper: D 78 560 imps / ~5.6k pubs/month / 18 IABs / 1 594 users; A1 632 667; A2 318 964)\n";
    out
}

/// Figure 5 — charge-price percentiles per city (cleartext detections).
pub fn fig5(w: &World) -> String {
    let mut out = String::from("Figure 5: charge price distribution per city (CPM, cleartext)\n");
    for city in City::ALL {
        let prices: Vec<f64> = w
            .report
            .detections
            .iter()
            .filter(|d| d.city == Some(city))
            .filter_map(|d| d.cleartext_cpm.map(|p| p.as_f64()))
            .collect();
        if prices.is_empty() {
            continue;
        }
        out += &box_row(city.name(), &PercentileSummary::of(&prices));
        out.push('\n');
    }
    out += "(paper: big cities lower medians, wider fluctuation)\n";
    out
}

/// Figure 6 — price by time of day, with the footnote-5 KS test.
pub fn fig6(w: &World) -> String {
    let mut out = String::from("Figure 6: charge prices by time of day (CPM, cleartext)\n");
    let mut by_bucket: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for d in &w.report.detections {
        if let Some(p) = d.cleartext_cpm {
            by_bucket[d.time.time_of_day() as usize].push(p.as_f64());
        }
    }
    for t in TimeOfDay::ALL {
        out += &box_row(t.label(), &PercentileSummary::of(&by_bucket[t as usize]));
        out.push('\n');
    }
    // KS: morning block vs late-evening block (the extremes).
    if let Some(ks) = ks_two_sample(
        &by_bucket[TimeOfDay::Morning as usize],
        &by_bucket[TimeOfDay::LateEvening as usize],
    ) {
        out += &format!(
            "KS morning vs late-evening: D={:.4}, p={:.2e} (paper: p_tod < 0.0002)\n",
            ks.statistic, ks.p_value
        );
    }
    out
}

/// Figure 7 — price by day of week, with KS test.
pub fn fig7(w: &World) -> String {
    let mut out = String::from("Figure 7: charge prices by day of week (CPM, cleartext)\n");
    let mut by_day: Vec<Vec<f64>> = vec![Vec::new(); 7];
    for d in &w.report.detections {
        if let Some(p) = d.cleartext_cpm {
            by_day[d.time.day_of_week().index()].push(p.as_f64());
        }
    }
    for day in DayOfWeek::PAPER_ORDER {
        out += &box_row(
            &day.to_string(),
            &PercentileSummary::of(&by_day[day.index()]),
        );
        out.push('\n');
    }
    let weekday: Vec<f64> = DayOfWeek::ALL[..5]
        .iter()
        .flat_map(|d| by_day[d.index()].iter().copied())
        .collect();
    let weekend: Vec<f64> = DayOfWeek::ALL[5..]
        .iter()
        .flat_map(|d| by_day[d.index()].iter().copied())
        .collect();
    if let Some(ks) = ks_two_sample(&weekday, &weekend) {
        out += &format!(
            "KS weekday vs weekend: D={:.4}, p={:.2e} (paper: p_dow < 0.002)\n",
            ks.statistic, ks.p_value
        );
    }
    out
}

/// Figures 8 and 9 — RTB share per OS over the year, raw and normalised.
pub fn fig8_9(w: &World) -> String {
    let mut out = String::from("Figure 8: RTB share per OS per month (of detections)\n");
    out += "month  Android      iOS  WinMob   Other\n";
    let mut monthly: Vec<[u64; 4]> = vec![[0; 4]; 12];
    for d in &w.report.detections {
        let m = if d.time.year() <= 2015 {
            d.time.month().index()
        } else {
            11
        };
        monthly[m][yav_analyzer::analyzer::os_index(d.os)] += 1;
    }
    for (m, counts) in monthly.iter().enumerate() {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            continue;
        }
        out += &format!(
            "{:>5}  {:>6.1}%  {:>6.1}%  {:>6.1}%  {:>6.1}%\n",
            m + 1,
            counts[0] as f64 / total as f64 * 100.0,
            counts[1] as f64 / total as f64 * 100.0,
            counts[2] as f64 / total as f64 * 100.0,
            counts[3] as f64 / total as f64 * 100.0,
        );
    }
    out += "(paper: Android ≈2x iOS in auction volume)\n\n";

    out += "Figure 9: RTB share normalised by each OS's total traffic\n";
    out += "month  Android      iOS\n";
    for (m, counts) in monthly.iter().enumerate() {
        let android_total = w.report.monthly_os_requests[m][0];
        let ios_total = w.report.monthly_os_requests[m][1];
        if android_total == 0 || ios_total == 0 {
            continue;
        }
        out += &format!(
            "{:>5}  {:>6.2}%  {:>6.2}%\n",
            m + 1,
            counts[0] as f64 / android_total as f64 * 100.0,
            counts[1] as f64 / ios_total as f64 * 100.0,
        );
    }
    out += "(paper: per-OS normalised shares roughly equal)\n";
    out
}

/// Figure 10 — charge prices per mobile OS (MoPub subset).
pub fn fig10(w: &World) -> String {
    let mut out = String::from("Figure 10: charge prices per OS (MoPub subset, CPM)\n");
    for os in [Os::Android, Os::Ios] {
        let prices: Vec<f64> = w
            .report
            .detections
            .iter()
            .filter(|d| d.adx == Adx::MoPub && d.os == os)
            .filter_map(|d| d.cleartext_cpm.map(|p| p.as_f64()))
            .collect();
        out += &box_row(os.label(), &PercentileSummary::of(&prices));
        out.push('\n');
    }
    out += "(paper: iOS draws higher median prices despite Android's volume)\n";
    out
}

/// Figure 11 — cost distribution per IAB category (MoPub, 2-month subset).
pub fn fig11(w: &World) -> String {
    let start = w.last_two_months_start();
    let mut out = format!(
        "Figure 11: charge-price distribution per IAB (MoPub, months {}-{} subset)\n",
        start + 1,
        start + 2
    );
    for iab in yav_types::IabCategory::ALL {
        let prices: Vec<f64> = w
            .report
            .detections
            .iter()
            .filter(|d| {
                d.adx == Adx::MoPub && d.iab == Some(iab) && d.time.month().index() >= start
            })
            .filter_map(|d| d.cleartext_cpm.map(|p| p.as_f64()))
            .collect();
        if prices.len() < 5 {
            continue;
        }
        out += &box_row(&iab.label(), &PercentileSummary::of(&prices));
        out.push('\n');
    }
    out += "(paper: IAB3 Business dearest ~5 CPM median; IAB15 Science cheapest <0.2)\n";
    out
}

/// Figure 12 — ad-slot popularity per month (size-carrying detections).
pub fn fig12(w: &World) -> String {
    let mut out = String::from("Figure 12: ad-slot size share per month (size-carrying nURLs)\n");
    let tracked = [
        AdSlotSize::S320x50,
        AdSlotSize::S300x250,
        AdSlotSize::S728x90,
    ];
    out += "month  320x50  300x250  728x90  (other sizes omitted)\n";
    let mut monthly: BTreeMap<usize, BTreeMap<AdSlotSize, u64>> = BTreeMap::new();
    for d in &w.report.detections {
        if let Some(slot) = d.slot {
            let m = if d.time.year() <= 2015 {
                d.time.month().index()
            } else {
                11
            };
            *monthly.entry(m).or_default().entry(slot).or_insert(0) += 1;
        }
    }
    let mut crossover = None;
    for (m, counts) in &monthly {
        let total: u64 = counts.values().sum();
        if total == 0 {
            continue;
        }
        let share =
            |s: AdSlotSize| counts.get(&s).copied().unwrap_or(0) as f64 / total as f64 * 100.0;
        out += &format!(
            "{:>5}  {:>5.1}%  {:>6.1}%  {:>5.1}%\n",
            m + 1,
            share(tracked[0]),
            share(tracked[1]),
            share(tracked[2])
        );
        if crossover.is_none() && share(AdSlotSize::S300x250) > share(AdSlotSize::S320x50) {
            crossover = Some(m + 1);
        }
    }
    out += &format!(
        "MPU overtakes the 320x50 banner in month {:?} (paper: from May 2015)\n",
        crossover
    );
    out
}

/// Figure 13 — price per ad-slot size (Turn subset).
pub fn fig13(w: &World) -> String {
    let mut out = String::from("Figure 13: charge prices per ad-slot size (Turn subset, CPM)\n");
    for slot in AdSlotSize::FIGURE13 {
        let prices: Vec<f64> = w
            .report
            .detections
            .iter()
            .filter(|d| d.adx == Adx::Turn && d.slot == Some(slot))
            .filter_map(|d| d.cleartext_cpm.map(|p| p.as_f64()))
            .collect();
        if prices.is_empty() {
            continue;
        }
        out += &box_row(&slot.to_string(), &PercentileSummary::of(&prices));
        out.push('\n');
    }
    out += "(paper: MPU 300x250 dearest at 0.47 median; area does not order price)\n";
    out
}

/// Figure 14 — accumulated revenue per ad-slot size (Turn subset).
pub fn fig14(w: &World) -> String {
    let mut out = String::from("Figure 14: accumulated revenue per ad-slot size (Turn subset)\n");
    let mut revenue: BTreeMap<AdSlotSize, f64> = BTreeMap::new();
    for d in &w.report.detections {
        if d.adx == Adx::Turn {
            if let (Some(slot), Some(p)) = (d.slot, d.cleartext_cpm) {
                *revenue.entry(slot).or_insert(0.0) += p.as_f64();
            }
        }
    }
    let total: f64 = revenue.values().sum();
    let mut rows: Vec<(AdSlotSize, f64)> = revenue.into_iter().collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (slot, rev) in rows {
        out += &format!(
            "{:<10} {:>10.2} CPM  {:>5.1}% of Turn revenue\n",
            slot.to_string(),
            rev,
            rev / total * 100.0
        );
    }
    out += "(paper: MPU accumulates 64.3% and the leaderboard 20.6% of Turn revenue)\n";
    out
}

/// Table 4 — the feature catalogue.
pub fn table4(_w: &World) -> String {
    let schema = FeatureSchema::get();
    let mut out = String::from("Table 4: extracted feature catalogue (288 features)\n");
    for (group, label) in [
        (FeatureGroup::Time, "A time"),
        (FeatureGroup::Http, "B http"),
        (FeatureGroup::Ad, "C advertisement"),
        (FeatureGroup::Dsp, "D DSP"),
        (FeatureGroup::Publisher, "E publisher interests"),
        (FeatureGroup::UserHttp, "F user http stats"),
        (FeatureGroup::UserInterests, "G user interests"),
        (FeatureGroup::UserLocations, "H user locations"),
    ] {
        let idx = schema.group_indices(group);
        let sample: Vec<&str> = idx.iter().take(4).map(|&i| schema.name_of(i)).collect();
        out += &format!(
            "{label:<24} {:>3} features  e.g. {}\n",
            idx.len(),
            sample.join(", ")
        );
    }
    out += &format!("total: {} features\n", schema.len());
    out
}

/// The §2.4 aggregate: encrypted share of detections (vs the paper's
/// ~26 % mobile figure) and the split of visibility per house style.
pub fn encrypted_share(w: &World) -> String {
    let total = w.report.detections.len();
    let enc = w
        .report
        .detections
        .iter()
        .filter(|d| d.visibility == PriceVisibility::Encrypted)
        .count();
    format!(
        "Encrypted notifications: {enc}/{total} = {:.1}% (paper: ~26% of 2015 mobile RTB)\n",
        enc as f64 / total.max(1) as f64 * 100.0
    )
}
