//! World assembly: dataset D + campaigns + trained PME at a chosen scale.

use yav_analyzer::{AnalyzerReport, WeblogAnalyzer};
use yav_auction::{MarketConfig, MarketTemplate};
use yav_campaign::{Campaign, CampaignReport};
use yav_exec::ExecConfig;
use yav_ml::RandomForestConfig;
use yav_pme::model::TrainConfig;
use yav_pme::{Pme, TimeShift};
use yav_types::Adx;
use yav_weblog::{GroundTruth, HttpRequest, Weblog, WeblogConfig, WeblogGenerator};

/// Experiment scales. Every scale runs the same code; only sizes differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~100-user panel over two months; campaigns at 40 impressions per
    /// setup. Seconds. Good for smoke runs and tests.
    Small,
    /// ~500-user panel over the full 2015; campaigns at 200 impressions
    /// per setup. A couple of minutes. The default for `figures all`.
    Mid,
    /// The paper's sizes: 1 594 users over 2015 (≈78 k RTB impressions),
    /// A1/A2 at 4 394/2 215 impressions per setup (≈632 k/319 k rows).
    /// Tens of minutes.
    Paper,
    /// One million users over one simulated day (~11 M HTTP events).
    /// Only the constant-memory streaming builder
    /// ([`crate::stream::StreamWorld`]) runs this scale — the
    /// materialising builders would hold the whole weblog in RAM.
    Huge,
}

impl Scale {
    /// Parses a CLI scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "mid" => Some(Scale::Mid),
            "paper" => Some(Scale::Paper),
            "huge" => Some(Scale::Huge),
            _ => None,
        }
    }

    pub(crate) fn weblog(self) -> WeblogConfig {
        match self {
            Scale::Small => WeblogConfig::small(),
            Scale::Mid => WeblogConfig {
                users: 500,
                days: 365,
                rtb_slot_prob: 0.072,
                views_per_user_day: 2.2,
                aux_requests_per_view: 4.0,
                ..WeblogConfig::paper()
            },
            Scale::Paper => WeblogConfig::paper(),
            Scale::Huge => WeblogConfig::huge(),
        }
    }

    /// Panel size at this scale.
    pub fn users(self) -> u32 {
        self.weblog().users
    }

    pub(crate) fn campaign_impressions(self) -> (u32, u32) {
        match self {
            Scale::Small | Scale::Huge => (40, 30),
            Scale::Mid => (200, 120),
            Scale::Paper => (4394, 2215),
        }
    }

    /// Training configuration matched to the scale (the paper's 10-fold
    /// ×10-run protocol at full size; lighter below).
    pub fn train_config(self) -> TrainConfig {
        match self {
            // Huge spends its budget on the million-user stream, not on
            // campaign training — the quick forest is plenty for the
            // estimator the tenant monitors share.
            Scale::Small | Scale::Huge => TrainConfig::quick(),
            Scale::Mid => TrainConfig {
                cv_folds: 10,
                cv_runs: 2,
                forest: RandomForestConfig {
                    n_trees: 40,
                    threads: 8,
                    ..TrainConfig::default().forest
                },
                ..TrainConfig::default()
            },
            Scale::Paper => TrainConfig {
                cv_folds: 10,
                cv_runs: 3,
                forest: RandomForestConfig {
                    n_trees: 40,
                    threads: 8,
                    ..TrainConfig::default().forest
                },
                ..TrainConfig::default()
            },
        }
    }
}

/// Everything the figure builders consume.
pub struct World {
    /// The scale this world was built at.
    pub scale: Scale,
    /// The analyzer's view of dataset D.
    pub report: AnalyzerReport,
    /// Simulator ground truth for D (validation-only fields).
    pub truth: Vec<GroundTruth>,
    /// Campaign A1 (encrypting exchanges).
    pub a1: CampaignReport,
    /// Campaign A2 (MoPub cleartext).
    pub a2: CampaignReport,
    /// The trained engine.
    pub pme: Pme,
    /// The §6.2 time-shift correction, already fitted.
    pub shift: TimeShift,
    /// Total HTTP requests streamed.
    pub http_requests: u64,
    /// Cleartext feature rows sampled for the dimensionality-reduction
    /// experiment (288-vector, price) pairs.
    pub feature_sample: Vec<(Vec<f64>, f64)>,
}

/// What one weblog shard contributes to the world: its analyzer pass,
/// its ground truth, and its cleartext feature rows (keyed for the
/// canonical merge order).
pub(crate) struct ShardPart {
    pub(crate) report: AnalyzerReport,
    pub(crate) truth: Vec<GroundTruth>,
    pub(crate) http_requests: u64,
    /// `(minutes, user, features, price)` per cleartext detection.
    pub(crate) clear_rows: Vec<(i64, u32, Vec<f64>, f64)>,
    /// Input-order detection keys for the canonical re-sort.
    pub(crate) detection_keys: Vec<(i64, u32)>,
}

impl ShardPart {
    pub(crate) fn new() -> ShardPart {
        ShardPart {
            report: AnalyzerReport::default(),
            truth: Vec::new(),
            http_requests: 0,
            clear_rows: Vec::new(),
            detection_keys: Vec::new(),
        }
    }

    /// Feeds one HTTP request through `analyzer`, folding any detection
    /// into this part. The single per-request step both builders (fused
    /// streaming and materialise-then-analyze) share — which is *why*
    /// their outputs are bit-identical: same requests in the same order
    /// through the same code.
    pub(crate) fn ingest(&mut self, analyzer: &mut WeblogAnalyzer, req: &HttpRequest) {
        self.http_requests += 1;
        if let Some(rec) = analyzer.ingest(req) {
            let key = (req.time.minutes(), req.user.0);
            self.detection_keys.push(key);
            if let Some(p) = rec.meta.cleartext_cpm {
                self.clear_rows
                    .push((key.0, key.1, rec.features, p.as_f64()));
            }
        }
    }
}

/// Runs both Table-5 probe campaigns at `scale` and trains the PME on
/// A1. Shared by the materialising and streaming builders (campaigns
/// never depend on the weblog).
pub(crate) fn campaigns_and_pme(
    scale: Scale,
    exec: &ExecConfig,
    market_config: &MarketConfig,
    universe: &yav_weblog::PublisherUniverse,
) -> (CampaignReport, CampaignReport, Pme) {
    let (a1_imps, a2_imps) = scale.campaign_impressions();
    let a1 = yav_campaign::execute_parallel(
        market_config,
        universe,
        &Campaign::a1().scaled(a1_imps),
        exec,
    );
    let a2 = yav_campaign::execute_parallel(
        market_config,
        universe,
        &Campaign::a2().scaled(a2_imps),
        exec,
    );
    let pme = Pme::new();
    let mut train = scale.train_config();
    train.forest.threads = exec.threads();
    pme.train_from_campaign(&a1.rows, &train);
    (a1, a2, pme)
}

/// A2's cleartext prices per IAB stratum — the *recent* side of the §6.2
/// time-shift fit, shared by both fit paths.
pub(crate) fn a2_strata(a2: &CampaignReport) -> Vec<Vec<f64>> {
    yav_types::IabCategory::ALL
        .iter()
        .map(|&iab| {
            a2.rows
                .iter()
                .filter(|r| r.iab == iab)
                .map(|r| r.charge.as_f64())
                .collect()
        })
        .collect()
}

impl World {
    /// Builds the world with default parallelism. Deterministic per scale.
    pub fn build(scale: Scale) -> World {
        World::build_with(scale, &ExecConfig::default())
    }

    /// Builds the world on `exec`'s worker pool.
    ///
    /// The weblog/analyzer stage runs fused, one logical shard per
    /// [`yav_weblog::USERS_PER_SHARD`]-user block against its own shard
    /// market; campaigns run one shard per setup. Shard boundaries are
    /// structural, so **the result is identical for every thread count**
    /// (the determinism test suite enforces this). The parallel stream is
    /// a different — equally valid — random realisation than the legacy
    /// serial `generator.run` stream, which stays available unchanged.
    pub fn build_with(scale: Scale, exec: &ExecConfig) -> World {
        let _span = yav_telemetry::span!("bench.world.build");
        let _trace = yav_trace::trace_span!("bench.world_build");
        let config = WeblogConfig {
            exec: *exec,
            ..scale.weblog()
        };
        let generator = WeblogGenerator::new(config);
        let market_config = MarketConfig::default();
        let shards = generator.shard_count();
        yav_telemetry::gauge("exec.world.weblog_shards").set(shards as f64);
        let market_template = MarketTemplate::new(market_config.clone());

        let parts = yav_exec::par_map_indexed(exec, shards, |s| {
            let mut market = market_template.shard(s as u64);
            let mut analyzer = WeblogAnalyzer::new();
            let mut part = ShardPart::new();
            let mut truth = Vec::new();
            generator.run_shard(
                s,
                &mut market,
                |req| part.ingest(&mut analyzer, req),
                |t| truth.push(t),
            );
            part.truth = truth;
            let (report, _global) = analyzer.finish_with_state();
            part.report = report;
            part
        });

        World::assemble(scale, exec, &generator, &market_config, parts)
    }

    /// The legacy materialise-then-analyze reference: phase 1 collects
    /// every shard's full weblog into memory, phase 2 analyzes the
    /// collected logs. Same shard structure, same shard markets, same
    /// per-request analyzer walk as [`World::build_with`] — so the output
    /// is **bit-identical** to the fused builder (the stream-equivalence
    /// suite pins this). Holds the entire weblog at its peak: use at test
    /// scales only; the fused/streaming paths exist so nothing else has
    /// to.
    pub fn build_materialized(scale: Scale, exec: &ExecConfig) -> World {
        let _span = yav_telemetry::span!("bench.world.build_materialized");
        let config = WeblogConfig {
            exec: *exec,
            ..scale.weblog()
        };
        let generator = WeblogGenerator::new(config);
        let market_config = MarketConfig::default();
        let shards = generator.shard_count();

        // Phase 1: materialise the full weblog, one log per shard, in
        // per-shard emission order (the exact order the fused builder
        // feeds its analyzer).
        let market_template = MarketTemplate::new(market_config.clone());
        let logs: Vec<Weblog> = yav_exec::par_map_indexed(exec, shards, |s| {
            let mut market = market_template.shard(s as u64);
            let mut log = Weblog::default();
            generator.run_shard(
                s,
                &mut market,
                |r| log.requests.push(r.clone()),
                |t| log.truth.push(t),
            );
            log
        });

        // Phase 2: analyze the materialised logs.
        let parts = yav_exec::par_map_indexed(exec, shards, |s| {
            let mut analyzer = WeblogAnalyzer::new();
            let mut part = ShardPart::new();
            for req in &logs[s].requests {
                part.ingest(&mut analyzer, req);
            }
            part.truth = logs[s].truth.clone();
            let (report, _global) = analyzer.finish_with_state();
            part.report = report;
            part
        });

        World::assemble(scale, exec, &generator, &market_config, parts)
    }

    /// Merges shard parts and finishes the world: canonical re-sort,
    /// feature sampling, campaigns, PME training, time-shift fit.
    fn assemble(
        scale: Scale,
        exec: &ExecConfig,
        generator: &WeblogGenerator,
        market_config: &MarketConfig,
        parts: Vec<ShardPart>,
    ) -> World {
        // Merge: commutative aggregates fold in; ordered streams are
        // restored to the canonical (time, user) order. Ties share a user
        // (users never span shards), so the stable sort keeps their
        // within-shard generation order.
        let mut report = AnalyzerReport::default();
        let mut truth = Vec::new();
        let mut http_requests = 0u64;
        let mut detections: Vec<((i64, u32), yav_analyzer::DetectedImpression)> = Vec::new();
        let mut clear_rows: Vec<(i64, u32, Vec<f64>, f64)> = Vec::new();
        for mut part in parts {
            debug_assert_eq!(part.report.detections.len(), part.detection_keys.len());
            detections.extend(
                part.detection_keys
                    .drain(..)
                    .zip(std::mem::take(&mut part.report.detections)),
            );
            clear_rows.append(&mut part.clear_rows);
            truth.append(&mut part.truth);
            http_requests += part.http_requests;
            report.merge(part.report);
        }
        detections.sort_by_key(|&(key, _)| key);
        report.detections = detections.into_iter().map(|(_, d)| d).collect();
        truth.sort_by_key(|t| (t.time.minutes(), t.user.0));
        clear_rows.sort_by_key(|&(minutes, user, _, _)| (minutes, user));

        // Deterministic reservoir over the canonical cleartext stream:
        // keep every k-th row once the cap fills (same walk the serial
        // builder used).
        const SAMPLE_CAP: usize = 12_000;
        let mut feature_sample: Vec<(Vec<f64>, f64)> = Vec::new();
        for (seen_clear, (_, _, features, price)) in (1usize..).zip(clear_rows) {
            if feature_sample.len() < SAMPLE_CAP {
                feature_sample.push((features, price));
            } else if seen_clear.is_multiple_of(7) {
                let slot = (seen_clear / 7) % SAMPLE_CAP;
                feature_sample[slot] = (features, price);
            }
        }

        let (a1, a2, pme) = campaigns_and_pme(scale, exec, market_config, generator.universe());
        // §6.2: time shift fitted within matched IAB strata (A2 vs the
        // MoPub side of D) so content-mix differences between the
        // campaign and organic traffic cancel out.
        let strata: Vec<(Vec<f64>, Vec<f64>)> = yav_types::IabCategory::ALL
            .iter()
            .zip(a2_strata(&a2))
            .map(|(&iab, recent)| {
                let hist: Vec<f64> = report
                    .detections
                    .iter()
                    .filter(|d| d.adx == Adx::MoPub && d.iab == Some(iab))
                    .filter_map(|d| d.cleartext_cpm.map(|p| p.as_f64()))
                    .collect();
                (hist, recent)
            })
            .collect();
        let shift = TimeShift::fit_stratified(&strata, 30);
        pme.set_time_shift(shift);

        World {
            scale,
            report,
            truth,
            a1,
            a2,
            pme,
            shift,
            http_requests,
            feature_sample,
        }
    }

    /// Cleartext prices (CPM) in D.
    pub fn d_cleartext(&self) -> Vec<f64> {
        self.report
            .detections
            .iter()
            .filter_map(|d| d.cleartext_cpm.map(|p| p.as_f64()))
            .collect()
    }

    /// Cleartext MoPub prices in D.
    pub fn d_mopub(&self) -> Vec<f64> {
        self.report
            .detections
            .iter()
            .filter(|d| d.adx == Adx::MoPub)
            .filter_map(|d| d.cleartext_cpm.map(|p| p.as_f64()))
            .collect()
    }

    /// First month index (0-based) of the trace's final two observed
    /// months — the "2 m" subset window of Figures 11, 15 and 16.
    pub fn last_two_months_start(&self) -> usize {
        self.report
            .detections
            .iter()
            .map(|d| {
                if d.time.year() <= 2015 {
                    d.time.month().index()
                } else {
                    11
                }
            })
            .max()
            .unwrap_or(11)
            .saturating_sub(1)
    }

    /// The trace's final two months of MoPub cleartext prices (the "2 m"
    /// series of Figures 11, 15 and 16).
    pub fn d_mopub_2m(&self) -> Vec<f64> {
        let start = self.last_two_months_start();
        self.report
            .detections
            .iter()
            .filter(|d| d.adx == Adx::MoPub && d.time.month().index() >= start)
            .filter_map(|d| d.cleartext_cpm.map(|p| p.as_f64()))
            .collect()
    }
}
